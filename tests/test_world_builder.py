"""MPI world construction: placements and multi-rank nodes."""

import numpy as np
import pytest

from repro.machine.builder import Machine, build_pair
from repro.mpi import create_world, run_world
from repro.net import Torus3D


class TestRanksPerNode:
    def test_two_ranks_per_node_layout(self):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b], ranks_per_node=2)
        assert len(world) == 4
        # node-major placement: ranks 0,1 on node a; 2,3 on node b
        assert world[0].proc.node_id == a.node_id
        assert world[1].proc.node_id == a.node_id
        assert world[2].proc.node_id == b.node_id
        assert world[3].proc.node_id == b.node_id
        # distinct pids on the shared node
        assert world[0].proc.pid != world[1].proc.pid

    def test_intra_node_and_inter_node_traffic(self):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b], ranks_per_node=2)

        def main(mpi, rank):
            buf = np.zeros(16, np.uint8)
            nxt = (rank + 1) % 4
            prev = (rank - 1) % 4
            send = np.full(16, rank + 1, np.uint8)
            status = yield from mpi.sendrecv(send, nxt, buf, source=prev, tag=2)
            return int(buf[0])

        results = run_world(machine, world, main)
        # each rank received from its predecessor
        assert results == [4, 1, 2, 3]

    def test_intra_node_traffic_takes_zero_hops(self):
        """Ranks sharing a node talk through a 0-hop fabric loopback.

        (Intra-node is *not* asserted to be faster: both ranks contend
        for the same Opteron, and on the real machine the generic-mode
        software path dominated the wire anyway.)"""
        machine, a, b = build_pair(hops=10)
        world = create_world(machine, [a, b], ranks_per_node=2)
        stamps = {}

        def main(mpi, rank):
            buf = np.zeros(1, np.uint8)
            if rank == 0:
                intra = yield from mpi.proc.api.PtlNIDist(world[1].proc.id)
                inter = yield from mpi.proc.api.PtlNIDist(world[2].proc.id)
                stamps["intra_hops"] = intra
                stamps["inter_hops"] = inter
                yield from mpi.send(buf, 1)
                yield from mpi.send(buf, 2)
            elif rank in (1, 2):
                yield from mpi.recv(buf, source=0)
            return None

        run_world(machine, world, main)
        assert stamps["intra_hops"] == 0
        assert stamps["inter_hops"] == 10
