"""Property suite for the conservative parallel DES driver.

Hammers the exactness contract over random small tori: for every
topology shape x wrap combination x traffic pattern x payload size x
partition count x cut axis, the partitioned run's result document is
byte-identical to the serial run's, and the lookahead geometry the
safety argument rests on holds exactly (slab lookahead == true minimum
route cost; no import ever lands below a partition's safe floor — the
runtime guard raising :class:`CausalityError` is armed on every
absorb, so a clean run IS the causality assertion).

Runs under the shared Hypothesis profiles: the derandomized ``fast``
profile in tier-1, ``HYPOTHESIS_PROFILE=nightly`` for the deep run.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.machine.builder import partition_nodes
from repro.net import Torus3D, min_cut_hops, slab_cut_hops
from repro.sim.parallel import (
    SCENARIO_NAMES,
    PlaneScenario,
    lookahead_closure,
    lookahead_matrix,
    run_scenario,
)

pytestmark = pytest.mark.property

# small dims keep each example in the low milliseconds while still
# producing multi-hop, wraparound, and degenerate (extent-1) axes
dims_st = st.tuples(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
).filter(lambda d: 2 <= d[0] * d[1] * d[2] <= 48)
wrap_st = st.tuples(st.booleans(), st.booleans(), st.booleans())


@given(
    dims=dims_st,
    wrap=wrap_st,
    name=st.sampled_from(SCENARIO_NAMES),
    msg_bytes=st.sampled_from([64, 1024, 3000]),
    nparts=st.integers(2, 4),
    axis=st.one_of(st.none(), st.integers(0, 2)),
)
def test_partitioned_equals_serial(dims, wrap, name, msg_bytes, nparts, axis):
    scenario = PlaneScenario(name=name, dims=dims, wrap=wrap, msg_bytes=msg_bytes)
    base = run_scenario(scenario, 1)
    part = run_scenario(scenario, nparts, transport="memory", axis=axis)
    assert json.dumps(part["result"], sort_keys=True) == json.dumps(
        base["result"], sort_keys=True
    )
    # every message the pattern injects is delivered exactly once
    assert len(base["result"]["messages"]) > 0


@given(
    dims=dims_st,
    wrap=wrap_st,
    nparts=st.integers(2, 4),
    axis=st.integers(0, 2),
)
def test_slab_cut_matches_brute_force(dims, wrap, nparts, axis):
    """slab_cut_hops' closed-form minimum equals the brute-force minimum
    over all cross-slab node pairs — the lookahead is never optimistic
    about route length (too-large would stall, too-small would race)."""
    topo = Torus3D(dims, wrap=wrap)
    plan = partition_nodes(topo, nparts, axis)
    hops = slab_cut_hops(topo, plan.axis, list(plan.ranges))
    for i in range(plan.nparts):
        for j in range(plan.nparts):
            if i == j:
                assert hops[i][j] == 0
            else:
                assert hops[i][j] == min_cut_hops(
                    topo, plan.nodes[i], plan.nodes[j]
                )


@given(dims=dims_st, wrap=wrap_st, nparts=st.integers(2, 4))
def test_lookahead_admits_no_causality_violation(dims, wrap, nparts):
    """Structural safety: off-diagonal lookahead is strictly positive
    (progress) and the closure obeys the triangle property (no relay
    chain undercuts the direct bound the horizon uses)."""
    scenario = PlaneScenario(name="neighbor", dims=dims, msg_bytes=256, wrap=wrap)
    topo = scenario.topology()
    plan = partition_nodes(topo, nparts)
    la = lookahead_matrix(scenario, plan)
    closure = lookahead_closure(la)
    n = plan.nparts
    for i in range(n):
        assert closure[i][i] == 0
        for j in range(n):
            assert closure[i][j] <= la[i][j] or i == j
            if i != j:
                assert la[i][j] > 0
                assert closure[i][j] > 0
            for k in range(n):
                assert closure[i][j] <= closure[i][k] + closure[k][j]
