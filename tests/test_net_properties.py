"""Property-based fabric transport tests: ordering and conservation
under randomized multi-source traffic."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw.config import SeaStarConfig
from repro.net import Fabric, Torus3D, chunk_message
from repro.sim import Simulator

SLOW = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**SLOW)
@given(
    plan=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 20_000)),  # (source, body)
        min_size=1,
        max_size=25,
    ),
    window=st.integers(1, 6),
    buffer_chunks=st.integers(1, 6),
)
def test_per_source_order_and_conservation(plan, window, buffer_chunks):
    """All messages arrive, per-source order holds, chunk framing holds."""
    cfg = SeaStarConfig()
    sim = Simulator()
    # 5 nodes on a line; node 4 is the sink
    fabric = Fabric(
        sim,
        Torus3D((5, 1, 1), wrap=(False, False, False)),
        cfg,
        window_chunks=window,
        rx_buffer_chunks=buffer_chunks,
    )
    for node in range(5):
        fabric.attach(node)

    # pre-chunk everything so totals are known before the sim starts
    sent = {}  # msg_id -> (source, body, nchunks)
    per_source_chunks: dict[int, list] = {}
    for src, body in plan:
        chunks = chunk_message(
            src=src,
            dst=4,
            header=("hdr", src),
            body_bytes=body,
            payload=None,
            packet_bytes=cfg.packet_bytes,
            chunk_bytes=cfg.chunk_bytes,
        )
        sent[chunks[0].msg_id] = (src, body, len(chunks))
        per_source_chunks.setdefault(src, []).extend(chunks)
    total_chunks = sum(n for _, _, n in sent.values())

    def sender(chunks):
        for chunk in chunks:
            yield fabric.send(chunk)

    for src, chunks in per_source_chunks.items():
        sim.process(sender(chunks))

    arrived: list = []

    def receiver():
        for _ in range(total_chunks):
            chunk = yield fabric.ports[4].rx.get()
            arrived.append(chunk)

    sim.process(receiver())
    sim.run()

    # conservation: every chunk of every message arrived exactly once
    assert len(arrived) == sum(n for _, _, n in sent.values())

    # per-message framing: chunks of one message arrive in seq order
    # (per-pair in-order delivery + in-order injection)
    seqs: dict[int, list[int]] = {}
    for chunk in arrived:
        seqs.setdefault(chunk.msg_id, []).append(chunk.seq)
    for msg_id, seq_list in seqs.items():
        assert seq_list == sorted(seq_list)
        assert seq_list == list(range(len(seq_list)))

    # per-source message order: headers from one source arrive in the
    # order that source sent them
    headers_by_source: dict[int, list[int]] = {}
    order_sent: dict[int, list[int]] = {}
    for msg_id, (src, _, _) in sent.items():
        order_sent.setdefault(src, []).append(msg_id)
    for chunk in arrived:
        if chunk.is_header:
            headers_by_source.setdefault(chunk.src, []).append(chunk.msg_id)
    for src, ids in headers_by_source.items():
        assert ids == sorted(ids, key=order_sent[src].index)


@settings(**SLOW)
@given(
    bodies=st.lists(st.integers(0, 50_000), min_size=1, max_size=10),
    prob=st.floats(0.0, 0.5),
    seed=st.integers(0, 1000),
)
def test_crc_retries_never_lose_or_reorder(bodies, prob, seed):
    cfg = SeaStarConfig(link_crc_retry_prob=prob)
    sim = Simulator()
    fabric = Fabric(
        sim, Torus3D((2, 1, 1), wrap=(False, False, False)), cfg, seed=seed
    )
    fabric.attach(0)
    fabric.attach(1)
    all_chunks = []
    for body in bodies:
        all_chunks.extend(
            chunk_message(
                src=0, dst=1, header="h", body_bytes=body, payload=None,
                packet_bytes=cfg.packet_bytes, chunk_bytes=cfg.chunk_bytes,
            )
        )
    expected = [(c.msg_id, c.seq) for c in all_chunks]

    def sender():
        for chunk in all_chunks:
            yield fabric.send(chunk)

    got = []

    def receiver():
        for _ in range(len(expected)):
            chunk = yield fabric.ports[1].rx.get()
            got.append((chunk.msg_id, chunk.seq))

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got == expected
