"""DES kernel: events, timeouts, processes, conditions, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestEvent:
    def test_initial_state(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_after_processing_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("done")
        sim.run()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        assert hits == ["done"]

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=500)
        sim.run()
        assert sim.now == 500

    def test_negative_delay_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(ValueError):
            ev.succeed(delay=-1)


class TestTimeout:
    def test_fires_at_exact_time(self, sim):
        t = sim.timeout(1234, value="v")
        sim.run()
        assert sim.now == 1234
        assert t.value == "v"

    def test_zero_delay_allowed(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert t.processed and sim.now == 0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-5)

    def test_ordering_between_timeouts(self, sim):
        order = []

        def waiter(d, tag):
            yield sim.timeout(d)
            order.append(tag)

        sim.process(waiter(30, "c"))
        sim.process(waiter(10, "a"))
        sim.process(waiter(20, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak_at_same_time(self, sim):
        order = []

        def waiter(tag):
            yield sim.timeout(10)
            order.append(tag)

        for tag in "abcde":
            sim.process(waiter(tag))
        sim.run()
        assert order == list("abcde")


class TestProcess:
    def test_return_value(self, sim):
        def body():
            yield sim.timeout(1)
            return 99

        proc = sim.process(body())
        sim.run()
        assert proc.value == 99

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_join_another_process(self, sim):
        def child():
            yield sim.timeout(50)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return ("got", result)

        p = sim.process(parent())
        sim.run()
        assert p.value == ("got", "child-result")
        assert sim.now == 50

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(5)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        p = sim.process(parent())
        sim.run()
        assert p.value == "boom"

    def test_unhandled_failure_raises_at_run(self, sim):
        def body():
            yield sim.timeout(1)
            raise RuntimeError("unseen")

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yielding_non_event_fails_process(self, sim):
        def body():
            yield "not an event"  # type: ignore[misc]

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yielding_int_sleeps(self, sim):
        # a bare non-negative int is a flattened sleep: same semantics
        # as yielding sim.timeout(n), without building the Timeout
        log = []

        def body():
            got = yield 42
            log.append((sim.now, got))

        sim.process(body())
        sim.run()
        assert log == [(42, None)]

    def test_yielding_negative_int_fails_process(self, sim):
        def body():
            yield -1

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_is_alive_lifecycle(self, sim):
        def body():
            yield sim.timeout(10)

        p = sim.process(body())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_interrupt_wakes_waiter(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt as i:
                log.append(("interrupted", i.cause, sim.now))

        def poker(target):
            yield sim.timeout(10)
            target.interrupt("wake up")

        t = sim.process(sleeper())
        sim.process(poker(t))
        sim.run()
        assert log == [("interrupted", "wake up", 10)]

    def test_interrupt_finished_process_rejected(self, sim):
        def body():
            yield sim.timeout(1)

        p = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()


class TestConditions:
    def test_any_of_returns_first(self, sim):
        def body():
            result = yield sim.any_of([sim.timeout(30, "slow"), sim.timeout(10, "fast")])
            return list(result.values())

        p = sim.process(body())
        sim.run()
        assert p.value == ["fast"]
        # AnyOf fires at the first event; the sim continues to drain the
        # second timeout afterwards.

    def test_all_of_waits_for_all(self, sim):
        def body():
            result = yield sim.all_of([sim.timeout(30, "a"), sim.timeout(10, "b")])
            return sorted(v for v in result.values())

        p = sim.process(body())
        sim.run()
        assert p.value == ["a", "b"]
        assert sim.now == 30

    def test_empty_all_of_fires_immediately(self, sim):
        def body():
            yield sim.all_of([])
            return sim.now

        p = sim.process(body())
        sim.run()
        assert p.value == 0

    def test_any_of_failure_propagates(self, sim):
        def failer():
            yield sim.timeout(5)
            raise KeyError("k")

        def body():
            try:
                yield sim.any_of([sim.process(failer()), sim.timeout(100)])
            except KeyError:
                return "caught"

        p = sim.process(body())
        sim.run()
        assert p.value == "caught"


class TestDefusal:
    """Failure-propagation fixes: consumed failures are defused, raced
    late failures are not (see the "Defusal semantics" section of
    repro.sim.core)."""

    def test_interrupted_waiter_defuses_stale_failure(self, sim):
        # The waiter abandons `failing` when interrupted; the stale
        # callback must take responsibility for the later failure so the
        # run does not abort.
        failing = sim.event()
        log = []

        def waiter():
            try:
                yield failing
            except Interrupt:
                log.append("interrupted")
                yield sim.timeout(100)

        def poker(target):
            yield sim.timeout(5)
            target.interrupt("move on")
            failing.fail(RuntimeError("stale"))

        w = sim.process(waiter())
        sim.process(poker(w))
        sim.run()  # must not raise SimulationError
        assert log == ["interrupted"]
        assert failing.defused

    def test_raced_any_of_late_failure_surfaces(self, sim):
        # The AnyOf already triggered when the slow branch fails: nobody
        # consumes the failure, so it must escalate instead of being
        # silently swallowed by the condition's stale callback.
        def failer():
            yield sim.timeout(30)
            raise KeyError("late")

        def body():
            yield sim.any_of([sim.timeout(10), sim.process(failer())])
            yield sim.timeout(100)  # outlive the late failure

        sim.process(body())
        with pytest.raises(SimulationError, match="unhandled event failure"):
            sim.run()

    def test_consumed_any_of_failure_is_defused(self, sim):
        failer_proc = []

        def failer():
            yield sim.timeout(5)
            raise KeyError("k")

        def body():
            failer_proc.append(sim.process(failer()))
            try:
                yield sim.any_of([failer_proc[0], sim.timeout(100)])
            except KeyError:
                return "caught"

        p = sim.process(body())
        sim.run()
        assert p.value == "caught"
        assert failer_proc[0].defused

    def test_explicit_defuse_suppresses_escalation(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("expected"))
        ev.defuse()
        sim.run()  # must not raise
        assert ev.defused

    def test_undefused_failure_still_raises_with_callbacks(self, sim):
        # A registered callback alone is not consumption: only throwing
        # into a waiter (or an explicit defuse) is.
        ev = sim.event()
        ev.add_callback(lambda e: None)
        ev.fail(RuntimeError("nobody consumed this"))
        with pytest.raises(SimulationError, match="unhandled event failure"):
            sim.run()


@pytest.mark.parametrize("mode", [True, False], ids=["fastpath", "legacy"])
class TestRunUntilBoundary:
    """``until`` is inclusive and the clock is monotonic — on both
    scheduler paths."""

    def test_record_at_exactly_until_fires(self, mode):
        sim = Simulator(direct_resume=mode)
        fired = []

        def body():
            yield 400
            fired.append(sim.now)

        sim.process(body())
        end = sim.run(until=400)
        assert fired == [400]
        assert end == 400 and sim.now == 400

    def test_record_just_past_until_stays_on_heap(self, mode):
        sim = Simulator(direct_resume=mode)
        fired = []

        def body():
            yield 401
            fired.append(sim.now)

        sim.process(body())
        sim.run(until=400)
        assert fired == []
        assert sim.now == 400
        assert sim.peek() == 401
        # resuming picks the record up exactly where it was left
        sim.run()
        assert fired == [401]

    def test_past_horizon_never_rewinds_clock(self, mode):
        sim = Simulator(direct_resume=mode)

        def body():
            yield 600

        sim.process(body())
        sim.run(until=500)
        assert sim.now == 500
        # horizon in the past, record still pending: clock must hold
        assert sim.run(until=100) == 500
        assert sim.now == 500
        # same with an empty heap
        sim.run()
        assert sim.now == 600
        assert sim.run(until=100) == 600

    def test_defused_records_do_not_disturb_the_clock(self, mode):
        sim = Simulator(direct_resume=mode)
        ev = sim.event()
        ev.fail(RuntimeError("expected"))
        ev.defuse()
        sim.timeout(300)
        sim.run(until=200)  # pops the defused record at t=0
        assert sim.now == 200
        sim.run(until=400)
        assert sim.now == 400

    def test_zero_horizon_fires_time_zero_records(self, mode):
        sim = Simulator(direct_resume=mode)
        fired = []

        def body():
            yield 0
            fired.append(sim.now)

        sim.process(body())
        sim.run(until=0)
        assert fired == [0] and sim.now == 0


class TestRun:
    def test_run_until_horizon(self, sim):
        sim.timeout(1000)
        end = sim.run(until=400)
        assert end == 400
        assert sim.peek() == 1000

    def test_run_empty_heap_with_until_advances_clock(self, sim):
        sim.run(until=777)
        assert sim.now == 777

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_nested_run_rejected(self, sim):
        def body():
            sim.run()
            yield sim.timeout(1)

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    def test_identical_runs_produce_identical_traces(self, delays):
        def execute():
            sim = Simulator()
            trace = []

            def waiter(d, i):
                yield sim.timeout(d)
                trace.append((sim.now, i))

            for i, d in enumerate(delays):
                sim.process(waiter(d, i))
            sim.run()
            return trace

        assert execute() == execute()

    @settings(max_examples=25, deadline=None)
    @given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        stamps = []

        def waiter(d):
            yield sim.timeout(d)
            stamps.append(sim.now)

        for d in delays:
            sim.process(waiter(d))
        sim.run()
        assert stamps == sorted(stamps)
