"""DMA engines: TX serialization, RX plans, truncation, stalls."""

import numpy as np
import pytest

from repro.hw.config import SeaStarConfig
from repro.hw.dma import DepositPlan, RxDmaEngine, Transmission, TxDmaEngine
from repro.net import Fabric, Torus3D, chunk_message
from repro.sim import NS, Simulator


@pytest.fixture
def rig(sim):
    cfg = SeaStarConfig()
    fabric = Fabric(sim, Torus3D((2, 1, 1), wrap=(False,) * 3), cfg)
    fabric.attach(0)
    port1 = fabric.attach(1)
    tx = TxDmaEngine(sim, cfg, fabric, node_id=0)
    headers = []
    rx = RxDmaEngine(sim, cfg, port1, on_header=headers.append)
    return cfg, fabric, tx, rx, headers


def make_tx(cfg, payload, on_sent, dst=1, body=None):
    body = len(payload) if body is None and payload is not None else (body or 0)
    chunks = chunk_message(
        src=0,
        dst=dst,
        header="H",
        body_bytes=body,
        payload=payload,
        packet_bytes=cfg.packet_bytes,
        chunk_bytes=cfg.chunk_bytes,
    )
    return Transmission(chunks=chunks, on_sent=on_sent)


class TestTxEngine:
    def test_rejects_empty_transmission(self, rig):
        cfg, fabric, tx, rx, _ = rig
        with pytest.raises(ValueError):
            tx.submit(Transmission(chunks=[], on_sent=lambda t: None))

    def test_on_sent_called_after_last_chunk(self, rig, sim):
        cfg, fabric, tx, rx, _ = rig
        sent = []
        payload = np.zeros(10000, dtype=np.uint8)
        t = make_tx(cfg, payload, lambda tr: sent.append(sim.now))
        tx.submit(t)
        rx.program(
            DepositPlan(
                msg_id=t.chunks[0].msg_id,
                dest=None,
                accept_bytes=0,
                on_complete=lambda p: None,
            )
        )
        sim.run()
        assert sent and t.finished_at == sent[0]
        assert t.started_at is not None and t.finished_at > t.started_at

    def test_transmits_serialize_in_order(self, rig, sim):
        """All transmits go through a single TX FIFO (section 4.3)."""
        cfg, fabric, tx, rx, headers = rig
        done = []
        for i in range(5):
            t = make_tx(cfg, None, lambda tr, i=i: done.append(i), body=0)
            tx.submit(t)
        sim.run()
        assert done == [0, 1, 2, 3, 4]
        assert [h.header for h in headers] == ["H"] * 5

    def test_packet_cost_dominates_duration(self, rig, sim):
        cfg, fabric, tx, rx, _ = rig
        payload = np.zeros(64 * 100, dtype=np.uint8)  # 100 packets
        t = make_tx(cfg, payload, lambda tr: None)
        rx.program(
            DepositPlan(
                msg_id=t.chunks[0].msg_id,
                dest=None,
                accept_bytes=0,
                on_complete=lambda p: None,
            )
        )
        tx.submit(t)
        sim.run()
        min_cost = 101 * cfg.tx_dma_per_packet  # header + 100 payload packets
        assert t.finished_at - t.started_at >= min_cost

    def test_counters(self, rig, sim):
        cfg, fabric, tx, rx, _ = rig
        t = make_tx(cfg, None, lambda tr: None, body=0)
        tx.submit(t)
        sim.run()
        assert tx.counters["messages"] == 1
        assert tx.counters["packets"] == 1


class TestRxEngine:
    def test_header_handed_to_firmware(self, rig, sim):
        cfg, fabric, tx, rx, headers = rig
        t = make_tx(cfg, None, lambda tr: None, body=0)
        tx.submit(t)
        sim.run()
        assert len(headers) == 1 and headers[0].is_header

    def test_deposit_copies_payload(self, rig, sim):
        cfg, fabric, tx, rx, _ = rig
        payload = (np.arange(10000) % 256).astype(np.uint8)
        dest = np.zeros(10000, dtype=np.uint8)
        done = []
        t = make_tx(cfg, payload, lambda tr: None)
        rx.program(
            DepositPlan(
                msg_id=t.chunks[0].msg_id,
                dest=dest,
                accept_bytes=10000,
                on_complete=lambda p: done.append(p),
            )
        )
        tx.submit(t)
        sim.run()
        assert done and done[0].deposited_bytes == 10000
        assert np.array_equal(dest, payload)

    def test_truncation_discards_tail(self, rig, sim):
        cfg, fabric, tx, rx, _ = rig
        payload = (np.arange(8192) % 256).astype(np.uint8)
        dest = np.zeros(1000, dtype=np.uint8)
        done = []
        t = make_tx(cfg, payload, lambda tr: None)
        rx.program(
            DepositPlan(
                msg_id=t.chunks[0].msg_id,
                dest=dest,
                accept_bytes=1000,
                on_complete=lambda p: done.append(p),
            )
        )
        tx.submit(t)
        sim.run()
        plan = done[0]
        assert plan.deposited_bytes == 1000
        assert plan.discarded_bytes == 8192 - 1000
        assert np.array_equal(dest, payload[:1000])

    def test_stall_until_programmed(self, rig, sim):
        """Payload chunks head-of-line block until the firmware programs
        the deposit (the generic-mode latency mechanism)."""
        cfg, fabric, tx, rx, _ = rig
        payload = np.zeros(4096, dtype=np.uint8)
        dest = np.zeros(4096, dtype=np.uint8)
        done = []
        t = make_tx(cfg, payload, lambda tr: None)

        def program_late():
            yield sim.timeout(50_000 * NS)
            rx.program(
                DepositPlan(
                    msg_id=t.chunks[0].msg_id,
                    dest=dest,
                    accept_bytes=4096,
                    on_complete=lambda p: done.append(sim.now),
                )
            )

        tx.submit(t)
        sim.process(program_late())
        sim.run()
        assert rx.counters["stalls"] == 1
        assert done[0] >= 50_000 * NS

    def test_double_program_rejected(self, rig):
        cfg, fabric, tx, rx, _ = rig
        plan = DepositPlan(msg_id=7, dest=None, accept_bytes=0, on_complete=lambda p: None)
        rx.program(plan)
        with pytest.raises(ValueError):
            rx.program(
                DepositPlan(msg_id=7, dest=None, accept_bytes=0, on_complete=lambda p: None)
            )

    def test_interleaved_messages_from_two_sources(self, sim):
        """The RX engine de-multiplexes concurrent streams by msg id."""
        cfg = SeaStarConfig()
        fabric = Fabric(sim, Torus3D((3, 1, 1), wrap=(False,) * 3), cfg)
        fabric.attach(0)
        fabric.attach(2)
        port1 = fabric.attach(1)
        rx = RxDmaEngine(sim, cfg, port1, on_header=lambda c: None)
        tx0 = TxDmaEngine(sim, cfg, fabric, node_id=0)
        tx2 = TxDmaEngine(sim, cfg, fabric, node_id=2)
        pay0 = np.full(20000, 1, np.uint8)
        pay2 = np.full(20000, 2, np.uint8)
        dst0 = np.zeros(20000, np.uint8)
        dst2 = np.zeros(20000, np.uint8)
        done = []

        def mk(txe, src, pay, dst_buf):
            chunks = chunk_message(
                src=src, dst=1, header="H", body_bytes=len(pay), payload=pay,
                packet_bytes=cfg.packet_bytes, chunk_bytes=cfg.chunk_bytes,
            )
            t = Transmission(chunks=chunks, on_sent=lambda tr: None)
            rx.program(
                DepositPlan(
                    msg_id=chunks[0].msg_id, dest=dst_buf,
                    accept_bytes=len(pay), on_complete=lambda p: done.append(p),
                )
            )
            txe.submit(t)

        mk(tx0, 0, pay0, dst0)
        mk(tx2, 2, pay2, dst2)
        sim.run()
        assert len(done) == 2
        assert np.array_equal(dst0, pay0)
        assert np.array_equal(dst2, pay2)
