"""Memory descriptors and event queues in isolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.portals import (
    PTL_MD_THRESH_INF,
    EventKind,
    EventQueue,
    MDOptions,
    PortalsEvent,
    PtlEQDropped,
    PtlEQEmpty,
    PtlMDIllegal,
    md_from_buffer,
)
from repro.sim import Simulator


def _buf(n):
    return np.zeros(n, dtype=np.uint8)


class TestMemoryDescriptor:
    def test_basic_construction(self):
        md = md_from_buffer(_buf(100))
        assert md.length == 100 and md.active
        assert md.threshold == PTL_MD_THRESH_INF

    def test_none_buffer_zero_length(self):
        md = md_from_buffer(None)
        assert md.length == 0

    def test_buffer_must_be_uint8_1d(self):
        with pytest.raises(PtlMDIllegal):
            md_from_buffer(np.zeros(4, dtype=np.float64))
        with pytest.raises(PtlMDIllegal):
            md_from_buffer(np.zeros((2, 2), dtype=np.uint8))

    def test_negative_threshold_rejected(self):
        with pytest.raises(PtlMDIllegal):
            md_from_buffer(_buf(4), threshold=-2)

    def test_threshold_consumption(self):
        md = md_from_buffer(_buf(4), threshold=2)
        md.consume_threshold()
        md.consume_threshold()
        assert md.exhausted
        with pytest.raises(PtlMDIllegal):
            md.consume_threshold()

    def test_infinite_threshold_never_exhausts(self):
        md = md_from_buffer(_buf(4))
        for _ in range(100):
            md.consume_threshold()
        assert not md.exhausted

    def test_accepts_by_operation(self):
        put_md = md_from_buffer(_buf(4), options=MDOptions.OP_PUT)
        assert put_md.accepts(is_put=True)
        assert not put_md.accepts(is_put=False)
        both = md_from_buffer(_buf(4), options=MDOptions.OP_PUT | MDOptions.OP_GET)
        assert both.accepts(is_put=True) and both.accepts(is_put=False)

    def test_inactive_rejects(self):
        md = md_from_buffer(_buf(4), options=MDOptions.OP_PUT)
        md.active = False
        assert not md.accepts(is_put=True)

    def test_region_bounds(self):
        md = md_from_buffer(_buf(10))
        view = md.region(2, 5)
        assert len(view) == 5
        view[:] = 7
        assert md.buffer[2] == 7  # region is a real view
        with pytest.raises(PtlMDIllegal):
            md.region(8, 5)
        with pytest.raises(PtlMDIllegal):
            md.region(-1, 2)

    def test_events_enabled_flags(self):
        eq = object()
        md = md_from_buffer(_buf(4), eq=eq, options=MDOptions.EVENT_START_DISABLE)
        assert not md.events_enabled(start=True)
        assert md.events_enabled(start=False)
        no_eq = md_from_buffer(_buf(4))
        assert not no_eq.events_enabled(start=False)

    def test_md_ids_unique(self):
        assert md_from_buffer(_buf(1)).md_id != md_from_buffer(_buf(1)).md_id


class TestEventQueue:
    def _ev(self, kind=EventKind.PUT_END):
        return PortalsEvent(kind=kind)

    def test_fifo_order(self):
        eq = EventQueue(Simulator(), 8)
        for i in range(5):
            ev = self._ev()
            ev.mlength = i
            eq.post(ev)
        assert [eq.get().mlength for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_get_raises(self):
        eq = EventQueue(Simulator(), 4)
        with pytest.raises(PtlEQEmpty):
            eq.get()
        assert eq.try_get() is None

    def test_sequence_numbers_monotonic(self):
        eq = EventQueue(Simulator(), 8)
        eq.post(self._ev())
        eq.post(self._ev())
        assert eq.get().sequence < eq.get().sequence

    def test_overflow_reports_dropped(self):
        eq = EventQueue(Simulator(), 2)
        for _ in range(4):
            eq.post(self._ev())
        with pytest.raises(PtlEQDropped):
            eq.get()
        # after the dropped notification, remaining events readable
        assert eq.get() is not None
        assert eq.pending == 1

    def test_size_validation(self):
        with pytest.raises(ValueError):
            EventQueue(Simulator(), 0)

    def test_post_to_freed_rejected(self):
        eq = EventQueue(Simulator(), 4)
        eq.freed = True
        with pytest.raises(PtlEQDropped):
            eq.post(self._ev())

    def test_wait_signal_fires_on_post(self):
        sim = Simulator()
        eq = EventQueue(sim, 4)
        woke = []

        def waiter():
            yield eq.wait_signal()
            woke.append(sim.now)

        def poster():
            yield sim.timeout(100)
            eq.post(self._ev())

        sim.process(waiter())
        sim.process(poster())
        sim.run()
        assert woke == [100]

    def test_wait_signal_immediate_when_pending(self):
        sim = Simulator()
        eq = EventQueue(sim, 4)
        eq.post(self._ev())
        sig = eq.wait_signal()
        assert sig.triggered

    def test_timestamps_recorded(self):
        sim = Simulator()
        eq = EventQueue(sim, 4)

        def body():
            yield sim.timeout(777)
            eq.post(self._ev())

        sim.process(body())
        sim.run()
        assert eq.get().sim_time == 777

    @settings(max_examples=30, deadline=None)
    @given(size=st.integers(1, 16), n=st.integers(0, 64))
    def test_pending_count_and_drop_accounting(self, size, n):
        eq = EventQueue(Simulator(), size)
        for _ in range(n):
            eq.post(self._ev())
        assert eq.pending == min(n, size)
        assert eq.dropped == max(0, n - size)
