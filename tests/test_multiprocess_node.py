"""Multiple processes per node, pid demultiplexing, and loopback."""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.portals import EventKind, MDOptions

from .conftest import drain_events, make_target, run_to_completion


class TestPidDemux:
    def test_two_generic_processes_receive_independently(self):
        """The kernel multiplexes all generic processes over one firmware
        mailbox (Figure 2) and demultiplexes incoming traffic by pid."""
        machine, na, nb = build_pair()
        sender_proc = na.create_process()
        recv1 = nb.create_process()
        recv2 = nb.create_process()
        assert recv1.pid != recv2.pid

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=32)
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return evs[-1].hdr_data, int(buf[0])

        def sender(proc, t1, t2):
            api = proc.api
            b1 = proc.alloc(4)
            b1[:] = 11
            b2 = proc.alloc(4)
            b2[:] = 22
            md1 = yield from api.PtlMDBind(b1)
            md2 = yield from api.PtlMDBind(b2)
            yield from api.PtlPut(md1, t1, 4, 0x1234, hdr_data=1)
            yield from api.PtlPut(md2, t2, 4, 0x1234, hdr_data=2)
            yield proc.sim.timeout(100_000_000)
            return True

        h1 = recv1.spawn(receiver)
        h2 = recv2.spawn(receiver)
        hs = sender_proc.spawn(sender, recv1.id, recv2.id)
        v1, v2, _ = run_to_completion(machine, h1, h2, hs)
        assert v1 == (1, 11)
        assert v2 == (2, 22)

    def test_unknown_pid_traffic_dropped(self):
        machine, na, nb = build_pair()
        sender_proc = na.create_process()
        nb.create_process()  # pid 1 exists, but we target pid 99

        def sender(proc):
            from repro.portals import ProcessId

            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(100))
            yield from api.PtlPut(md, ProcessId(nb.node_id, 99), 4, 0x1234)
            yield proc.sim.timeout(100_000_000)
            return True

        hs = sender_proc.spawn(sender)
        run_to_completion(machine, hs)
        assert nb.kernel.counters["drops_unknown_pid"] == 1

    def test_duplicate_pid_registration_rejected(self):
        machine, na, nb = build_pair()
        na.create_process(pid=5)
        with pytest.raises(ValueError):
            na.create_process(pid=5)


class TestLoopback:
    def test_put_to_self_node_different_process(self):
        """Two processes on the same node communicate through the NIC
        (0-hop loopback through the fabric)."""
        machine, na, nb = build_pair()
        p1 = na.create_process()
        p2 = na.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64)
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return bytes(buf[:8])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(8)
            buf[:] = 77
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(100_000_000)
            return True

        hr = p2.spawn(receiver)
        hs = p1.spawn(sender, p2.id)
        data, _ = run_to_completion(machine, hr, hs)
        assert data == bytes([77]) * 8

    def test_put_to_own_process(self):
        """A process putting to itself (self-targeted one-sided op)."""
        machine, na, nb = build_pair()
        proc = na.create_process()

        def body(p):
            api = p.api
            eq, me, md, buf = yield from make_target(p, size=64)
            src = p.alloc(16)
            src[:] = 5
            smd = yield from api.PtlMDBind(src, eq=eq)
            yield from api.PtlPut(smd, p.id, 4, 0x1234)
            evs = yield from drain_events(api, eq, want=[EventKind.PUT_END])
            return bytes(buf[:16])

        handle = proc.spawn(body)
        (data,) = run_to_completion(machine, handle)
        assert data == bytes([5]) * 16

    def test_loopback_large_payload(self):
        machine, na, nb = build_pair()
        p1 = na.create_process()
        p2 = na.create_process()
        n = 100_000

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=n)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return int(buf[0]), int(buf[-1])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(n)
            buf[:] = 9
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(2_000_000_000)
            return True

        hr = p2.spawn(receiver)
        hs = p1.spawn(sender, p2.id)
        (first, last), _ = run_to_completion(machine, hr, hs)
        assert first == 9 and last == 9


class TestMixedModesOneNode:
    def test_accelerated_and_generic_processes_share_the_nic(self):
        """One accelerated + one generic process on the same node both
        receive from a remote sender — the two event paths (direct EQ
        write vs kernel interrupt) coexist."""
        machine, na, nb = build_pair()
        accel = nb.create_process(accelerated=True)
        generic = nb.create_process()
        sender_proc = na.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=32)
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return evs[-1].hdr_data

        def sender(proc, t_accel, t_generic):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(4))
            yield from api.PtlPut(md, t_accel, 4, 0x1234, hdr_data=100)
            yield from api.PtlPut(md, t_generic, 4, 0x1234, hdr_data=200)
            yield proc.sim.timeout(100_000_000)
            return True

        ha = accel.spawn(receiver)
        hg = generic.spawn(receiver)
        hs = sender_proc.spawn(sender, accel.id, generic.id)
        va, vg, _ = run_to_completion(machine, ha, hg, hs)
        assert va == 100 and vg == 200
        # only the generic delivery interrupted the host
        assert nb.opteron.counters["interrupts"] >= 1
