"""Span timeline tracing: harness, exporter, aggregation, reconciliation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.breakdown import breakdown_by_name
from repro.netpipe import PortalsPutModule, run_series
from repro.trace import (
    aggregate_stages,
    export_chrome_trace,
    format_reconcile,
    format_stage_table,
    reconcile_put,
    trace_put,
    validate_chrome_trace,
)

pytestmark = pytest.mark.trace


def _assert_well_nested(spans):
    """Per (node, component), closed spans must nest like a call stack."""
    groups = {}
    for s in spans:
        groups.setdefault((s.node, s.component), []).append(s)
    for group in groups.values():
        for a in group:
            for b in group:
                if a is b or a.t0 > b.t0:
                    continue
                # a starts first (ties nest by construction: the later
                # begin is the inner span) — b must be inside or after a
                if a.t0 < b.t0 < a.t1:
                    assert b.t1 <= a.t1, (a, b)


class TestHarnessProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        nbytes=st.integers(min_value=1, max_value=2048),
        hops=st.integers(min_value=1, max_value=4),
    )
    def test_span_timeline_invariants(self, nbytes, hops):
        result = trace_put(nbytes, hops=hops)
        # every begin has an end, in order
        for span in result.spans:
            assert span.t1 is not None, f"open span {span.name}"
            assert span.t0 <= span.t1
        # the root message.put span is the harness latency
        assert result.root in result.spans
        assert result.root.duration == result.latency_ps > 0
        # no message span escapes the root interval
        for span in result.spans:
            assert span.t0 >= 0
        _assert_well_nested(result.spans)

    def test_message_spans_carry_correlation_id(self):
        result = trace_put(1)
        wire = [s for s in result.spans if s.component in ("wire", "flight")]
        assert wire and all(s.msg_id is not None and s.msg_id > 0 for s in wire)
        # the firmware backfills the same id onto the sender's kernel span
        (tx_kernel,) = [s for s in result.spans if s.name == "host.tx_kernel"]
        assert tx_kernel.msg_id == wire[0].msg_id


class TestChromeExport:
    def test_golden_deterministic_and_schema_valid(self):
        doc_a = export_chrome_trace(trace_put(1).spans)
        doc_b = export_chrome_trace(trace_put(1).spans)
        validate_chrome_trace(doc_a)
        assert json.dumps(doc_a, sort_keys=True) == json.dumps(
            doc_b, sort_keys=True
        )
        events = doc_a["traceEvents"]
        names = {e["name"] for e in events}
        # the put path's landmark stages all appear
        for landmark in (
            "message.put",
            "host.api_call",
            "host.tx_kernel",
            "fw.tx_cmd",
            "wire.serialize",
            "fw.rx",
            "host.interrupt",
            "host.deliver",
            "eq.post",
        ):
            assert landmark in names, landmark
        # one trace "process" per node, swimlane metadata present
        pids = {e["pid"] for e in events}
        assert len(pids) == 2
        assert {e["args"]["name"] for e in events if e["name"] == "process_name"} == {
            "node 0",
            "node 1",
        }

    def test_export_writes_file(self, tmp_path):
        out = tmp_path / "trace.json"
        export_chrome_trace(trace_put(1).spans, path=str(out))
        validate_chrome_trace(json.loads(out.read_text()))

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1}
                ]}
            )


class TestAggregation:
    def test_stage_table_counts_and_totals(self):
        result = trace_put(1)
        stats = {s.name: s for s in aggregate_stages(result.spans)}
        assert stats["host.api_call"].count == 1
        assert stats["host.interrupt"].count == 2  # PUT_END at b, SEND_END at a
        assert stats["message.put"].total_ps == result.latency_ps
        assert stats["eq.post"].total_ps == 0  # instants: count, no duration
        table = format_stage_table(list(stats.values()))
        assert "host.api_call" in table and "p99" in table


class TestReconciliation:
    def test_one_byte_put_reconciles_within_tolerance(self):
        result = trace_put(1)
        report = reconcile_put(result)
        assert report.ok, format_reconcile(report)
        assert report.measured_error <= 0.05
        # the mapping covers the analytic stage list exactly
        covered = {stage for row in report.rows for stage in row.stages}
        assert covered == set(breakdown_by_name(result.config, nbytes=1))

    def test_reconcile_rejects_non_inline_sizes(self):
        result = trace_put(4096)
        with pytest.raises(ValueError, match="inline"):
            reconcile_put(result)

    def test_reconcile_is_node_aware(self):
        report = reconcile_put(trace_put(1))
        sides = {row.span_name: row.side for row in report.rows}
        assert sides["host.tx_kernel"] == "src"
        assert sides["host.interrupt"] == "dst"


class TestZeroOverhead:
    def test_benchmark_timings_identical_with_tracing_on(self):
        # tracing must never perturb the schedule: the same sweep with
        # spans recorded lands on bit-identical simulated timestamps
        sizes = [1, 128]
        plain = run_series(PortalsPutModule(), "pingpong", sizes)
        traced = run_series(PortalsPutModule(), "pingpong", sizes, trace=True)
        assert [(p.nbytes, p.total_ps) for p in plain.points] == [
            (p.nbytes, p.total_ps) for p in traced.points
        ]

    def test_tracing_off_by_default(self):
        from repro.machine.builder import build_pair

        machine, node_a, _ = build_pair()
        assert machine.tracer is None
        assert node_a.kernel.tracer is None
        assert machine.fabric.tracer is None
