"""Resource exhaustion: panic mode (the paper's current behaviour) and
the go-back-N recovery protocol (the paper's in-progress work)."""

import numpy as np
import pytest

from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import Machine, build_pair
from repro.net import Torus3D
from repro.portals import EventKind, MDOptions, NicPanic
from repro.sim import SimulationError, US

from .conftest import drain_events, make_target, run_to_completion

#: a configuration with tiny pools so exhaustion is easy to trigger
TINY = SeaStarConfig(
    generic_rx_pendings=2,
    generic_tx_pendings=32,
    num_generic_pendings=34,
    gobackn_backoff=5 * US,
)


def flood(machine, na, nb, *, messages, nbytes=5000, respond_after=None):
    """Sender fires ``messages`` puts; receiver only starts consuming
    after ``respond_after`` (ps) so RX pendings pile up."""
    pa, pb = na.create_process(), nb.create_process()
    got = []

    def receiver(proc):
        eq, me, md, buf = yield from make_target(
            proc,
            size=nbytes,
            eq_size=512,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
        )
        if respond_after:
            yield proc.sim.timeout(respond_after)
        for _ in range(messages):
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            got.append(evs[-1].mlength)
        return got

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(256)
        md = yield from api.PtlMDBind(proc.alloc(nbytes), eq=eq)
        for _ in range(messages):
            yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
        for _ in range(messages):
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    return hr, hs


class TestPanicMode:
    def test_rx_pending_exhaustion_panics(self):
        """Paper 4.3: 'The current approach is to panic the node'."""
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.PANIC)
        # With only 2 RX pendings and interrupts slower than arrivals,
        # a burst overwhelms the receiver.
        flood(machine, na, nb, messages=30, nbytes=12)
        with pytest.raises(SimulationError) as err:
            machine.run()
        assert isinstance(err.value.__cause__, NicPanic)
        assert nb.firmware.panicked

    def test_small_workloads_never_exhaust(self):
        """Paper 4.3: 'we have never observed anything approaching
        dangerous levels' under normal operation."""
        machine, na, nb = build_pair()  # full-size pools
        hr, hs = flood(machine, na, nb, messages=50, nbytes=100)
        run_to_completion(machine, hr, hs)
        generic = nb.firmware.generic
        assert generic.rx_pendings.high_water < generic.rx_pendings.capacity / 2


class TestGoBackN:
    def test_flood_recovers_and_delivers_everything(self):
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        hr, hs = flood(machine, na, nb, messages=30, nbytes=12)
        got, _ = run_to_completion(machine, hr, hs)
        assert len(got) == 30
        assert nb.firmware.counters["naks_sent"] > 0
        assert na.firmware.counters["retransmits"] > 0
        assert nb.firmware.counters["gobackn_recovered"] >= 1

    def test_payload_messages_survive_recovery(self):
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        hr, hs = flood(machine, na, nb, messages=12, nbytes=5000)
        got, _ = run_to_completion(machine, hr, hs)
        assert got == [5000] * 12

    def test_data_integrity_after_retransmit(self):
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        pa, pb = na.create_process(), nb.create_process()
        n, count = 600, 10
        payloads = [np.full(n, i + 1, dtype=np.uint8) for i in range(count)]

        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=n * count,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            )
            yield proc.sim.timeout(200 * US)  # force exhaustion first
            for _ in range(count):
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return bytes(buf)

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(64)
            for i in range(count):
                md = yield from api.PtlMDBind(payloads[i], eq=eq)
                # each message lands in its own slice of the target
                yield from api.PtlPut(md, target, 4, 0x1234, remote_offset=i * n)
            for _ in range(count):
                yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        data, _ = run_to_completion(machine, hr, hs)
        expected = b"".join(bytes([i + 1]) * n for i in range(count))
        assert data == expected

    def test_ordering_preserved_under_recovery(self):
        """Sequence numbers guarantee the receiver matches in send order
        even when some messages were NACKed and replayed."""
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        pa, pb = na.create_process(), nb.create_process()
        count = 25
        seen = []

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=16)
            yield proc.sim.timeout(100 * US)
            for _ in range(count):
                evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
                seen.append(evs[-1].hdr_data)
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(128)
            md = yield from api.PtlMDBind(proc.alloc(4), eq=eq)
            for i in range(count):
                yield from api.PtlPut(md, target, 4, 0x1234, hdr_data=i, length=4)
            for _ in range(count):
                yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        assert seen == list(range(count))

    def test_no_overhead_when_not_exhausted(self):
        machine, na, nb = build_pair(policy=ExhaustionPolicy.GO_BACK_N)
        hr, hs = flood(machine, na, nb, messages=10, nbytes=100)
        run_to_completion(machine, hr, hs)
        assert na.firmware.counters["retransmits"] == 0
        assert nb.firmware.counters["naks_sent"] == 0
