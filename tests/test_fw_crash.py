"""Firmware crash/restart and heartbeat peer-death detection.

The chaos campaign exercises these end to end; here each mechanism is
pinned down in isolation: a crashed firmware queues (never loses) work,
a dead peer is declared exactly once from the SACK-silence heartbeat,
outstanding transmits toward it surface PTL_NI_FAIL exactly once, and
sends attempted after the declaration fail fast.
"""

import pytest

from repro.faults import FaultPlan, FirmwareCrash, NodeDeath, named_plan, \
    verify_payload_integrity
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import DEFAULT_CONFIG
from repro.machine.builder import build_pair
from repro.portals import (
    PTL_ACK_REQ,
    PTL_MD_THRESH_INF,
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    NIFailType,
    ProcessId,
)
from repro.sim import us

GO_BACK_N = ExhaustionPolicy.GO_BACK_N
PORTAL, BITS = 4, 0x7777


def _receiver_forever(proc):
    api = proc.api
    eq = yield from api.PtlEQAlloc(256)
    me = yield from api.PtlMEAttach(PORTAL, ProcessId(PTL_NID_ANY, PTL_PID_ANY), BITS)
    buf = proc.alloc(8192)
    yield from api.PtlMDAttach(
        me,
        buf,
        options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
        eq=eq,
        threshold=PTL_MD_THRESH_INF,
    )
    while True:
        yield from api.PtlEQWait(eq)


class TestFirmwareCrashRestart:
    def test_crash_with_restart_loses_nothing(self):
        """Mid-transfer firmware crash + watchdog reboot: queued work
        drains after the restart delay and every payload arrives."""
        plan = FaultPlan(
            fw_crashes=(FirmwareCrash(node=1, at=us(30), restart_after=us(100)),)
        )
        result = verify_payload_integrity(plan, [1, 4096, 40_000])
        assert result["ok"], result["mismatches"]
        fw = result["machine"].nodes[1].firmware
        assert fw.counters["fw_crashes"] == 1
        assert fw.counters["fw_restarts"] == 1
        assert result["report"]["injected"]["fw_crash_restarts"] == 1

    def test_named_fw_crash_plan_recovers(self):
        result = verify_payload_integrity(
            named_plan("fw-crash"), [1, 1024, 40_000]
        )
        assert result["ok"], result["mismatches"]

    def test_restart_delays_but_preserves_determinism(self):
        plan = FaultPlan(
            fw_crashes=(FirmwareCrash(node=1, at=us(30), restart_after=us(100)),)
        )
        from repro.faults import ScriptedFault

        a = verify_payload_integrity(plan, [1, 40_000])
        b = verify_payload_integrity(plan, [1, 40_000])
        # injector live but never fires: the clean reference duration
        clean = verify_payload_integrity(
            FaultPlan(script=(ScriptedFault(10_000_000),)), [1, 40_000]
        )
        assert a["machine"].now == b["machine"].now
        # the mid-run crash actually cost simulated time
        assert a["machine"].now > clean["machine"].now

    def test_enable_peer_monitor_validates_timeout(self):
        _machine, na, _nb = build_pair()
        with pytest.raises(ValueError, match="timeout"):
            na.firmware.enable_peer_monitor(0)


class TestNodeDeath:
    def _run_death(self, *, late_send_at=None, n=4, death_at=us(300)):
        plan = FaultPlan(node_deaths=(NodeDeath(node=1, at=death_at),))
        cfg = DEFAULT_CONFIG.replace(
            reliable_transport=True, gobackn_max_retries=4
        )
        machine, na, nb = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        pa, pb = na.create_process(), nb.create_process()
        state = {"acked": 0, "failed": 0, "violations": 0}

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(256)
            buf = proc.alloc(2048)
            buf[:] = 0x5A
            total = n + (1 if late_send_at is not None else 0)
            terminal = [0] * total
            for i in range(n):
                md = yield from api.PtlMDBind(
                    buf, eq=eq, threshold=PTL_MD_THRESH_INF, user_ptr=i
                )
                yield from api.PtlPut(
                    md, target, PORTAL, BITS, length=2048, ack_req=PTL_ACK_REQ
                )
                if i < n - 1:
                    yield us(150)
            if late_send_at is not None:
                # past the declaration (~death + timeout + poll slack)
                yield late_send_at
                md = yield from api.PtlMDBind(
                    buf, eq=eq, threshold=PTL_MD_THRESH_INF, user_ptr=n
                )
                yield from api.PtlPut(
                    md, target, PORTAL, BITS, length=2048, ack_req=PTL_ACK_REQ
                )
            while any(t == 0 for t in terminal):
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.ACK:
                    terminal[ev.md_user_ptr] += 1
                    state["acked"] += 1
                elif (
                    ev.kind is EventKind.SEND_END
                    and ev.ni_fail_type is NIFailType.FAIL
                ):
                    terminal[ev.md_user_ptr] += 1
                    state["failed"] += 1
            state["violations"] = sum(1 for t in terminal if t > 1)

        pb.spawn(_receiver_forever)
        pa.spawn(sender, pb.id)
        machine.run()
        return machine, na, state

    def test_survivor_declares_peer_dead_exactly_once(self):
        machine, na, state = self._run_death()
        fw = na.firmware
        assert fw.counters["peer_deaths_detected"] == 1
        declared = fw.peer_death_times.get(1)
        assert declared is not None and declared >= us(300)
        # declaration comes from SACK silence: last SACK heard + timeout
        assert declared <= us(300) + us(400) + us(400) // 4 + us(200)

    def test_every_message_resolves_exactly_once(self):
        _machine, _na, state = self._run_death()
        assert state["violations"] == 0
        assert state["acked"] + state["failed"] == 4
        # messages sent before the death landed; at least one after died
        assert state["acked"] >= 1
        assert state["failed"] >= 1

    def test_send_after_declaration_fails_fast(self):
        # the late put leaves after the peer is declared dead: it must
        # fail immediately at the firmware, not burn the retry budget
        machine, na, state = self._run_death(late_send_at=us(1500))
        assert na.firmware.counters["dead_peer_sends"] >= 1
        assert state["violations"] == 0
        assert state["acked"] + state["failed"] == 5

    def test_sim_drains_despite_parked_receiver(self):
        # the dead node's firmware parks forever and the receiver never
        # returns, yet machine.run() terminated (or we wouldn't be here)
        machine, _na, _state = self._run_death()
        assert machine.now > us(300)

    def test_named_node_death_plan_wires_monitor_everywhere(self):
        plan = named_plan("node-death")
        cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
        _machine, na, nb = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        assert na.firmware._peer_timeout == plan.effective_peer_timeout()
        assert nb.firmware._peer_timeout == plan.effective_peer_timeout()
