"""Firmware-internal control pool (ACK/NAK/REPLY) exhaustion."""

import pytest

from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import PTL_ACK_REQ, EventKind

from .conftest import drain_events, make_target, run_to_completion


class TestControlPoolExhaustion:
    def test_ack_storm_drops_control_messages_but_data_survives(self):
        """Acks ride the firmware-internal pool; when it is exhausted the
        firmware drops the ACK (Portals permits lost acks) but never the
        data message itself."""
        cfg = SeaStarConfig(fw_internal_pendings=1)
        machine, na, nb = build_pair(cfg)
        pa, pb = na.create_process(), nb.create_process()
        count = 20

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64, eq_size=512)
            for _ in range(count):
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(512)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            for _ in range(count):
                yield from api.PtlPut(md, target, 4, 0x1234, ack_req=PTL_ACK_REQ)
            sends = acks = 0
            # all SEND_ENDs must arrive; acks may be fewer (dropped)
            while sends < count:
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.SEND_END:
                    sends += 1
                elif ev.kind is EventKind.ACK:
                    acks += 1
            yield proc.sim.timeout(500_000_000)
            while True:
                ev = eq.try_get()
                if ev is None:
                    break
                if ev.kind is EventKind.ACK:
                    acks += 1
            return sends, acks

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        _, (sends, acks) = run_to_completion(machine, hr, hs)
        assert sends == count          # data always delivered + completed
        assert acks <= count
        dropped = nb.firmware.counters["control_drops"]
        assert acks + dropped == count

    def test_full_pool_drops_nothing(self):
        machine, na, nb = build_pair()  # default 64-deep pool
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64, eq_size=256)
            for _ in range(10):
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(256)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            for _ in range(10):
                yield from api.PtlPut(md, target, 4, 0x1234, ack_req=PTL_ACK_REQ)
            acks = 0
            while acks < 10:
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.ACK:
                    acks += 1
            return acks

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        _, acks = run_to_completion(machine, hr, hs)
        assert acks == 10
        assert nb.firmware.counters["control_drops"] == 0
