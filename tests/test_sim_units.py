"""Unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import units


class TestTimeConversions:
    def test_constants(self):
        assert units.NS == 1000
        assert units.US == 1_000_000
        assert units.SEC == units.US * units.US

    def test_ns_round_trip(self):
        assert units.ns(75) == 75_000
        assert units.to_ns(units.ns(75)) == pytest.approx(75.0)

    def test_us_round_trip(self):
        assert units.us(2.0) == 2_000_000
        assert units.to_us(units.us(5.39)) == pytest.approx(5.39)

    def test_fractional_ns_rounds(self):
        assert units.ns(55.05) == 55_050

    @given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
    def test_us_ns_consistency(self, value):
        assert units.us(value) == pytest.approx(units.ns(value * 1000), abs=1)


class TestTransfer:
    def test_zero_bytes_zero_time(self):
        assert units.transfer_time(0, 1e9) == 0

    def test_nonzero_never_zero(self):
        assert units.transfer_time(1, 1e30) >= 1

    def test_known_rate(self):
        # 1 GB at 1 GB/s = 1 s
        one_gb = 10**9
        assert units.transfer_time(one_gb, 1e9) == units.SEC

    def test_rate_mb_s_round_trip(self):
        # 1 MiB in 1 ms -> 1000 MB/s (about 1 GiB/s = 1024 MB/s? no:
        # rate is MiB per second, so 1 MiB / 0.001 s = 1000 MB/s)
        assert units.rate_mb_s(units.MB, units.MS) == pytest.approx(1000.0)

    def test_rate_requires_positive_duration(self):
        with pytest.raises(ValueError):
            units.rate_mb_s(100, 0)


class TestFormatting:
    @pytest.mark.parametrize(
        "ps,expect",
        [
            (500, "500 ps"),
            (1500, "1.500 ns"),
            (2_000_000, "2.000 us"),
            (3_500_000_000, "3.500 ms"),
            (2_000_000_000_000, "2.000 s"),
        ],
    )
    def test_fmt_time(self, ps, expect):
        assert units.fmt_time(ps) == expect

    @pytest.mark.parametrize(
        "nbytes,expect",
        [
            (12, "12 B"),
            (2048, "2.00 KiB"),
            (8 * units.MB, "8.00 MiB"),
            (3 * units.GB, "3.00 GiB"),
        ],
    )
    def test_fmt_bytes(self, nbytes, expect):
        assert units.fmt_bytes(nbytes) == expect
