"""Cross-cutting robustness: Linux-node MPI, multi-EQ polling, config
perturbation properties, and synchronous firmware commands end to end."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import breakdown_total_us, latency_at
from repro.fw import InitProcessCmd
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.mpi import MPICH1, create_world, run_world
from repro.netpipe import PortalsPutModule, run_series
from repro.oskern import OSType
from repro.portals import EventKind
from repro.sim import ns

from .conftest import drain_events, make_target, pattern, run_to_completion


class TestLinuxComputeNodes:
    """The fourth deployment case: Linux compute node, single user
    application (section 3.1) — running full MPI."""

    def test_mpi_between_linux_nodes(self):
        machine, a, b = build_pair(os_type=OSType.LINUX)
        world = create_world(machine, [a, b], flavor=MPICH1)
        n = 300_000  # rendezvous, so paged-memory DMA prep is exercised

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(pattern(n).copy(), 1, tag=2)
                return None
            buf = np.zeros(n, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=2)
            return status.count, np.array_equal(buf, pattern(n))

        _, (count, intact) = run_world(machine, world, main)
        assert count == n and intact
        # paged memory actually pinned pages
        assert a.kernel.memory.pinned_pages > 0

    def test_linux_mpi_slower_than_catamount(self):
        def latency(os_type):
            machine, a, b = build_pair(os_type=os_type)
            world = create_world(machine, [a, b])
            stamps = {}

            def main(mpi, rank):
                buf = np.zeros(1, np.uint8)
                if rank == 0:
                    stamps["t0"] = mpi.sim.now
                    yield from mpi.send(buf, 1)
                    yield from mpi.recv(buf, source=1)
                    stamps["t1"] = mpi.sim.now
                else:
                    yield from mpi.recv(buf, source=0)
                    yield from mpi.send(buf, 0)
                return None

            run_world(machine, world, main)
            return stamps["t1"] - stamps["t0"]

        assert latency(OSType.LINUX) > latency(OSType.CATAMOUNT)


class TestEQPollMultiQueue:
    def test_poll_returns_whichever_fires_first(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            api = proc.api
            # two targets on different portals feeding different EQs
            eq1, me1, md1, buf1 = yield from make_target(proc, portal=4)
            eq2, me2, md2, buf2 = yield from make_target(proc, portal=5)
            hits = []
            while len(hits) < 2:
                result = yield from api.PtlEQPoll([eq1, eq2])
                eq, ev = result
                if ev.kind is EventKind.PUT_END:
                    hits.append(4 if eq is eq1 else 5)
            return hits

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(4))
            yield from api.PtlPut(md, target, 5, 0x1234)
            yield proc.sim.timeout(50_000_000)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(50_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        hits, _ = run_to_completion(machine, hr, hs)
        # portal 5 was hit first, then portal 4 (STARTs may interleave,
        # but PUT_END order follows send order)
        assert hits == [5, 4]


class TestSynchronousFirmwareCommands:
    def test_init_process_result_round_trip(self):
        machine, na, nb = build_pair()
        pa = na.create_process()
        results = []

        def body(proc):
            mailbox = na.kernel.proc.mailbox
            result = yield from mailbox.post_command_await_result(
                InitProcessCmd(host_pid=proc.pid)
            )
            results.append(result)
            return True

        handle = pa.spawn(body)
        run_to_completion(machine, handle)
        assert results[0]["ok"] and results[0]["fw_pid"] == 1


class TestConfigPerturbationProperties:
    """The analytic model and the simulation must move together under
    arbitrary (sane) cost perturbations — the strongest guard against
    silent path changes."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        interrupt_us=st.floats(0.5, 8.0),
        match_ns=st.integers(50, 2000),
        tx_ns=st.integers(100, 2000),
        hdr_ns=st.integers(100, 2000),
    )
    def test_analytic_tracks_simulation(self, interrupt_us, match_ns, tx_ns, hdr_ns):
        cfg = SeaStarConfig(
            interrupt_overhead=round(interrupt_us * 1_000_000),
            host_match_overhead=ns(match_ns),
            host_tx_overhead=ns(tx_ns),
            fw_rx_header=ns(hdr_ns),
        )
        series = run_series(PortalsPutModule(), "pingpong", [1], config=cfg)
        simulated = latency_at(series, 1)
        analytic = breakdown_total_us(cfg, nbytes=1)
        assert analytic == pytest.approx(simulated, rel=0.06)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(small=st.integers(0, 48))
    def test_piggyback_threshold_moves_the_step(self, small):
        cfg = SeaStarConfig(small_msg_bytes=small)
        probe = [max(small, 1), small + 1]
        series = run_series(PortalsPutModule(), "pingpong", probe, config=cfg)
        below = series.points[0].latency_us
        above = series.points[-1].latency_us
        if small >= 1:
            # the step sits exactly at the configured threshold
            assert above - below > 1.5
        else:
            # no piggyback at all: both probes take the payload path
            assert above == pytest.approx(below, abs=0.1)
