"""Portals corner semantics through the live stack."""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.portals import (
    EventKind,
    MDOptions,
    PtlEQDropped,
)

from .conftest import drain_events, make_target, run_to_completion


class TestRemoteOffsetEdges:
    def test_offset_beyond_buffer_truncates_to_zero(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=100,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            )
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            end = evs[-1]
            return end.mlength, end.rlength, end.offset

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(50))
            yield from api.PtlPut(md, target, 4, 0x1234, remote_offset=500)
            yield proc.sim.timeout(200_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        (mlength, rlength, offset), _ = run_to_completion(machine, hr, hs)
        assert mlength == 0 and rlength == 50 and offset == 500

    def test_offset_beyond_buffer_without_truncate_drops(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=100,
                options=MDOptions.OP_PUT | MDOptions.MANAGE_REMOTE,
            )
            yield proc.sim.timeout(200_000_000)
            return proc.ni.counters["drops"]

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(50))
            yield from api.PtlPut(md, target, 4, 0x1234, remote_offset=90)
            yield proc.sim.timeout(200_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        drops, _ = run_to_completion(machine, hr, hs)
        assert drops == 1
        assert nb.kernel.counters["drops_no_space"] == 1


class TestSendEndFields:
    def test_send_end_reports_length(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=4096)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(4096), eq=eq, user_ptr="tag!")
            yield from api.PtlPut(md, target, 4, 0x1234, local_offset=96, length=2000)
            evs = yield from drain_events(api, eq, want=[EventKind.SEND_END])
            end = [e for e in evs if e.kind is EventKind.SEND_END][0]
            return end.mlength, end.md_user_ptr

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        _, (mlength, user_ptr) = run_to_completion(machine, hr, hs)
        assert mlength == 2000 and user_ptr == "tag!"


class TestEQOverflowSurface:
    def test_ptleqwait_raises_dropped_after_overflow(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            # EQ of 2 slots, flood of events -> overflow
            eq, me, md, buf = yield from make_target(proc, size=64, eq_size=2)
            yield proc.sim.timeout(400_000_000)  # let everything land
            with pytest.raises(PtlEQDropped):
                while True:
                    yield from proc.api.PtlEQWait(eq)
            return True

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8))
            for _ in range(8):
                yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(400_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)


class TestThresholdInitiatorSide:
    def test_md_threshold_limits_puts(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            from repro.portals import PtlMDIllegal

            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8), threshold=2)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield from api.PtlPut(md, target, 4, 0x1234)
            with pytest.raises(PtlMDIllegal):
                yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(200_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)


class TestMatchListOrderThroughAPI:
    def test_head_insert_intercepts_traffic(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()
        from repro.portals import PTL_NID_ANY, PTL_PID_ANY, ProcessId

        ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)

        def receiver(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(64)
            tail_buf = proc.alloc(64)
            head_buf = proc.alloc(64)
            tail_me = yield from api.PtlMEAttach(4, ANY, 0x1234)
            yield from api.PtlMDAttach(
                tail_me, tail_buf,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE, eq=eq,
            )
            # head entry with identical criterion shadows the tail
            head_me = yield from api.PtlMEAttach(4, ANY, 0x1234, position_head=True)
            yield from api.PtlMDAttach(
                head_me, head_buf,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE, eq=eq,
            )
            yield from drain_events(api, eq, want=[EventKind.PUT_END])
            return int(head_buf[0]), int(tail_buf[0])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(8)
            buf[:] = 42
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(200_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        (head_val, tail_val), _ = run_to_completion(machine, hr, hs)
        assert head_val == 42 and tail_val == 0
