"""SeaStar SRAM accounting and the paper's occupancy formula."""

import pytest

from repro.hw import SramAllocator, SramExhausted
from repro.hw.config import SeaStarConfig
from repro.sim import KB


class TestAllocator:
    def test_reserve_and_account(self):
        sram = SramAllocator(384 * KB)
        pool = sram.reserve("sources", 1024, 32)
        assert pool.total_bytes == 32768
        assert sram.used_bytes == 32768
        assert sram.free_bytes == 384 * KB - 32768

    def test_duplicate_name_rejected(self):
        sram = SramAllocator(1024)
        sram.reserve("a", 1, 100)
        with pytest.raises(ValueError):
            sram.reserve("a", 1, 100)

    def test_exhaustion(self):
        sram = SramAllocator(1000)
        sram.reserve("big", 1, 900)
        with pytest.raises(SramExhausted):
            sram.reserve("more", 1, 200)

    def test_negative_sizes_rejected(self):
        sram = SramAllocator(1000)
        with pytest.raises(ValueError):
            sram.reserve("bad", -1, 10)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SramAllocator(0)

    def test_pool_lookup(self):
        sram = SramAllocator(1000)
        sram.reserve("x", 2, 50)
        assert sram.pool("x").count == 2
        assert "x" in sram.pools()

    def test_occupancy_report(self):
        sram = SramAllocator(1000)
        sram.reserve("x", 2, 50)
        report = sram.occupancy_report()
        assert "x" in report and "100" in report


class TestPaperFormula:
    """M = S * Ssize + sum_i(P_i * Psize), section 4.2."""

    def test_formula_matches_allocator(self):
        cfg = SeaStarConfig()
        sram = SramAllocator(cfg.sram_bytes)
        sram.reserve("sources", cfg.num_sources, cfg.source_struct_bytes)
        sram.reserve(
            "pendings:generic", cfg.num_generic_pendings, cfg.pending_struct_bytes
        )
        expected = (
            cfg.num_sources * cfg.source_struct_bytes
            + cfg.num_generic_pendings * cfg.pending_struct_bytes
        )
        assert sram.used_bytes == expected

    def test_paper_configuration_fits(self):
        """1,024 sources + 1,274 generic pendings fit comfortably."""
        cfg = SeaStarConfig()
        sram = SramAllocator(cfg.sram_bytes)
        sram.reserve("sources", cfg.num_sources, cfg.source_struct_bytes)
        sram.reserve(
            "pendings:generic", cfg.num_generic_pendings, cfg.pending_struct_bytes
        )
        assert sram.free_bytes > 0

    def test_several_more_pending_pools_fit(self):
        """Paper: "several more similarly sized pending pools can be
        supported for additional firmware-level processes"."""
        cfg = SeaStarConfig()
        sram = SramAllocator(cfg.sram_bytes)
        sram.reserve("sources", cfg.num_sources, cfg.source_struct_bytes)
        sram.reserve("p0", cfg.num_generic_pendings, cfg.pending_struct_bytes)
        extra = 0
        try:
            while True:
                sram.reserve(
                    f"p{extra + 1}",
                    cfg.num_generic_pendings,
                    cfg.pending_struct_bytes,
                )
                extra += 1
        except SramExhausted:
            pass
        assert extra >= 2, "expected room for several more pools"

    def test_multiple_processes_sum(self):
        cfg = SeaStarConfig()
        sram = SramAllocator(cfg.sram_bytes)
        sram.reserve("sources", cfg.num_sources, cfg.source_struct_bytes)
        pools = [300, 500, 200]
        for i, n in enumerate(pools):
            sram.reserve(f"proc{i}", n, cfg.pending_struct_bytes)
        expected = cfg.num_sources * cfg.source_struct_bytes + sum(
            n * cfg.pending_struct_bytes for n in pools
        )
        assert sram.used_bytes == expected
