"""The content-addressed result cache: key canonicalization, the
torn-write-safe store, and its integration with ``run_bench``.

The load-bearing properties:

* keys are **stable** across everything that cannot change a simulated
  result (dict ordering, tuple/list spelling, worker counts) and
  **distinct** across everything that can (seed, sizes, fault plan,
  code version);
* unreadable artifacts — torn JSON from a SIGKILLed writer included —
  load as plain misses, never wrong answers;
* ``bench --cache`` is byte-identical cold, hot, and disabled, and a
  warm re-run performs zero simulation work.
"""

import json
import multiprocessing
import os

import pytest

from repro.benchrunner import (
    discover_shards,
    run_bench,
    shard_cache_request,
    simulated_json,
)
from repro.benchrunner.pool import TEST_KILL_WRITE_ENV
from repro.cache import ResultCache, cache_key, canonical_blob, code_version


# -- key canonicalization ----------------------------------------------------


class TestCacheKey:
    def test_stable_across_dict_ordering(self):
        a = {"kind": "sweep", "module": "put", "sizes": [1, 1024], "hops": 1}
        b = {"hops": 1, "sizes": [1, 1024], "module": "put", "kind": "sweep"}
        assert cache_key(a, code="c") == cache_key(b, code="c")

    def test_stable_across_tuple_list_spelling(self):
        a = {"kind": "sweep", "sizes": (1, 1024)}
        b = {"kind": "sweep", "sizes": [1, 1024]}
        assert cache_key(a, code="c") == cache_key(b, code="c")

    def test_nested_dicts_sorted_too(self):
        a = {"kind": "x", "cfg": {"alpha": 1, "beta": 2}}
        b = {"cfg": {"beta": 2, "alpha": 1}, "kind": "x"}
        assert canonical_blob(a) == canonical_blob(b)

    def test_distinct_across_seed(self):
        a = {"kind": "chaos", "plan": "drop-1pct", "seed": 0}
        b = {"kind": "chaos", "plan": "drop-1pct", "seed": 1}
        assert cache_key(a, code="c") != cache_key(b, code="c")

    def test_distinct_across_sizes(self):
        a = {"kind": "sweep", "sizes": [1, 1024]}
        b = {"kind": "sweep", "sizes": [1, 2048]}
        assert cache_key(a, code="c") != cache_key(b, code="c")

    def test_distinct_across_fault_plan(self):
        a = {"kind": "chaos", "plan": "drop-1pct", "seed": 0}
        b = {"kind": "chaos", "plan": "flap-mid", "seed": 0}
        assert cache_key(a, code="c") != cache_key(b, code="c")

    def test_distinct_across_code_version(self):
        req = {"kind": "sweep", "sizes": [1]}
        assert cache_key(req, code="aaaa") != cache_key(req, code="bbbb")

    def test_unserializable_request_rejected(self):
        with pytest.raises(TypeError):
            cache_key({"kind": "x", "bad": object()}, code="c")
        with pytest.raises(TypeError):
            cache_key({"kind": "x", "bad": float("nan")}, code="c")

    def test_shard_requests_exclude_execution_strategy(self):
        """Worker counts / checkpoints / timeouts never fragment keys:
        the shard request is a pure description of simulated content."""
        shard = discover_shards(fast=True, filter="fig4/put/d0")[0]
        req = shard_cache_request(shard, stats=False)
        assert set(req) == {
            "kind", "spec", "variant", "chunk", "sizes", "fast", "stats"
        }

    def test_shard_requests_distinct_across_stats_flag(self):
        shard = discover_shards(fast=True, filter="fig4/put/d0")[0]
        plain = shard_cache_request(shard, stats=False)
        stats = shard_cache_request(shard, stats=True)
        assert cache_key(plain, code="c") != cache_key(stats, code="c")


class TestCodeVersion:
    def test_same_tree_same_digest(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        assert code_version(tmp_path) == code_version(tmp_path)

    def test_content_change_changes_digest(self, tmp_path):
        a = tmp_path / "t1"
        b = tmp_path / "t2"
        for root, body in [(a, "x = 1\n"), (b, "x = 2\n")]:
            root.mkdir()
            (root / "mod.py").write_text(body)
        assert code_version(a) != code_version(b)

    def test_rename_changes_digest(self, tmp_path):
        a = tmp_path / "t1"
        b = tmp_path / "t2"
        a.mkdir(), b.mkdir()
        (a / "one.py").write_text("x = 1\n")
        (b / "two.py").write_text("x = 1\n")
        assert code_version(a) != code_version(b)

    def test_pycache_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_version(tmp_path)
        from repro.cache.key import _CODE_VERSION_CACHE

        _CODE_VERSION_CACHE.clear()
        pyc = tmp_path / "__pycache__"
        pyc.mkdir()
        (pyc / "a.cpython-311.py").write_text("junk\n")
        assert code_version(tmp_path) == before

    def test_running_tree_digest_is_memoized(self):
        assert code_version() == code_version()


# -- the store ---------------------------------------------------------------


class TestStore:
    def test_round_trip_with_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"kind": "x", "n": 1}, code="c")
        written = cache.put(
            key,
            {"value": [1, 2, 3]},
            request={"kind": "x", "n": 1},
            kind="x",
            wall_s=0.25,
            workers=4,
            code="c",
        )
        loaded = cache.get(key)
        assert loaded == written
        assert loaded["result"] == {"value": [1, 2, 3]}
        prov = loaded["provenance"]
        assert prov["request"] == {"kind": "x", "n": 1}
        assert prov["code_version"] == "c"
        assert prov["wall_s"] == 0.25
        assert prov["workers"] == 4
        assert prov["package_version"]
        assert prov["created_unix"] > 0
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_absent_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(cache_key({"kind": "x"}, code="c")) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_torn_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"kind": "x"}, code="c")
        cache.put(key, {"v": 1}, request={"kind": "x"}, kind="x", wall_s=0.0)
        path = cache.path_for(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None

    def test_foreign_and_mismatched_files_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"kind": "x"}, code="c")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("not json at all")
        assert cache.get(key) is None
        path.write_text(json.dumps({"schema": "other/1", "result": 1}))
        assert cache.get(key) is None
        # right schema, wrong key inside (a mis-filed artifact)
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-cache/1",
                    "key": "0" * 64,
                    "result": 1,
                    "provenance": {},
                }
            )
        )
        assert cache.get(key) is None

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            cache.path_for("../../etc/passwd")

    def test_contains_does_not_touch_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key({"kind": "x"}, code="c")
        assert not cache.contains(key)
        cache.put(key, 1, request={"kind": "x"}, kind="x", wall_s=0.0)
        assert cache.contains(key)
        assert cache.stats.hits == 0 and cache.stats.misses == 0


def _put_then_die(root: str, key: str) -> None:
    """Spawned child: the kill-write hook SIGKILLs us mid-write."""
    cache = ResultCache(root)
    cache.put(key, {"v": 1}, request={"kind": "x"}, kind="x", wall_s=0.0)


class TestKillDuringWrite:
    def test_sigkill_mid_write_leaves_a_miss(self, tmp_path, monkeypatch):
        """A writer SIGKILLed halfway through (at the final path,
        bypassing the atomic rename — the pool's worst-case hook) leaves
        a torn artifact the read path must absorb as a miss."""
        cache = ResultCache(tmp_path)
        key = cache_key({"kind": "x", "n": 1}, code="c")
        monkeypatch.setenv(TEST_KILL_WRITE_ENV, key[:16])
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_put_then_die, args=(str(tmp_path), key))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -9  # died by SIGKILL, mid-write
        path = cache.path_for(key)
        assert path.exists() and path.stat().st_size > 0  # torn, not absent
        monkeypatch.delenv(TEST_KILL_WRITE_ENV)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        # and the torn artifact is simply overwritten by the next put
        cache.put(key, {"v": 2}, request={"kind": "x", "n": 1}, kind="x", wall_s=0.0)
        assert cache.get(key)["result"] == {"v": 2}


# -- run_bench integration ---------------------------------------------------


FILTER = "fig4/put"  # 4 shards: enough to exercise every path, fast


class TestBenchCache:
    def test_cold_hot_disabled_byte_identical(self, tmp_path):
        cold = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        hot = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        off = run_bench(fast=True, filter=FILTER)
        assert (
            simulated_json(cold) == simulated_json(hot) == simulated_json(off)
        )
        assert "cache" not in off["wallclock"]

    def test_warm_rerun_is_zero_simulation_work(self, tmp_path):
        cold = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        n = len(discover_shards(fast=True, filter=FILTER))
        assert cold["wallclock"]["cache"]["misses"] == n
        assert cold["wallclock"]["cache"]["stores"] == n
        hot = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        stats = hot["wallclock"]["cache"]
        assert stats["hits"] == n and stats["misses"] == 0
        assert stats["stores"] == 0  # nothing simulated, nothing written
        assert stats["hit_rate"] == 1.0
        assert len(stats["cached_shards"]) == n

    def test_worker_count_never_fragments_keys(self, tmp_path):
        """A store warmed serially serves a pooled run at 100% hits (and
        vice versa): execution strategy is not part of the key."""
        serial = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        pooled = run_bench(
            fast=True, filter=FILTER, cache_dir=str(tmp_path), workers=2
        )
        assert pooled["wallclock"]["cache"]["misses"] == 0
        assert simulated_json(serial) == simulated_json(pooled)

    def test_torn_artifact_re_simulates_that_shard_only(self, tmp_path):
        cold = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        n = cold["wallclock"]["cache"]["misses"]
        # tear one stored artifact mid-file
        objects = sorted((tmp_path / "objects").rglob("*.json"))
        blob = objects[0].read_bytes()
        objects[0].write_bytes(blob[: len(blob) // 2])
        rerun = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        stats = rerun["wallclock"]["cache"]
        assert stats["misses"] == 1 and stats["hits"] == n - 1
        assert stats["stores"] == 1  # the torn entry was re-simulated + rewritten
        assert simulated_json(rerun) == simulated_json(cold)

    def test_stats_flag_keys_separately_and_stays_identical(self, tmp_path):
        plain = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        withstats = run_bench(
            fast=True, filter=FILTER, cache_dir=str(tmp_path), stats=True
        )
        # different question (utilization appendix) -> all misses
        assert withstats["wallclock"]["cache"]["misses"] > 0
        assert "utilization" in withstats
        # but the gated figures half is the same bytes either way
        assert simulated_json(plain) == simulated_json(withstats)
        # and a warm stats re-run serves the appendix from cache too
        again = run_bench(
            fast=True, filter=FILTER, cache_dir=str(tmp_path), stats=True
        )
        assert again["wallclock"]["cache"]["misses"] == 0
        assert again["utilization"] == withstats["utilization"]

    def test_summary_reports_cache_line(self, tmp_path):
        from repro.benchrunner import format_run_summary

        run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        hot = run_bench(fast=True, filter=FILTER, cache_dir=str(tmp_path))
        summary = format_run_summary(hot)
        assert "result cache:" in summary
        assert "100% hit rate" in summary
