"""Calibration gate: the reproduction's headline numbers vs the paper.

These tests pin the shape results of Figures 4-7.  If a change to the
stack shifts the simulated physics, it shows up here first.

Tolerances: latencies within 10% (put/MPI are calibrated much tighter;
get carries a documented structural deviation, see EXPERIMENTS.md),
bandwidth peaks within 3%, half-bandwidth points within ~2x (they are
read off curves in the paper: "around 7 KB").
"""

import pytest

from repro.analysis import PAPER, half_bandwidth_point, latency_at, peak_bandwidth
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    decade_sizes,
    run_series,
)

LAT_SIZES = [1, 2, 4, 8, 12, 13, 16, 32, 64, 1024]
BW_SIZES = decade_sizes(1, 8 * 1024 * 1024)


@pytest.fixture(scope="module")
def latency_series():
    return {
        "put": run_series(PortalsPutModule(), "pingpong", LAT_SIZES),
        "get": run_series(PortalsGetModule(), "pingpong", LAT_SIZES),
        "mpich1": run_series(MPIModule(MPICH1), "pingpong", LAT_SIZES),
        "mpich2": run_series(MPIModule(MPICH2), "pingpong", LAT_SIZES),
    }


@pytest.fixture(scope="module")
def put_pingpong_bw():
    return run_series(PortalsPutModule(), "pingpong", BW_SIZES)


class TestFigure4Latency:
    def test_put_one_byte(self, latency_series):
        assert latency_at(latency_series["put"], 1) == pytest.approx(
            PAPER.put_latency_us, rel=0.10
        )

    def test_mpich1_one_byte(self, latency_series):
        assert latency_at(latency_series["mpich1"], 1) == pytest.approx(
            PAPER.mpich1_latency_us, rel=0.10
        )

    def test_mpich2_one_byte(self, latency_series):
        assert latency_at(latency_series["mpich2"], 1) == pytest.approx(
            PAPER.mpich2_latency_us, rel=0.10
        )

    def test_get_one_byte(self, latency_series):
        # get carries the largest deviation (see EXPERIMENTS.md); keep a
        # looser band but still anchored to the paper's 6.60 us.
        assert latency_at(latency_series["get"], 1) == pytest.approx(
            PAPER.get_latency_us, rel=0.15
        )

    def test_curve_ordering_put_get_mpich1_mpich2(self, latency_series):
        at_1b = [
            latency_at(latency_series[k], 1)
            for k in ("put", "get", "mpich1", "mpich2")
        ]
        assert at_1b == sorted(at_1b)

    def test_small_message_step_after_12_bytes(self, latency_series):
        """The Figure 4 step: 12 B rides the header packet (1 interrupt),
        13 B needs the two-interrupt payload path."""
        put = latency_series["put"]
        at_12 = latency_at(put, 12)
        at_13 = latency_at(put, 13)
        assert at_13 - at_12 > 2.0  # at least the extra interrupt
        assert latency_at(put, 1) == pytest.approx(at_12, rel=0.01)

    def test_flat_below_12_bytes(self, latency_series):
        put = latency_series["put"]
        lats = [latency_at(put, n) for n in (1, 2, 4, 8, 12)]
        assert max(lats) - min(lats) < 0.05


class TestFigure5UniDirectional:
    def test_peak_bandwidth(self, put_pingpong_bw):
        assert peak_bandwidth(put_pingpong_bw) == pytest.approx(
            PAPER.put_peak_mb_s, rel=0.03
        )

    def test_half_bandwidth_point(self, put_pingpong_bw):
        point = half_bandwidth_point(put_pingpong_bw)
        assert PAPER.half_bw_pingpong_bytes / 2 < point < PAPER.half_bw_pingpong_bytes * 2

    def test_mpi_only_slightly_less(self):
        mpi = run_series(MPIModule(MPICH1), "pingpong", [8 * 1024 * 1024])
        assert peak_bandwidth(mpi) > 0.97 * PAPER.put_peak_mb_s

    def test_both_mpi_implementations_equal_bandwidth(self):
        m1 = run_series(MPIModule(MPICH1), "pingpong", [8 * 1024 * 1024])
        m2 = run_series(MPIModule(MPICH2), "pingpong", [8 * 1024 * 1024])
        assert peak_bandwidth(m1) == pytest.approx(peak_bandwidth(m2), rel=0.01)


class TestFigure6Streaming:
    def test_stream_half_bandwidth_below_pingpong(self, put_pingpong_bw):
        stream = run_series(PortalsPutModule(), "stream", BW_SIZES)
        assert half_bandwidth_point(stream) < half_bandwidth_point(put_pingpong_bw)

    def test_streaming_hurts_get_most(self):
        """Gets block (a full round trip each) and cannot pipeline."""
        sizes = [4096]
        put_stream = run_series(PortalsPutModule(), "stream", sizes)
        get_stream = run_series(PortalsGetModule(), "stream", sizes)
        # at small/mid sizes the get curve sits far below the put curve
        assert (
            get_stream.points[0].bandwidth_mb_s
            < 0.6 * put_stream.points[0].bandwidth_mb_s
        )


class TestFigure7BiDirectional:
    def test_bidir_peak(self):
        bidir = run_series(PortalsPutModule(), "bidir", [4 * 1024 * 1024, 8 * 1024 * 1024])
        assert peak_bandwidth(bidir) == pytest.approx(
            PAPER.put_bidir_peak_mb_s, rel=0.03
        )

    def test_seastar_sustains_both_directions(self, put_pingpong_bw):
        """Figure 7's point: bi-directional ~= 2x uni-directional."""
        bidir = run_series(PortalsPutModule(), "bidir", [8 * 1024 * 1024])
        ratio = peak_bandwidth(bidir) / peak_bandwidth(put_pingpong_bw)
        assert ratio == pytest.approx(2.0, rel=0.05)


class TestInlineOverheads:
    def test_trap_cost(self, config):
        assert config.trap_overhead == pytest.approx(PAPER.trap_ns * 1000, rel=0.01)

    def test_interrupt_cost(self, config):
        assert config.interrupt_overhead >= PAPER.interrupt_us * 1_000_000

    def test_structure_counts(self, config):
        assert config.num_sources == PAPER.num_sources
        assert config.num_generic_pendings == PAPER.num_generic_pendings
