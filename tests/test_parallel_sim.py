"""Differential harness for the conservative parallel DES driver.

The headline contract of :mod:`repro.sim.parallel`: a whole-plane run
partitioned into slabs reproduces the serial run **byte-identically** —
same delivery records, same trace digest, same golden metrics — for
every partition count and transport, including a run whose worker was
SIGKILLed mid-flight.  The documented relaxation is host-side only
(heap sequence numbers, ``events_scheduled``, wall clock, round counts
live in ``info``, never in ``result``); these tests assert both halves
of that contract.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import Simulator
from repro.sim.parallel import (
    SCENARIO_NAMES,
    CausalityError,
    PartitionRunner,
    PlaneScenario,
    run_scenario,
    trace_digest,
    tree_children,
)
from repro.machine.builder import partition_nodes

#: small enough to run {2,4,8}-way in milliseconds, large enough that
#: every partitioning actually cuts traffic (x extent 8 allows 8 slabs)
DIMS = (8, 4, 2)
MSG_BYTES = {"neighbor": 2048, "incast": 4096, "tree": 8192}


def _blob(doc):
    return json.dumps(doc, sort_keys=True)


def _run(name, nparts, **kw):
    scenario = PlaneScenario(name=name, dims=DIMS, msg_bytes=MSG_BYTES[name])
    return run_scenario(scenario, nparts, **kw)


class TestScheduleAt:
    """Simulator.schedule_at — the import primitive the driver rests on."""

    def test_delivers_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(500, "x").add_callback(lambda ev: seen.append(sim.now))
        sim.run()
        assert seen == [500]
        assert sim.now == 500

    def test_value_carried(self, sim):
        got = []
        sim.schedule_at(7, {"k": 1}).add_callback(lambda ev: got.append(ev.value))
        sim.run()
        assert got == [{"k": 1}]

    def test_past_time_rejected(self, sim):
        sim.schedule_at(10)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(9)

    def test_present_time_allowed(self, sim):
        # arrival exactly at the current clock is legal (delay 0)
        sim.schedule_at(10)
        sim.run()
        seen = []
        sim.schedule_at(10, "now").add_callback(lambda ev: seen.append(ev.value))
        sim.run()
        assert seen == ["now"]
        assert isinstance(sim, Simulator)


class TestDifferentialIdentity:
    """Serial vs partitioned, every scenario, every partition count."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    @pytest.mark.parametrize("nparts", [2, 4, 8])
    def test_memory_transport_identical(self, name, nparts):
        base = _run(name, 1)
        part = _run(name, nparts, transport="memory")
        assert part["info"]["partitions"] == nparts
        assert _blob(part["result"]) == _blob(base["result"])
        assert trace_digest(part["result"]) == trace_digest(base["result"])

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_pool_transport_identical(self, name):
        base = _run(name, 1)
        part = _run(name, 2, transport="pool")
        assert part["info"]["transport"] == "pool"
        assert _blob(part["result"]) == _blob(base["result"])

    def test_relaxation_is_host_side_only(self):
        """The documented relaxation: partitionings may differ in heap
        bookkeeping, but none of it can appear in the gated result."""
        base = _run("neighbor", 1)
        part = _run("tree", 4, transport="memory")
        # info legitimately varies (each partition owns a private heap;
        # here the partitioned tree schedules extra import events) —
        # which is exactly why it is fenced off from the gated result
        assert part["info"]["rounds"] > 0
        assert part["info"]["events_scheduled"] > 0
        # ...and the result document carries no host-side field at all
        assert set(base["result"]) == {
            "scenario", "dims", "wrap", "msg_bytes", "root", "messages",
        }

    def test_axis_choice_is_still_identical(self):
        """Cutting along a different axis is also just an execution
        strategy — same result, different communication structure."""
        base = _run("neighbor", 1)
        for axis in (0, 1):
            part = _run("neighbor", 2, transport="memory", axis=axis)
            assert _blob(part["result"]) == _blob(base["result"])


class TestCrashRecovery:
    """A SIGKILLed partition worker recovers to the identical result."""

    def test_sigkill_mid_run_recovers_identically(self, monkeypatch):
        base = _run("neighbor", 1)
        # kill partition 1's first attempt the moment it starts; the
        # pool respawns it and the rerun republishes identical round
        # files from t=0 while partition 0 waits at the exchange
        monkeypatch.setenv("REPRO_POOL_TEST_KILL", "plane-neighbor-part01")
        part = _run("neighbor", 2, transport="pool")
        assert _blob(part["result"]) == _blob(base["result"])
        degr = part["info"]["degradations"]
        assert any(
            d["task"] == "plane-neighbor-part01" and d["event"] == "crash"
            for d in degr
        )


class TestCausalityGuard:
    """Imports below the safe floor must raise, never reorder history."""

    def test_import_below_floor_raises(self):
        scenario = PlaneScenario(name="neighbor", dims=DIMS, msg_bytes=2048)
        plan = partition_nodes(scenario.topology(), 2)
        runner = PartitionRunner(scenario, plan, 0)
        runner.advance(10_000_000)
        stale_dst = plan.nodes[0][0]
        doc = {
            "part": 1,
            "round": 0,
            "next": None,
            "exports": {
                "0": [[stale_dst, 5, 999, [999, stale_dst, 0], 0, 1, 1, 64, 0]]
            },
        }
        with pytest.raises(CausalityError):
            runner.absorb([doc])


class TestBenchIntegration:
    """`repro bench --partitions N` produces the gated figures
    byte-identically to the serial bench."""

    def test_run_bench_partitioned_figures_identical(self):
        from repro.benchrunner import run_bench
        from repro.benchrunner.schema import simulated_json

        serial = run_bench(fast=True, filter="redstorm_plane")
        part = run_bench(fast=True, filter="redstorm_plane", partitions=2)
        assert simulated_json(serial) == simulated_json(part)

    def test_discover_shards_threads_partitions(self):
        from repro.benchrunner import discover_shards

        shards = discover_shards(fast=True, partitions=4)
        by_spec = {s.spec: s for s in shards if s.chunk < 0}
        assert by_spec["redstorm_plane"].partitions == 4
        # non-partitionable sweeps are untouched
        assert by_spec["redstorm_distance"].partitions == 1

    def test_cache_request_excludes_partitions(self):
        from repro.benchrunner import discover_shards
        from repro.benchrunner.executor import shard_cache_request

        one = [
            s for s in discover_shards(fast=True, partitions=1)
            if s.spec == "redstorm_plane"
        ][0]
        four = [
            s for s in discover_shards(fast=True, partitions=4)
            if s.spec == "redstorm_plane"
        ][0]
        assert shard_cache_request(one, stats=False) == shard_cache_request(
            four, stats=False
        )


class TestTreeShape:
    """The binomial tree the collective scenario forwards along."""

    def test_every_rank_has_one_parent(self):
        n = 64
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for rank in frontier:
                for child in tree_children(rank, n):
                    assert child not in seen, "rank reached twice"
                    seen.add(child)
                    nxt.append(child)
            frontier = nxt
        assert seen == set(range(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 17, 1024])
    def test_covers_any_size(self, n):
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for rank in frontier:
                for child in tree_children(rank, n):
                    seen.add(child)
                    nxt.append(child)
            frontier = nxt
        assert seen == set(range(n))
