"""Firmware behaviour: SRAM layout, counters, interrupt structure,
small-message optimization, stats commands."""

import pytest

from repro.fw import NicStatsCmd
from repro.machine.builder import build_pair
from repro.portals import EventKind, MDOptions

from .conftest import drain_events, make_target, run_to_completion


def ping(machine, na, nb, nbytes, rounds=1):
    """Run `rounds` puts a->b; returns (sender_node, receiver_node)."""
    pa, pb = na.create_process(), nb.create_process()

    def receiver(proc):
        eq, me, md, buf = yield from make_target(proc, size=max(nbytes, 1))
        for _ in range(rounds):
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
        return True

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(64)
        md = yield from api.PtlMDBind(proc.alloc(max(nbytes, 1)), eq=eq)
        for _ in range(rounds):
            yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    run_to_completion(machine, hr, hs)


class TestSramLayout:
    def test_boot_reserves_paper_structures(self, pair):
        machine, na, nb = pair
        pools = na.seastar.sram.pools()
        assert "nic_control_block" in pools
        assert pools["sources"].count == 1024
        generic = pools["pendings:fw_pid1"]
        assert generic.count == 1274
        assert na.seastar.sram.free_bytes > 0

    def test_accelerated_process_reserves_more(self, pair):
        machine, na, nb = pair
        before = na.seastar.sram.used_bytes
        na.create_process(accelerated=True)
        assert na.seastar.sram.used_bytes > before


class TestInterruptStructure:
    """The Figure 4 story: 1 interrupt <= 12 B, 2 interrupts above."""

    def _interrupts_for(self, nbytes):
        machine, na, nb = build_pair()
        base = nb.opteron.counters["interrupts"]
        ping(machine, na, nb, nbytes)
        return nb.opteron.counters["interrupts"] - base

    def test_small_put_one_receiver_interrupt(self):
        assert self._interrupts_for(12) == 1

    def test_large_put_two_receiver_interrupts(self):
        assert self._interrupts_for(13) == 2

    def test_zero_byte_put_one_interrupt(self):
        assert self._interrupts_for(0) == 1

    def test_sender_gets_completion_interrupt(self):
        machine, na, nb = build_pair()
        ping(machine, na, nb, 8)
        # sender host is interrupted for TX_COMPLETE
        assert na.opteron.counters["interrupts"] >= 1


class TestSmallMessageOptimization:
    def test_inline_data_piggybacks_in_header(self):
        machine, na, nb = build_pair()
        ping(machine, na, nb, 12)
        # 12 bytes: no payload packets at all
        assert nb.seastar.rx.counters["packets"] == 0
        assert nb.seastar.rx.counters["headers"] >= 1

    def test_thirteen_bytes_needs_payload_packet(self):
        machine, na, nb = build_pair()
        ping(machine, na, nb, 13)
        assert nb.seastar.rx.counters["packets"] == 1

    def test_optimization_disable_knob(self):
        from repro.hw.config import SeaStarConfig

        cfg = SeaStarConfig(small_msg_bytes=0)
        machine, na, nb = build_pair(cfg)
        ping(machine, na, nb, 8)
        assert nb.seastar.rx.counters["packets"] == 1  # no piggyback now


class TestFirmwareBookkeeping:
    def test_counters_track_messages(self, pair):
        machine, na, nb = pair
        ping(machine, na, nb, 100, rounds=3)
        assert na.firmware.counters["tx_messages"] == 3
        assert nb.firmware.counters["rx_headers"] == 3

    def test_source_structs_allocated_per_peer(self, pair):
        machine, na, nb = pair
        ping(machine, na, nb, 100)
        assert na.firmware.control.sources.in_use == 1  # peer b
        assert nb.firmware.control.sources.in_use == 1  # peer a

    def test_pendings_recycled(self, pair):
        machine, na, nb = pair
        ping(machine, na, nb, 100, rounds=5)
        generic = nb.firmware.generic
        assert generic.rx_pendings.in_use == 0
        assert generic.rx_pendings.high_water >= 1

    def test_heartbeat_advances(self, pair):
        machine, na, nb = pair
        ping(machine, na, nb, 100)
        assert na.firmware.control.heartbeat > 0

    def test_stats_command_round_trip(self, pair):
        machine, na, nb = pair
        pa = na.create_process()
        result_holder = []

        def body(proc):
            kernel = na.kernel
            result = yield from kernel.proc.mailbox.post_command_await_result(
                NicStatsCmd()
            )
            result_holder.append(result)
            return True

        handle = pa.spawn(body)
        run_to_completion(machine, handle)
        stats = result_holder[0]
        assert "counters" in stats and stats["sram_used"] > 0

    def test_tx_pending_list_drains(self, pair):
        machine, na, nb = pair
        ping(machine, na, nb, 50_000, rounds=2)
        assert len(na.firmware.control.tx_pending_list) == 0
