"""Run reports and terminal plotting."""

import pytest

from repro.analysis import (
    ascii_chart,
    format_machine_report,
    machine_report,
    node_report,
    plot_series,
)
from repro.machine.builder import build_pair
from repro.netpipe import PortalsPutModule, run_series
from repro.netpipe.runner import Series
from repro.portals import EventKind

from .conftest import drain_events, make_target, run_to_completion


@pytest.fixture(scope="module")
def run_machine():
    machine, na, nb = build_pair()
    pa, pb = na.create_process(), nb.create_process()

    def receiver(proc):
        eq, me, md, buf = yield from make_target(proc, size=4096)
        for _ in range(3):
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
        return True

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(64)
        md = yield from api.PtlMDBind(proc.alloc(4096), eq=eq)
        for _ in range(3):
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    run_to_completion(machine, hr, hs)
    return machine, na, nb


class TestReports:
    def test_node_report_structure(self, run_machine):
        machine, na, nb = run_machine
        report = node_report(nb)
        assert report["node_id"] == nb.node_id
        assert report["host"]["interrupts"] > 0
        assert report["firmware"]["counters"]["rx_headers"] == 3
        assert report["dma"]["rx_packets"] > 0
        assert report["sram"]["used"] > 0

    def test_machine_report_totals(self, run_machine):
        machine, na, nb = run_machine
        report = machine_report(machine)
        assert report["sim_time_us"] > 0
        assert report["fabric"]["packets_sent"] > 0
        assert len(report["nodes"]) == 2

    def test_packet_conservation(self, run_machine):
        """Fabric-injected packets equal the sum of RX-side arrivals."""
        machine, na, nb = run_machine
        report = machine_report(machine)
        received = sum(
            n["dma"]["rx_packets"] + n["dma"]["rx_headers"]
            for n in report["nodes"]
        )
        assert report["fabric"]["packets_sent"] == received

    def test_format_is_readable(self, run_machine):
        machine, na, nb = run_machine
        text = format_machine_report(machine)
        assert "simulated time" in text
        assert "node 0" in text and "node 1" in text
        assert "irq=" in text and "sram" in text


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            [1, 10, 100], [[1.0, 5.0, 9.0]], ["demo"], width=40, height=8
        )
        assert "demo" in text and "*" in text
        assert len(text.splitlines()) >= 8

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_chart(
            [1, 10], [[1.0, 2.0], [2.0, 1.0]], ["a", "b"], width=20, height=5
        )
        assert "* a" in text and "o b" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([], [], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], [[1.0]], ["x"])

    def test_constant_series(self):
        text = ascii_chart([1, 2, 4], [[5.0, 5.0, 5.0]], ["flat"])
        assert "flat" in text

    def test_plot_series_from_netpipe(self):
        series = run_series(PortalsPutModule(), "pingpong", [1, 64, 4096])
        text = plot_series([series], latency=True)
        assert "put" in text and "latency" in text

    def test_plot_requires_common_sizes(self):
        a = run_series(PortalsPutModule(), "pingpong", [1, 64])
        b = run_series(PortalsPutModule(), "pingpong", [1, 128])
        with pytest.raises(ValueError):
            plot_series([a, b])

    def test_title_override(self):
        s = run_series(PortalsPutModule(), "pingpong", [1, 64])
        text = plot_series([s], title="custom title")
        assert text.startswith("custom title")
