"""The functional Portals API over a live machine (administrative paths)."""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    MDOptions,
    ProcessId,
    PtlEQEmpty,
    PtlHandleInvalid,
    PtlMDIllegal,
    PtlMDInUse,
    PtlNoSpace,
    PtlProcessInvalid,
    PtlPtIndexInvalid,
)
from repro.portals.ni import NILimits

from .conftest import run_to_completion

ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)


def run_api(body, limits=None):
    """Run ``body(proc)`` on a process of a fresh pair; returns its value."""
    machine, a, b = build_pair()
    proc = a.create_process(limits=limits)
    handle = proc.spawn(body)
    (value,) = run_to_completion(machine, handle)
    return value


class TestIdentity:
    def test_get_id(self):
        def body(proc):
            pid = yield from proc.api.PtlGetId()
            return pid

        pid = run_api(body)
        assert pid.nid == 0 and pid.pid == 1


class TestEventQueueAPI:
    def test_alloc_get_free(self):
        def body(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            with pytest.raises(PtlEQEmpty):
                yield from api.PtlEQGet(eq)
            yield from api.PtlEQFree(eq)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlEQGet(eq)
            return True

        assert run_api(body)

    def test_double_free_rejected(self):
        def body(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            yield from api.PtlEQFree(eq)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlEQFree(eq)
            return True

        assert run_api(body)

    def test_eq_limit_enforced(self):
        def body(proc):
            api = proc.api
            for _ in range(2):
                yield from api.PtlEQAlloc(4)
            with pytest.raises(PtlNoSpace):
                yield from api.PtlEQAlloc(4)
            return True

        assert run_api(body, limits=NILimits(max_eqs=2))

    def test_eq_poll_timeout(self):
        def body(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(4)
            t0 = proc.sim.now
            result = yield from api.PtlEQPoll([eq], timeout=1_000_000)
            return result, proc.sim.now - t0

        result, elapsed = run_api(body)
        assert result is None
        assert elapsed >= 1_000_000


class TestMatchEntryAPI:
    def test_attach_orders(self):
        def body(proc):
            api = proc.api
            tail1 = yield from api.PtlMEAttach(0, ANY, 1)
            tail2 = yield from api.PtlMEAttach(0, ANY, 2)
            head = yield from api.PtlMEAttach(0, ANY, 3, position_head=True)
            ml = proc.ni.table.match_list(0)
            return [me.match_bits for me in ml], head.ptl_index

        order, idx = run_api(body)
        assert order == [3, 1, 2]
        assert idx == 0

    def test_insert_relative(self):
        def body(proc):
            api = proc.api
            base = yield from api.PtlMEAttach(0, ANY, 1)
            before = yield from api.PtlMEInsert(base, ANY, 2)
            after = yield from api.PtlMEInsert(base, ANY, 3, after=True)
            ml = proc.ni.table.match_list(0)
            return [me.match_bits for me in ml]

        assert run_api(body) == [2, 1, 3]

    def test_insert_on_unlinked_base_rejected(self):
        def body(proc):
            api = proc.api
            base = yield from api.PtlMEAttach(0, ANY, 1)
            yield from api.PtlMEUnlink(base)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlMEInsert(base, ANY, 2)
            return True

        assert run_api(body)

    def test_bad_portal_index(self):
        def body(proc):
            with pytest.raises(PtlPtIndexInvalid):
                yield from proc.api.PtlMEAttach(9999, ANY, 1)
            return True

        assert run_api(body)

    def test_me_limit(self):
        def body(proc):
            api = proc.api
            for _ in range(3):
                yield from api.PtlMEAttach(0, ANY, 1)
            with pytest.raises(PtlNoSpace):
                yield from api.PtlMEAttach(0, ANY, 1)
            return True

        assert run_api(body, limits=NILimits(max_mes=3))

    def test_unlink_detaches_md(self):
        def body(proc):
            api = proc.api
            me = yield from api.PtlMEAttach(0, ANY, 1)
            md = yield from api.PtlMDAttach(me, proc.alloc(64))
            yield from api.PtlMEUnlink(me)
            return md.active, proc.ni.md_count, proc.ni.me_count

        active, mds, mes = run_api(body)
        assert not active and mds == 0 and mes == 0


class TestMemoryDescriptorAPI:
    def test_attach_requires_linked_me(self):
        def body(proc):
            api = proc.api
            me = yield from api.PtlMEAttach(0, ANY, 1)
            yield from api.PtlMEUnlink(me)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlMDAttach(me, proc.alloc(16))
            return True

        assert run_api(body)

    def test_double_attach_rejected(self):
        def body(proc):
            api = proc.api
            me = yield from api.PtlMEAttach(0, ANY, 1)
            yield from api.PtlMDAttach(me, proc.alloc(16))
            with pytest.raises(PtlMDInUse):
                yield from api.PtlMDAttach(me, proc.alloc(16))
            return True

        assert run_api(body)

    def test_bind_and_unlink(self):
        def body(proc):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(16))
            yield from api.PtlMDUnlink(md)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlMDUnlink(md)
            return proc.ni.md_count

        assert run_api(body) == 0

    def test_md_limit(self):
        def body(proc):
            api = proc.api
            yield from api.PtlMDBind(proc.alloc(4))
            yield from api.PtlMDBind(proc.alloc(4))
            with pytest.raises(PtlNoSpace):
                yield from api.PtlMDBind(proc.alloc(4))
            return True

        assert run_api(body, limits=NILimits(max_mds=2))

    def test_md_update_conditional(self):
        def body(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(4)
            md = yield from api.PtlMDBind(proc.alloc(4), eq=eq)
            ok = yield from api.PtlMDUpdate(md, new_threshold=5, test_eq=eq)
            # empty EQ: update applies
            assert ok and md.threshold == 5
            from repro.portals import EventKind, PortalsEvent

            eq.post(PortalsEvent(kind=EventKind.PUT_END))
            refused = yield from api.PtlMDUpdate(md, new_threshold=9, test_eq=eq)
            return refused, md.threshold

        refused, threshold = run_api(body)
        assert refused is False and threshold == 5


class TestDataMovementValidation:
    def test_put_validates_target(self):
        def body(proc):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(16))
            with pytest.raises(PtlProcessInvalid):
                yield from api.PtlPut(md, ANY, 0, 0)
            return True

        assert run_api(body)

    def test_put_validates_local_region(self):
        def body(proc):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(16))
            with pytest.raises(PtlMDIllegal):
                yield from api.PtlPut(
                    md, ProcessId(0, 99), 0, 0, local_offset=10, length=10
                )
            return True

        assert run_api(body)

    def test_put_on_unlinked_md_rejected(self):
        def body(proc):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(16))
            yield from api.PtlMDUnlink(md)
            with pytest.raises(PtlHandleInvalid):
                yield from api.PtlPut(md, ProcessId(0, 99), 0, 0)
            return True

        assert run_api(body)

    def test_put_on_exhausted_md_rejected(self):
        def body(proc):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(16), threshold=0)
            with pytest.raises(PtlMDIllegal):
                yield from api.PtlPut(md, ProcessId(0, 99), 0, 0)
            return True

        assert run_api(body)
