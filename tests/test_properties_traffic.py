"""Property-based end-to-end traffic tests.

Hypothesis drives randomized message patterns through the full stack
(MPI over Portals over firmware over the fabric) and checks global
invariants: nothing lost, nothing corrupted, per-pair ordering intact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine.builder import Machine, build_pair
from repro.mpi import MPI_ANY_SOURCE, MPI_ANY_TAG, create_world, run_world
from repro.net import Torus3D

SLOW = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def checksum(arr: np.ndarray) -> int:
    return int(arr.astype(np.uint64).sum())


class TestRandomTwoRankTraffic:
    @settings(**SLOW)
    @given(
        sizes=st.lists(
            st.integers(1, 200_000),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(0, 2**16),
    )
    def test_all_messages_delivered_in_order_intact(self, sizes, seed):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b])
        rng = np.random.default_rng(seed)
        payloads = [
            rng.integers(0, 256, size=n, dtype=np.uint8) for n in sizes
        ]

        def main(mpi, rank):
            if rank == 0:
                for p in payloads:
                    yield from mpi.send(p, 1, tag=1)
                return None
            sums = []
            for n in sizes:
                buf = np.zeros(n, np.uint8)
                status = yield from mpi.recv(buf, source=0, tag=1)
                assert status.count == n
                sums.append(checksum(buf))
            return sums

        _, sums = run_world(machine, world, main)
        assert sums == [checksum(p) for p in payloads]

    @settings(**SLOW)
    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 5000)),  # (tag, size)
            min_size=1,
            max_size=10,
        ),
    )
    def test_tagged_messages_route_to_matching_recvs(self, plan):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b])

        def main(mpi, rank):
            if rank == 0:
                for i, (tag, size) in enumerate(plan):
                    payload = np.full(size, (i * 13 + tag) % 256, np.uint8)
                    yield from mpi.send(payload, 1, tag=tag)
                return None
            # receive grouped by tag, in per-tag order
            results = []
            for tag in range(4):
                expected = [
                    (i, size) for i, (t, size) in enumerate(plan) if t == tag
                ]
                for i, size in expected:
                    buf = np.zeros(size, np.uint8)
                    status = yield from mpi.recv(buf, source=0, tag=tag)
                    assert status.count == size
                    assert int(buf[0]) == (i * 13 + tag) % 256
                    results.append((tag, i))
            return results

        _, results = run_world(machine, world, main)
        # per-tag ordering follows send order
        for tag in range(4):
            seq = [i for t, i in results if t == tag]
            assert seq == sorted(seq)


class TestRandomManyRankTraffic:
    @settings(**SLOW)
    @given(
        nranks=st.integers(3, 6),
        rounds=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    def test_all_to_one_with_wildcards(self, nranks, rounds, seed):
        machine = Machine(Torus3D((nranks, 1, 1), wrap=(False, False, False)))
        nodes = [machine.node(i) for i in range(nranks)]
        world = create_world(machine, nodes)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 3000))

        def main(mpi, rank):
            if rank == 0:
                seen = {}
                buf = np.zeros(size, np.uint8)
                for _ in range((nranks - 1) * rounds):
                    status = yield from mpi.recv(
                        buf, source=MPI_ANY_SOURCE, tag=MPI_ANY_TAG
                    )
                    assert status.count == size
                    assert int(buf[0]) == status.source  # sender stamps rank
                    seen[status.source] = seen.get(status.source, 0) + 1
                return seen
            payload = np.full(size, rank, np.uint8)
            for r in range(rounds):
                yield from mpi.send(payload, 0, tag=r)
            return None

        results = run_world(machine, world, main)
        seen = results[0]
        assert seen == {r: rounds for r in range(1, nranks)}


class TestPortalsLevelProperty:
    @settings(**SLOW)
    @given(
        offsets=st.lists(st.integers(0, 900), min_size=1, max_size=6, unique=True),
        seed=st.integers(0, 2**16),
    )
    def test_scattered_remote_offset_writes(self, offsets, seed):
        """Puts at random remote offsets land exactly where addressed."""
        from repro.portals import (
            PTL_NID_ANY,
            PTL_PID_ANY,
            EventKind,
            MDOptions,
            ProcessId,
        )

        machine, a, b = build_pair()
        pa, pb = a.create_process(), b.create_process()
        rng = np.random.default_rng(seed)
        chunk = 64
        values = [int(rng.integers(1, 255)) for _ in offsets]

        def receiver(proc):
            api = proc.api
            eq = yield from api.PtlEQAlloc(128)
            me = yield from api.PtlMEAttach(
                4, ProcessId(PTL_NID_ANY, PTL_PID_ANY), 7
            )
            buf = proc.alloc(1024)
            yield from api.PtlMDAttach(
                me,
                buf,
                options=MDOptions.OP_PUT
                | MDOptions.TRUNCATE
                | MDOptions.MANAGE_REMOTE,
                eq=eq,
            )
            got = 0
            while got < len(offsets):
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.PUT_END:
                    got += 1
            return buf

        def sender(proc, target):
            api = proc.api
            for off, val in zip(offsets, values):
                src = proc.alloc(chunk)
                src[:] = val
                md = yield from api.PtlMDBind(src)
                n = min(chunk, 1024 - off)
                yield from api.PtlPut(
                    md, target, 4, 7, remote_offset=off, length=n
                )
            yield proc.sim.timeout(500_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        machine.run()
        assert hr.triggered and hr.ok
        buf = hr.value
        # each addressed byte got *a* value from some overlapping write;
        # bytes covered by exactly one write must equal that write's value
        coverage = np.zeros(1024, dtype=int)
        for off in offsets:
            n = min(chunk, 1024 - off)
            coverage[off : off + n] += 1
        for off, val in zip(offsets, values):
            n = min(chunk, 1024 - off)
            solo = coverage[off : off + n] == 1
            assert np.all(buf[off : off + n][solo] == val)
        # untouched bytes stay zero
        assert np.all(buf[coverage == 0] == 0)
