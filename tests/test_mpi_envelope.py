"""MPI envelope encoding over match bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.envelope import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    RNDV_FLAG,
    decode_envelope,
    decode_rts,
    encode_envelope,
    encode_rts,
    recv_match,
)
from repro.portals import bits_match

contexts = st.integers(0, 0x7FFF)
ranks = st.integers(0, 0xFFFF)
tags = st.integers(0, 0xFFFFFFFF)


class TestEnvelope:
    @given(context=contexts, rank=ranks, tag=tags, rndv=st.booleans())
    def test_round_trip(self, context, rank, tag, rndv):
        bits = encode_envelope(context, rank, tag, rendezvous=rndv)
        env = decode_envelope(bits)
        assert env.context == context
        assert env.src_rank == rank
        assert env.tag == tag
        assert env.rendezvous == rndv

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_envelope(1 << 15, 0, 0)
        with pytest.raises(ValueError):
            encode_envelope(0, 1 << 16, 0)
        with pytest.raises(ValueError):
            encode_envelope(0, 0, 1 << 32)

    def test_rndv_flag_is_bit63(self):
        bits = encode_envelope(1, 2, 3, rendezvous=True)
        assert bits & RNDV_FLAG

    @given(context=contexts, rank=ranks, tag=tags)
    def test_distinct_envelopes_distinct_bits(self, context, rank, tag):
        a = encode_envelope(context, rank, tag)
        b = encode_envelope(context, rank, (tag + 1) & 0xFFFFFFFF)
        assert a != b


class TestRecvMatch:
    @given(context=contexts, rank=ranks, tag=tags, rndv=st.booleans())
    def test_exact_recv_matches_its_message(self, context, rank, tag, rndv):
        bits, ignore = recv_match(context, rank, tag)
        incoming = encode_envelope(context, rank, tag, rendezvous=rndv)
        assert bits_match(incoming, bits, ignore)

    @given(context=contexts, rank=ranks, tag=tags)
    def test_any_source_matches_all_ranks(self, context, rank, tag):
        bits, ignore = recv_match(context, MPI_ANY_SOURCE, tag)
        incoming = encode_envelope(context, rank, tag)
        assert bits_match(incoming, bits, ignore)

    @given(context=contexts, rank=ranks, tag=tags)
    def test_any_tag_matches_all_tags(self, context, rank, tag):
        bits, ignore = recv_match(context, rank, MPI_ANY_TAG)
        incoming = encode_envelope(context, rank, tag)
        assert bits_match(incoming, bits, ignore)

    @given(context=contexts, rank=ranks, tag=tags)
    def test_wrong_tag_rejected(self, context, rank, tag):
        other_tag = (tag + 1) & 0xFFFFFFFF
        bits, ignore = recv_match(context, rank, other_tag)
        incoming = encode_envelope(context, rank, tag)
        assert not bits_match(incoming, bits, ignore)

    @given(context=contexts, rank=ranks, tag=tags)
    def test_wrong_source_rejected(self, context, rank, tag):
        other_rank = (rank + 1) & 0xFFFF
        bits, ignore = recv_match(context, other_rank, tag)
        incoming = encode_envelope(context, rank, tag)
        assert not bits_match(incoming, bits, ignore)

    @given(context=contexts, rank=ranks, tag=tags)
    def test_wrong_context_rejected(self, context, rank, tag):
        other = (context + 1) & 0x7FFF
        bits, ignore = recv_match(other, MPI_ANY_SOURCE, MPI_ANY_TAG)
        incoming = encode_envelope(context, rank, tag)
        assert not bits_match(incoming, bits, ignore)


class TestRTS:
    @given(cookie=st.integers(0, (1 << 23) - 1), length=st.integers(0, (1 << 40) - 1))
    def test_round_trip(self, cookie, length):
        assert decode_rts(encode_rts(cookie, length)) == (cookie, length)

    def test_eager_hdr_data_is_not_rts(self):
        with pytest.raises(ValueError):
            decode_rts(0)

    def test_limits_enforced(self):
        with pytest.raises(ValueError):
            encode_rts(1 << 23, 0)
        with pytest.raises(ValueError):
            encode_rts(0, 1 << 40)
