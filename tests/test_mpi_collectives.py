"""MPI collectives built on the point-to-point layer."""

import numpy as np
import pytest

from repro.machine.builder import Machine, build_pair
from repro.mpi import allreduce, barrier, bcast, create_world, gather, reduce, run_world
from repro.net import Torus3D


def world_of(n, wrap=True):
    machine = Machine(Torus3D((n, 1, 1), wrap=(wrap, False, False)))
    nodes = [machine.node(i) for i in range(n)]
    return machine, create_world(machine, nodes)


class TestBarrier:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    def test_no_rank_escapes_early(self, n):
        machine, world = world_of(n)
        arrive = {}
        depart = {}

        def main(mpi, rank):
            # stagger arrivals
            yield mpi.sim.timeout((rank + 1) * 10_000_000)
            arrive[rank] = mpi.sim.now
            yield from barrier(mpi)
            depart[rank] = mpi.sim.now
            return None

        run_world(machine, world, main)
        latest_arrival = max(arrive.values())
        assert all(t >= latest_arrival for t in depart.values())


class TestBcast:
    @pytest.mark.parametrize("n,root", [(2, 0), (4, 0), (4, 2), (7, 3), (8, 7)])
    def test_all_ranks_receive_roots_data(self, n, root):
        machine, world = world_of(n)

        def main(mpi, rank):
            buf = np.zeros(256, np.uint8)
            if rank == root:
                buf[:] = 123
            yield from bcast(mpi, buf, root=root)
            return int(buf[0]), int(buf[-1])

        results = run_world(machine, world, main)
        assert all(r == (123, 123) for r in results)

    def test_single_rank_noop(self):
        machine, world = world_of(1)

        def main(mpi, rank):
            buf = np.full(8, 5, np.uint8)
            yield from bcast(mpi, buf, root=0)
            return int(buf[0])

        assert run_world(machine, world, main) == [5]


class TestReduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_sum_reduction(self, n):
        machine, world = world_of(n)

        def main(mpi, rank):
            contrib = np.full(16, rank + 1, np.uint8)
            out = np.zeros(16, np.uint8)
            yield from reduce(mpi, contrib, out if rank == 0 else None, np.add)
            return int(out[0]) if rank == 0 else None

        results = run_world(machine, world, main)
        assert results[0] == sum(range(1, n + 1))

    def test_max_reduction(self):
        machine, world = world_of(4)

        def main(mpi, rank):
            contrib = np.full(8, (rank * 37) % 200, np.uint8)
            out = np.zeros(8, np.uint8)
            yield from reduce(mpi, contrib, out if rank == 0 else None, np.maximum)
            return int(out[0]) if rank == 0 else None

        results = run_world(machine, world, main)
        assert results[0] == max((r * 37) % 200 for r in range(4))


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_every_rank_has_total(self, n):
        machine, world = world_of(n)

        def main(mpi, rank):
            contrib = np.full(8, rank + 1, np.uint8)
            out = np.zeros(8, np.uint8)
            yield from allreduce(mpi, contrib, out, np.add)
            return int(out[0])

        results = run_world(machine, world, main)
        assert results == [sum(range(1, n + 1))] * n


class TestGather:
    def test_root_collects_all(self):
        n = 6
        machine, world = world_of(n)

        def main(mpi, rank):
            contrib = np.full(4, rank + 10, np.uint8)
            out = np.zeros(4 * n, np.uint8) if rank == 0 else None
            yield from gather(mpi, contrib, out, root=0)
            return bytes(out) if rank == 0 else None

        results = run_world(machine, world, main)
        expected = b"".join(bytes([r + 10]) * 4 for r in range(n))
        assert results[0] == expected

    def test_undersized_recvbuf_rejected(self):
        machine, world = world_of(2)

        def main(mpi, rank):
            contrib = np.zeros(4, np.uint8)
            if rank == 0:
                with pytest.raises(ValueError):
                    yield from gather(mpi, contrib, np.zeros(4, np.uint8), root=0)
                # unblock rank 1 with a real gather
                out = np.zeros(8, np.uint8)
                yield from gather(mpi, contrib, out, root=0)
            else:
                yield from gather(mpi, contrib, None, root=0)
            return None

        run_world(machine, world, main)
