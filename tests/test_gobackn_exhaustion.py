"""Go-back-N retry exhaustion: the degrade path must be app-visible,
exactly-once, and never hang (ISSUE satellite: exhaustion edge)."""

import pytest

from repro.faults import FaultPlan, LinkOutage, OutageMode
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import DEFAULT_CONFIG
from repro.machine.builder import build_pair
from repro.portals import EventKind, NIFailType
from repro.sim import us

GO_BACK_N = ExhaustionPolicy.GO_BACK_N

#: dead wire + tiny retry budget: exhaustion in simulated microseconds
DEAD = FaultPlan(
    outages=(LinkOutage(start=0, end=None, mode=OutageMode.DROP),)
)
FAST_EXHAUST = DEFAULT_CONFIG.replace(
    reliable_transport=True,
    gobackn_max_retries=2,
    gobackn_backoff=us(5),
    gobackn_backoff_max=us(15),
    retransmit_timeout=us(15),
)


def run_dead_link(messages, nbytes=2048):
    machine, na, nb = build_pair(
        FAST_EXHAUST, policy=GO_BACK_N, fault_plan=DEAD
    )
    pa, pb = na.create_process(), nb.create_process()
    events = []

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(128)
        md = yield from api.PtlMDBind(proc.alloc(nbytes), eq=eq)
        for _ in range(messages):
            yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
        fails = 0
        while fails < messages:
            ev = yield from api.PtlEQWait(eq)
            events.append(ev)
            if (
                ev.kind is EventKind.SEND_END
                and ev.ni_fail_type is NIFailType.FAIL
            ):
                fails += 1
        return fails

    hs = pa.spawn(sender, pb.id)
    machine.run()  # must return: exhaustion ends the retry engine
    assert hs.triggered, "sender hung waiting for failure events"
    if not hs.ok:
        raise hs.value
    return machine, na, events


class TestExhaustion:
    def test_failure_event_not_hang(self):
        machine, na, events = run_dead_link(messages=1)
        failures = [
            ev
            for ev in events
            if ev.kind is EventKind.SEND_END
            and ev.ni_fail_type is NIFailType.FAIL
        ]
        assert len(failures) == 1
        assert na.firmware.counters["gobackn_failures"] == 1

    def test_exactly_one_failure_per_message(self):
        """NAK-driven and watchdog-driven retransmits race on the same
        record; the failed-latch must collapse them to ONE app event."""
        machine, na, events = run_dead_link(messages=3)
        failures = [
            ev
            for ev in events
            if ev.kind is EventKind.SEND_END
            and ev.ni_fail_type is NIFailType.FAIL
        ]
        assert len(failures) == 3
        assert na.firmware.counters["gobackn_failures"] == 3

    def test_retries_actually_happened_first(self):
        machine, na, _ = run_dead_link(messages=1)
        fw = na.firmware.counters
        # the engine tried (max_retries=2 ceiling) before giving up
        assert fw["retransmits"] >= 1
        assert fw["timeout_retransmits"] >= 1

    def test_sim_quiesces_after_exhaustion(self):
        machine, _, _ = run_dead_link(messages=1)
        # no watchdog/timer left spinning: time stopped advancing
        end = machine.now
        machine.run()
        assert machine.now == end
