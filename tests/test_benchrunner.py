"""The benchmark orchestrator: discovery, pool determinism, the golden
comparator, and the parseable bench report file.

The load-bearing properties:

* sharding is sound — per-size measurements are independent of what
  else ran in the same process, so a sharded union equals a single
  serial sweep;
* the worker pool changes wall-clock only — simulated results from a
  pooled run are byte-identical to the serial reference;
* the comparator is airtight at its default (bit-identical) policy —
  it passes on identical input and flags a seeded ±1% perturbation.
"""

from __future__ import annotations

import copy
import json
import random
from pathlib import Path

import pytest

from repro.benchrunner import (
    SPECS,
    Tolerance,
    canonical_json,
    compare_results,
    discover_shards,
    execute_shard,
    format_compare_table,
    format_run_summary,
    load_golden_dir,
    parse_report_file,
    run_bench,
    simulated_json,
    update_golden,
)
from repro.benchrunner.discovery import Shard, spec_sizes
from repro.cli import main
from repro.netpipe import PortalsPutModule, run_series

FILTER = "fig4/put"  # small, fast shard set reused across tests


@pytest.fixture(scope="module")
def fig4_put_results():
    return run_bench(fast=True, workers=1, filter=FILTER)


# -- discovery --------------------------------------------------------------


def test_discovery_covers_every_spec():
    shards = discover_shards(fast=True)
    specs_seen = {s.spec for s in shards}
    assert specs_seen == set(SPECS)
    ids = [s.shard_id for s in shards]
    assert len(ids) == len(set(ids)), "shard ids must be unique"


def test_discovery_figures_shard_by_module_and_decade():
    shards = [s for s in discover_shards(fast=True) if s.spec == "fig5"]
    variants = {s.variant for s in shards}
    assert variants == {"put", "get", "mpich1", "mpich2"}
    put = [s for s in shards if s.variant == "put"]
    assert len(put) > 1, "an 8 MB sweep must split into several decades"
    merged = sorted(n for s in put for n in s.sizes)
    assert merged == spec_sizes(SPECS["fig5"], fast=True)


def test_discovery_fig4_keeps_piggyback_boundary_in_fast_mode():
    sizes = spec_sizes(SPECS["fig4"], fast=True)
    assert 12 in sizes and 13 in sizes


def test_discovery_filter():
    shards = discover_shards(fast=True, filter="fig4/put")
    assert shards and all("fig4/put" in s.shard_id for s in shards)
    with pytest.raises(ValueError):
        run_bench(fast=True, filter="no-such-shard")


# -- shard soundness --------------------------------------------------------


def test_sharded_union_equals_serial_sweep():
    """The decade decomposition reproduces a single-run sweep exactly."""
    sizes = spec_sizes(SPECS["fig4"], fast=True)
    reference = run_series(PortalsPutModule(), "pingpong", sizes)
    shards = discover_shards(fast=True, filter="fig4/put")
    merged = []
    for shard in shards:
        result = execute_shard(shard)
        assert result.series is not None
        merged.extend(
            zip(result.series.sizes, result.series.total_ps)
        )
    merged.sort()
    assert merged == [(p.nbytes, p.total_ps) for p in reference.points]


def test_pool_results_byte_identical_to_serial(fig4_put_results):
    pooled = run_bench(fast=True, workers=2, filter=FILTER)
    assert simulated_json(pooled) == simulated_json(fig4_put_results)


def test_results_document_shape(fig4_put_results):
    doc = fig4_put_results
    assert doc["schema"] == "repro-bench/1"
    assert doc["mode"] == "fast"
    var = doc["figures"]["fig4"]["variants"]["put"]
    assert var["series"]["sizes"] == sorted(var["series"]["sizes"])
    assert all(isinstance(t, int) for t in var["series"]["total_ps"])
    assert var["metrics"]["latency_1b_us"] == pytest.approx(5.39, rel=0.1)
    assert var["metrics"]["piggyback_step_us"] > 2.0
    assert doc["wallclock"]["shards"], "per-shard wall clock recorded"


def test_canonical_json_is_stable():
    assert canonical_json({"b": 1, "a": [2, 1]}) == canonical_json(
        {"a": [2, 1], "b": 1}
    )
    assert canonical_json({"x": 1.5}).endswith("\n")


# -- comparator -------------------------------------------------------------


def test_comparator_passes_on_identical_input(tmp_path, fig4_put_results):
    update_golden(fig4_put_results, tmp_path)
    goldens = load_golden_dir(tmp_path)
    report = compare_results(copy.deepcopy(fig4_put_results), goldens)
    assert report.ok
    assert report.compared > 0
    assert "PASS" in format_compare_table(report)


def test_comparator_detects_seeded_latency_perturbation(
    tmp_path, fig4_put_results
):
    """A ±1% perturbation of the simulated times must gate the run."""
    update_golden(fig4_put_results, tmp_path)
    goldens = load_golden_dir(tmp_path)
    perturbed = copy.deepcopy(fig4_put_results)
    rng = random.Random(42)
    var = perturbed["figures"]["fig4"]["variants"]["put"]
    var["series"]["total_ps"] = [
        round(t * (1.0 + rng.uniform(-0.01, 0.01)))
        for t in var["series"]["total_ps"]
    ]
    var["metrics"]["latency_1b_us"] *= 1.01
    report = compare_results(perturbed, goldens)
    assert not report.ok
    whats = {d.what for d in report.drifts}
    assert "latency_1b_us" in whats
    assert any(w.startswith("series[") for w in whats)
    table = format_compare_table(report)
    assert "FAIL" in table and "latency_1b_us" in table


def test_comparator_default_policy_is_bit_identical(tmp_path, fig4_put_results):
    """Even a one-ulp-scale metric change counts as drift by default."""
    update_golden(fig4_put_results, tmp_path)
    perturbed = copy.deepcopy(fig4_put_results)
    var = perturbed["figures"]["fig4"]["variants"]["put"]
    var["metrics"]["latency_1b_us"] += 1e-9
    report = compare_results(perturbed, load_golden_dir(tmp_path))
    assert not report.ok


def test_comparator_tolerances_relax_named_metrics(tmp_path, fig4_put_results):
    update_golden(fig4_put_results, tmp_path)
    perturbed = copy.deepcopy(fig4_put_results)
    var = perturbed["figures"]["fig4"]["variants"]["put"]
    var["metrics"]["latency_1b_us"] *= 1.01
    report = compare_results(
        perturbed,
        load_golden_dir(tmp_path),
        tolerances={"latency_1b_us": Tolerance(rel=0.05)},
    )
    assert report.ok


def test_comparator_flags_missing_figure_and_grid_change(
    tmp_path, fig4_put_results
):
    update_golden(fig4_put_results, tmp_path)
    goldens = load_golden_dir(tmp_path)

    empty = copy.deepcopy(fig4_put_results)
    empty["figures"] = {}
    assert not compare_results(empty, goldens).ok

    regrid = copy.deepcopy(fig4_put_results)
    series = regrid["figures"]["fig4"]["variants"]["put"]["series"]
    series["sizes"] = [n + 1 for n in series["sizes"]]
    report = compare_results(regrid, goldens)
    assert any("grid changed" in d.what for d in report.drifts)


def test_comparator_rejects_mode_mismatch(tmp_path, fig4_put_results):
    update_golden(fig4_put_results, tmp_path)
    other = copy.deepcopy(fig4_put_results)
    other["mode"] = "full"
    report = compare_results(other, load_golden_dir(tmp_path))
    assert any("mode" in d.what for d in report.drifts)


def test_committed_goldens_match_schema():
    """Every golden in the repo loads and names a known spec."""
    golden_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "golden"
    goldens = load_golden_dir(golden_dir)
    assert set(goldens) == set(SPECS)
    for name, doc in goldens.items():
        assert doc["mode"] == "fast"
        assert doc["variants"], name


# -- CLI --------------------------------------------------------------------


def test_cli_bench_gate_roundtrip(tmp_path, capsys):
    out = tmp_path / "BENCH_results.json"
    golden = tmp_path / "golden"
    assert (
        main(
            [
                "bench", "--fast", "--filter", FILTER, "--quiet",
                "--out", str(out), "--compare", str(golden), "--update-golden",
            ]
        )
        == 0
    )
    assert out.exists() and golden.is_dir()
    diff = tmp_path / "diff.txt"
    assert (
        main(
            [
                "bench", "--fast", "--filter", FILTER, "--quiet",
                "--out", str(out), "--compare", str(golden),
                "--diff-file", str(diff),
            ]
        )
        == 0
    )
    assert "PASS" in diff.read_text()

    # poison one golden metric: the gate must exit nonzero
    poisoned = json.loads((golden / "fig4.json").read_text())
    poisoned["variants"]["put"]["metrics"]["latency_1b_us"] *= 1.01
    (golden / "fig4.json").write_text(canonical_json(poisoned))
    assert (
        main(
            [
                "bench", "--fast", "--filter", FILTER, "--quiet",
                "--out", str(out), "--compare", str(golden),
                "--diff-file", str(diff),
            ]
        )
        == 1
    )
    assert "FAIL" in diff.read_text()
    capsys.readouterr()


def test_cli_bench_list(capsys):
    assert main(["bench", "--fast", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig4/put/d0" in out and "inline_sram" in out


# -- run summary / report file ----------------------------------------------


def test_run_summary_mentions_paper_anchors(fig4_put_results):
    text = format_run_summary(fig4_put_results)
    assert "latency_1b_us" in text
    assert "paper 5.39" in text
    assert "wall-clock" in text


def test_conftest_report_file_roundtrip(tmp_path, monkeypatch):
    """The bench report file survives capture and parses back."""
    from benchmarks import conftest as bench_conftest

    monkeypatch.setattr(bench_conftest, "_REPORT_LINES", [])
    monkeypatch.setattr(bench_conftest, "_REPORT_PATH", None)
    monkeypatch.setenv("REPRO_BENCH_REPORT", str(tmp_path / "report.txt"))

    series = run_series(PortalsPutModule(), "pingpong", [1, 2, 4])
    bench_conftest.print_series_table("Figure X: demo", [series], latency=True)
    bench_conftest.print_anchor("put @1B", 5.39, 5.382, "us")
    bench_conftest.print_anchor("unanchored", 0, 1.25, "MB/s")
    path = bench_conftest.write_report_file()
    assert path is not None and path.exists()

    doc = parse_report_file(path)
    table = doc["tables"]["Figure X: demo"]
    assert table["header"][0] == "bytes"
    assert [row[0] for row in table["rows"]] == ["1", "2", "4"]
    anchors = {a["name"]: a for a in doc["anchors"]}
    assert anchors["put @1B"]["paper"] == pytest.approx(5.39)
    # the report renders 2 decimal places
    assert anchors["put @1B"]["measured"] == pytest.approx(5.382, abs=0.01)
    assert anchors["unanchored"]["paper"] is None


def test_shard_id_formats():
    assert Shard(spec="fig5", variant="put", chunk=3).shard_id == "fig5/put/d3"
    assert Shard(spec="inline_sram", variant="default", chunk=-1).shard_id == (
        "inline_sram"
    )
