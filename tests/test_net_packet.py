"""Wire chunking: framing invariants and payload slicing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import WireChunk, chunk_message, next_message_id


def _chunks(body, chunk_bytes=4096, packet=64, inline=0, payload=None):
    return chunk_message(
        src=0,
        dst=1,
        header="H",
        body_bytes=body,
        payload=payload,
        packet_bytes=packet,
        chunk_bytes=chunk_bytes,
        inline_bytes=inline,
    )


class TestChunking:
    def test_header_only_message(self):
        chunks = _chunks(0)
        assert len(chunks) == 1
        c = chunks[0]
        assert c.is_header and c.is_last and c.seq == 0 and c.npackets == 1

    def test_inline_bytes_recorded_on_header(self):
        chunks = _chunks(0, inline=12)
        assert chunks[0].nbytes == 12
        assert chunks[0].is_last

    def test_multi_chunk_framing(self):
        chunks = _chunks(10000, chunk_bytes=4096)
        assert [c.seq for c in chunks] == [0, 1, 2, 3]
        assert chunks[0].is_header and not chunks[0].is_last
        assert chunks[-1].is_last
        assert sum(c.nbytes for c in chunks[1:]) == 10000

    def test_packet_counts_round_up(self):
        chunks = _chunks(65, chunk_bytes=4096)
        assert chunks[1].npackets == 2  # 65 bytes -> 2 x 64B packets

    def test_payload_views_cover_message(self):
        payload = np.arange(10000, dtype=np.uint8)
        chunks = _chunks(10000, payload=payload)
        rebuilt = np.concatenate([c.payload for c in chunks[1:]])
        assert np.array_equal(rebuilt, payload)

    def test_shared_message_id(self):
        chunks = _chunks(9000)
        assert len({c.msg_id for c in chunks}) == 1

    def test_message_ids_unique_across_messages(self):
        a = _chunks(100)[0].msg_id
        b = _chunks(100)[0].msg_id
        assert a != b

    def test_explicit_message_id(self):
        chunks = _chunks(0)
        forced = chunk_message(
            src=0, dst=1, header="H", body_bytes=0,
            packet_bytes=64, chunk_bytes=4096, msg_id=12345,
        )
        assert forced[0].msg_id == 12345
        assert chunks[0].msg_id != 12345

    def test_bad_chunk_bytes_rejected(self):
        with pytest.raises(ValueError):
            _chunks(100, chunk_bytes=100)  # not multiple of 64
        with pytest.raises(ValueError):
            _chunks(100, chunk_bytes=32)  # smaller than a packet

    def test_negative_body_rejected(self):
        with pytest.raises(ValueError):
            _chunks(-1)

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            WireChunk(
                msg_id=1, src=0, dst=1, seq=0, npackets=0,
                nbytes=0, is_header=True, is_last=True,
            )
        with pytest.raises(ValueError):
            WireChunk(
                msg_id=1, src=0, dst=1, seq=0, npackets=1,
                nbytes=0, is_header=False, is_last=True,
            )

    @settings(max_examples=60, deadline=None)
    @given(
        body=st.integers(0, 200_000),
        chunk_kb=st.sampled_from([64, 256, 1024, 4096, 8192]),
    )
    def test_framing_invariants(self, body, chunk_kb):
        chunks = _chunks(body, chunk_bytes=chunk_kb)
        # exactly one header, exactly one last, sequential seq
        assert sum(c.is_header for c in chunks) == 1
        assert sum(c.is_last for c in chunks) == 1
        assert chunks[-1].is_last
        assert [c.seq for c in chunks] == list(range(len(chunks)))
        # body bytes conserved
        assert sum(c.nbytes for c in chunks[1:]) == body
        # payload packets consistent with sizes
        for c in chunks[1:]:
            assert c.npackets == -(-c.nbytes // 64)
            assert 0 < c.nbytes <= chunk_kb

    def test_next_message_id_monotonic(self):
        a = next_message_id()
        b = next_message_id()
        assert b == a + 1
