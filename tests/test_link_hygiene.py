"""LinkModel counter hygiene: reset/snapshot and report surfacing."""

from repro.analysis.report import format_machine_report, machine_report
from repro.hw.config import SeaStarConfig
from repro.net.link import LinkModel

from .conftest import run_to_completion


class TestLinkCounters:
    def test_snapshot_returns_both_counters(self):
        link = LinkModel(SeaStarConfig())
        link.packets_carried = 11
        link.retries = 3
        assert link.snapshot() == {
            "packets_carried": 11,
            "retries": 3,
            "retry_time_ps": 0,
        }

    def test_snapshot_is_a_copy(self):
        link = LinkModel(SeaStarConfig())
        snap = link.snapshot()
        link.packets_carried = 99
        assert snap["packets_carried"] == 0

    def test_reset_zeroes_counters(self):
        link = LinkModel(SeaStarConfig())
        link.packets_carried = 11
        link.retries = 3
        link.reset()
        assert link.snapshot() == {
            "packets_carried": 0,
            "retries": 0,
            "retry_time_ps": 0,
        }

    def test_retry_penalty_counts_retries(self):
        # a retry probability high enough that 10k packets must see some
        link = LinkModel(SeaStarConfig(link_crc_retry_prob=1e-3), seed=1)
        total = sum(link.retry_penalty(100) for _ in range(100))
        assert link.retries > 0
        assert total >= link.retries  # each retry costs >= 1 ps

    def test_reset_after_traffic(self, pair):
        machine, na, nb = pair
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            from .conftest import make_target
            from repro.portals import EventKind

            eq, _, _, _ = yield from make_target(proc)
            ev = yield from proc.api.PtlEQWait(eq)
            while ev.kind is not EventKind.PUT_END:
                ev = yield from proc.api.PtlEQWait(eq)
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(512), eq=eq)
            yield from api.PtlPut(md, target, 4, 0x1234, length=512)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        assert machine.fabric.link.packets_carried > 0
        machine.fabric.link.reset()
        assert machine.fabric.link.snapshot() == {
            "packets_carried": 0,
            "retries": 0,
            "retry_time_ps": 0,
        }


class TestReportSurfacing:
    def test_machine_report_carries_link_snapshot(self, pair):
        machine, _, _ = pair
        machine.fabric.link.packets_carried = 5
        machine.fabric.link.retries = 2
        fabric = machine_report(machine)["fabric"]
        assert fabric["link_packets"] == 5
        assert fabric["link_retries"] == 2

    def test_formatted_report_mentions_link_retries(self, pair):
        machine, _, _ = pair
        machine.fabric.link.retries = 4
        assert "4 link retries" in format_machine_report(machine)
