"""MPI probe/iprobe and synchronous send."""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.mpi import MPI_ANY_SOURCE, MPI_ANY_TAG, create_world, run_world
from repro.sim import US


def two_rank_world():
    machine, a, b = build_pair()
    return machine, create_world(machine, [a, b])


class TestIProbe:
    def test_no_message_returns_none(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 1:
                status = yield from mpi.iprobe()
                return status
            yield mpi.sim.timeout(1)
            return None

        _, = [run_world(machine, world, main)[1]],
        # rank 1's result is the second entry
        # (re-run cleanly for clarity below)

    def test_probe_sees_arrived_message_without_consuming(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.full(64, 3, np.uint8), 1, tag=9)
                return None
            yield mpi.sim.timeout(100 * US)  # let it arrive unexpectedly
            probed = yield from mpi.iprobe(source=0, tag=9)
            assert probed is not None
            assert probed.count == 64 and probed.tag == 9 and probed.source == 0
            # probing again still sees it (not consumed)
            again = yield from mpi.iprobe(source=0, tag=9)
            assert again is not None
            buf = np.zeros(64, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=9)
            assert status.count == 64 and buf[0] == 3
            # now it is gone
            gone = yield from mpi.iprobe(source=0, tag=9)
            return gone

        results = run_world(machine, world, main)
        assert results[1] is None

    def test_wildcard_probe(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.zeros(8, np.uint8), 1, tag=123)
                return None
            status = yield from mpi.probe(source=MPI_ANY_SOURCE, tag=MPI_ANY_TAG)
            return status.tag, status.source

        results = run_world(machine, world, main)
        assert results[1] == (123, 0)

    def test_probe_reports_rendezvous_full_length(self):
        machine, world = two_rank_world()
        n = 400_000  # above eager limit

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.zeros(n, np.uint8), 1, tag=5)
                return None
            status = yield from mpi.probe(source=0, tag=5)
            # the RTS is 0 bytes but probe must report the real length
            assert status.count == n
            buf = np.zeros(n, np.uint8)
            final = yield from mpi.recv(buf, source=0, tag=5)
            return final.count

        results = run_world(machine, world, main)
        assert results[1] == n


class TestProbeBlocking:
    def test_probe_blocks_until_arrival(self):
        machine, world = two_rank_world()
        stamps = {}

        def main(mpi, rank):
            if rank == 0:
                yield mpi.sim.timeout(500 * US)
                stamps["sent"] = mpi.sim.now
                yield from mpi.send(np.zeros(4, np.uint8), 1, tag=1)
                return None
            status = yield from mpi.probe(source=0, tag=1)
            stamps["probed"] = mpi.sim.now
            buf = np.zeros(4, np.uint8)
            yield from mpi.recv(buf, source=0, tag=1)
            return status.count

        run_world(machine, world, main)
        assert stamps["probed"] >= stamps["sent"]


class TestSsend:
    def test_ssend_completes_after_match(self):
        machine, world = two_rank_world()
        stamps = {}

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.ssend(np.full(32, 7, np.uint8), 1, tag=4)
                stamps["ssend_done"] = mpi.sim.now
                return None
            # delay the receive; the ssend must not complete before it
            yield mpi.sim.timeout(300 * US)
            stamps["recv_posted"] = mpi.sim.now
            buf = np.zeros(32, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=4)
            assert buf[0] == 7
            return status.count

        results = run_world(machine, world, main)
        assert results[1] == 32
        # matched via the unexpected buffer at arrival: the ack fires at
        # match time (deposit into the unexpected MD), which for our model
        # happens on arrival — crucially ssend still waited for the ACK
        # round trip, not just local transmit completion
        assert stamps["ssend_done"] > 0

    def test_ssend_data_intact(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.ssend(np.arange(100, dtype=np.uint8), 1, tag=8)
                return None
            buf = np.zeros(100, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=8)
            return bytes(buf)

        results = run_world(machine, world, main)
        assert results[1] == bytes(range(100))

    def test_ssend_rendezvous_path(self):
        machine, world = two_rank_world()
        n = 300_000

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.ssend(np.full(n, 5, np.uint8), 1, tag=3)
                return "sent"
            buf = np.zeros(n, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=3)
            return status.count

        results = run_world(machine, world, main)
        assert results == ["sent", n]

    def test_ssend_slower_than_send(self):
        def one_way(use_ssend):
            machine, world = two_rank_world()
            stamps = {}

            def main(mpi, rank):
                buf = np.zeros(8, np.uint8)
                if rank == 0:
                    stamps["t0"] = mpi.sim.now
                    if use_ssend:
                        yield from mpi.ssend(buf, 1)
                    else:
                        yield from mpi.send(buf, 1)
                    stamps["t1"] = mpi.sim.now
                    return None
                yield from mpi.recv(buf, source=0)
                return None

            run_world(machine, world, main)
            return stamps["t1"] - stamps["t0"]

        # the ack round trip makes ssend strictly slower locally
        assert one_way(True) > one_way(False)
