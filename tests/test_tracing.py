"""Machine-wide message tracing."""

import pytest

from repro.machine.builder import build_pair
from repro.portals import EventKind

from .conftest import drain_events, make_target, run_to_completion


def traced_put(nbytes):
    machine, na, nb = build_pair(trace=True)
    pa, pb = na.create_process(), nb.create_process()

    def receiver(proc):
        eq, me, md, buf = yield from make_target(proc, size=max(nbytes, 1))
        yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
        return True

    def sender(proc, target):
        api = proc.api
        md = yield from api.PtlMDBind(proc.alloc(max(nbytes, 1)))
        yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
        yield proc.sim.timeout(100_000_000)
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    run_to_completion(machine, hr, hs)
    return machine.tracer


class TestTracer:
    def test_disabled_by_default(self):
        machine, na, nb = build_pair()
        assert machine.tracer is None

    def test_put_lifecycle_sequence(self):
        tracer = traced_put(100)
        cats = [r.category for r in tracer.records]
        # the canonical order: sender fw tx, receiver fw header, receiver
        # interrupt, receiver match
        assert "fw.tx" in cats and "fw.rx_header" in cats
        assert cats.index("fw.tx") < cats.index("fw.rx_header")
        assert cats.index("fw.rx_header") < cats.index("kernel.match")
        irqs = [r for r in tracer.records if r.category == "kernel.irq"]
        assert irqs, "receiver interrupt not traced"

    def test_trace_details_carry_node_and_size(self):
        tracer = traced_put(200)
        tx = tracer.by_category("fw.tx")[0]
        assert tx.detail["node"] == 0
        assert tx.detail["nbytes"] == 200
        rx = tracer.by_category("fw.rx_header")[0]
        assert rx.detail["node"] == 1
        assert rx.detail["msg_id"] == tx.detail["msg_id"]

    def test_match_status_recorded(self):
        tracer = traced_put(50)
        match = tracer.by_category("kernel.match")[0]
        assert match.detail["status"] == "matched"
        assert match.detail["mlength"] == 50

    def test_timestamps_monotone(self):
        tracer = traced_put(1000)
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_unmatched_put_traced_as_drop(self):
        machine, na, nb = build_pair(trace=True)
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, match_bits=0x1)
            yield proc.sim.timeout(100_000_000)
            return True

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8))
            yield from api.PtlPut(md, target, 4, 0x2)
            yield proc.sim.timeout(100_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        match = machine.tracer.by_category("kernel.match")[0]
        assert match.detail["status"] == "dropped_no_match"
