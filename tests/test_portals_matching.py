"""Portals matching semantics: bits, sources, list order, truncation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    MatchEntry,
    MatchList,
    MatchStatus,
    MDOptions,
    MsgType,
    PortalsHeader,
    PortalTable,
    ProcessId,
    bits_match,
    commit_operation,
    match_request,
    md_from_buffer,
    source_match,
)

bits64 = st.integers(0, (1 << 64) - 1)
ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)


class TestBitsMatch:
    def test_exact_match(self):
        assert bits_match(0xDEAD, 0xDEAD, 0)

    def test_mismatch(self):
        assert not bits_match(0xDEAD, 0xBEEF, 0)

    def test_ignore_bits_mask_differences(self):
        assert bits_match(0b1010, 0b1000, 0b0010)

    def test_all_ignored_matches_anything(self):
        assert bits_match(0x123456789, 0, (1 << 64) - 1)

    @given(incoming=bits64, match=bits64)
    def test_full_ignore_always_matches(self, incoming, match):
        assert bits_match(incoming, match, (1 << 64) - 1)

    @given(bits=bits64)
    def test_reflexive(self, bits):
        assert bits_match(bits, bits, 0)

    @given(incoming=bits64, match=bits64, ignore=bits64)
    def test_spec_formula(self, incoming, match, ignore):
        expected = ((incoming ^ match) & ~ignore & ((1 << 64) - 1)) == 0
        assert bits_match(incoming, match, ignore) == expected

    @given(incoming=bits64, match=bits64, ignore=bits64)
    def test_widening_ignore_never_unmatches(self, incoming, match, ignore):
        if bits_match(incoming, match, ignore):
            assert bits_match(incoming, match, ignore | 0xFF)


class TestSourceMatch:
    def test_exact(self):
        assert source_match(ProcessId(3, 7), ProcessId(3, 7))
        assert not source_match(ProcessId(3, 7), ProcessId(3, 8))
        assert not source_match(ProcessId(4, 7), ProcessId(3, 7))

    def test_wildcards(self):
        assert source_match(ProcessId(3, 7), ProcessId(PTL_NID_ANY, 7))
        assert source_match(ProcessId(3, 7), ProcessId(3, PTL_PID_ANY))
        assert source_match(ProcessId(3, 7), ANY)


class TestMatchList:
    def test_walk_order_head_to_tail(self):
        ml = MatchList()
        first = MatchEntry(ANY, 0, (1 << 64) - 1, md=_md(64))
        second = MatchEntry(ANY, 0, (1 << 64) - 1, md=_md(64))
        ml.attach_tail(first)
        ml.attach_tail(second)
        hit = ml.first_match(ProcessId(0, 0), 0x42, is_put=True)
        assert hit is first

    def test_attach_head_takes_priority(self):
        ml = MatchList()
        tail = MatchEntry(ANY, 0, (1 << 64) - 1, md=_md(64))
        head = MatchEntry(ANY, 0, (1 << 64) - 1, md=_md(64))
        ml.attach_tail(tail)
        ml.attach_head(head)
        assert ml.first_match(ProcessId(0, 0), 0, is_put=True) is head

    def test_insert_before_and_after(self):
        ml = MatchList()
        anchor = MatchEntry(ANY, 1, md=_md(64))
        ml.attach_tail(anchor)
        before = MatchEntry(ANY, 2, md=_md(64))
        after = MatchEntry(ANY, 3, md=_md(64))
        ml.insert(anchor, before, after=False)
        ml.insert(anchor, after, after=True)
        assert [e.match_bits for e in ml] == [2, 1, 3]

    def test_unlink_removes(self):
        ml = MatchList()
        me = MatchEntry(ANY, 0, md=_md(64))
        ml.attach_tail(me)
        ml.unlink(me)
        assert len(ml) == 0 and not me.linked
        with pytest.raises(ValueError):
            ml.unlink(me)

    def test_entries_without_accepting_md_skipped(self):
        ml = MatchList()
        no_md = MatchEntry(ANY, 0, (1 << 64) - 1)
        get_only = MatchEntry(
            ANY, 0, (1 << 64) - 1, md=_md(64, options=MDOptions.OP_GET)
        )
        good = MatchEntry(ANY, 0, (1 << 64) - 1, md=_md(64))
        for e in (no_md, get_only, good):
            ml.attach_tail(e)
        assert ml.first_match(ProcessId(0, 0), 0, is_put=True) is good

    def test_source_criterion_filters(self):
        ml = MatchList()
        only3 = MatchEntry(ProcessId(3, PTL_PID_ANY), 0, (1 << 64) - 1, md=_md(64))
        ml.attach_tail(only3)
        assert ml.first_match(ProcessId(4, 0), 0, is_put=True) is None
        assert ml.first_match(ProcessId(3, 9), 0, is_put=True) is only3


def _md(size, options=MDOptions.OP_PUT | MDOptions.TRUNCATE, **kw):
    return md_from_buffer(np.zeros(size, dtype=np.uint8), options=options, **kw)


def _hdr(length=8, bits=0x42, op=MsgType.PUT, offset=0, src=ProcessId(1, 1)):
    return PortalsHeader(
        op=op, src=src, dst=ProcessId(0, 0), ptl_index=0,
        match_bits=bits, length=length, offset=offset,
    )


def _table_with(md, bits=0x42, ignore=0):
    table = PortalTable(8)
    me = MatchEntry(ANY, bits, ignore, md=md)
    table.match_list(0).attach_tail(me)
    return table, me


class TestMatchRequest:
    def test_simple_match(self):
        table, me = _table_with(_md(64))
        result = match_request(table, _hdr(length=8))
        assert result.matched
        assert result.me is me and result.mlength == 8 and result.offset == 0

    def test_no_match_drops(self):
        table, _ = _table_with(_md(64), bits=0x99)
        result = match_request(table, _hdr(bits=0x42))
        assert result.status is MatchStatus.DROPPED_NO_MATCH

    def test_truncation(self):
        table, _ = _table_with(_md(10))
        result = match_request(table, _hdr(length=100))
        assert result.matched
        assert result.mlength == 10 and result.rlength == 100

    def test_no_truncate_drops_when_too_big(self):
        md = _md(10, options=MDOptions.OP_PUT)
        table, _ = _table_with(md)
        result = match_request(table, _hdr(length=100))
        assert result.status is MatchStatus.DROPPED_NO_SPACE

    def test_manage_remote_uses_header_offset(self):
        md = _md(100, options=MDOptions.OP_PUT | MDOptions.MANAGE_REMOTE)
        table, _ = _table_with(md)
        result = match_request(table, _hdr(length=10, offset=50))
        assert result.matched and result.offset == 50

    def test_local_offset_advances_between_messages(self):
        md = _md(100)
        table, me = _table_with(md)
        hdr = _hdr(length=30)
        r1 = match_request(table, hdr)
        commit_operation(table.match_list(0), r1, hdr, started=True)
        r2 = match_request(table, hdr)
        assert r2.offset == 30

    def test_get_requires_op_get(self):
        table, _ = _table_with(_md(64, options=MDOptions.OP_PUT))
        result = match_request(table, _hdr(op=MsgType.GET))
        assert not result.matched

    def test_only_requests_allowed(self):
        table, _ = _table_with(_md(64))
        with pytest.raises(ValueError):
            match_request(table, _hdr(op=MsgType.ACK))


class TestCommit:
    def test_threshold_consumed_on_start(self):
        md = _md(64, threshold=2)
        table, _ = _table_with(md)
        hdr = _hdr()
        r = match_request(table, hdr)
        commit_operation(table.match_list(0), r, hdr, started=True)
        assert md.threshold == 1

    def test_exhausted_md_skipped_next_time(self):
        md = _md(64, threshold=1)
        table, _ = _table_with(md)
        hdr = _hdr()
        r = match_request(table, hdr)
        commit_operation(table.match_list(0), r, hdr, started=True)
        assert not match_request(table, hdr).matched

    def test_auto_unlink_on_exhaustion(self):
        md = _md(64, threshold=1)
        md.unlink_when_exhausted = True
        table, me = _table_with(md)
        me.unlink_on_use = True
        hdr = _hdr()
        ml = table.match_list(0)
        r = match_request(table, hdr)
        commit_operation(ml, r, hdr, started=True)
        events = commit_operation(ml, r, hdr, started=False)
        assert not me.linked and not md.active
        # no EQ attached: no UNLINK event generated
        assert events == []

    def test_unlink_event_when_eq_attached(self):
        from repro.portals import EventKind, EventQueue
        from repro.sim import Simulator

        sim = Simulator()
        eq = EventQueue(sim, 8)
        md = _md(64, threshold=1, eq=eq)
        md.unlink_when_exhausted = True
        table, me = _table_with(md)
        hdr = _hdr()
        ml = table.match_list(0)
        r = match_request(table, hdr)
        commit_operation(ml, r, hdr, started=True)
        events = commit_operation(ml, r, hdr, started=False)
        kinds = [e.kind for e in events]
        assert EventKind.PUT_END in kinds and EventKind.UNLINK in kinds

    def test_start_and_end_events(self):
        from repro.portals import EventKind, EventQueue
        from repro.sim import Simulator

        sim = Simulator()
        eq = EventQueue(sim, 8)
        md = _md(64, eq=eq)
        table, _ = _table_with(md)
        hdr = _hdr(length=5)
        ml = table.match_list(0)
        r = match_request(table, hdr)
        start = commit_operation(ml, r, hdr, started=True)
        end = commit_operation(ml, r, hdr, started=False)
        assert [e.kind for e in start] == [EventKind.PUT_START]
        assert [e.kind for e in end] == [EventKind.PUT_END]
        assert end[0].mlength == 5 and end[0].rlength == 5

    def test_event_disable_options(self):
        from repro.portals import EventQueue
        from repro.sim import Simulator

        sim = Simulator()
        eq = EventQueue(sim, 8)
        md = _md(
            64,
            options=MDOptions.OP_PUT
            | MDOptions.EVENT_START_DISABLE
            | MDOptions.EVENT_END_DISABLE,
            eq=eq,
        )
        table, _ = _table_with(md)
        hdr = _hdr()
        ml = table.match_list(0)
        r = match_request(table, hdr)
        assert commit_operation(ml, r, hdr, started=True) == []
        assert commit_operation(ml, r, hdr, started=False) == []


class TestMatchingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(bits64, bits64), min_size=1, max_size=8
        ),
        incoming=bits64,
    )
    def test_first_match_is_earliest_matching_entry(self, entries, incoming):
        ml = MatchList()
        mes = []
        for match, ignore in entries:
            me = MatchEntry(ANY, match, ignore, md=_md(64))
            ml.attach_tail(me)
            mes.append(me)
        hit = ml.first_match(ProcessId(0, 0), incoming, is_put=True)
        manual = next(
            (me for me in mes if bits_match(incoming, me.match_bits, me.ignore_bits)),
            None,
        )
        assert hit is manual

    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(0, 4096), md_size=st.integers(0, 4096))
    def test_mlength_never_exceeds_space_or_request(self, length, md_size):
        md = _md(max(md_size, 0))
        table, _ = _table_with(md)
        result = match_request(table, _hdr(length=length))
        assert result.matched
        assert result.mlength <= length
        assert result.mlength <= md.length
        assert result.mlength == min(length, md.length)
