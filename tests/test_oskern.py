"""OS kernel layer: memory models, interrupt drain, lazy events."""

import pytest

from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.oskern import ContiguousMemory, OSType, PagedMemory
from repro.portals import EventKind

from .conftest import drain_events, make_target, run_to_completion


class TestMemoryModels:
    def test_contiguous_single_command(self, config):
        mem = ContiguousMemory(config)
        assert mem.dma_commands(8 * 1024 * 1024) == 1
        assert mem.command_prep_cost(8 * 1024 * 1024) == 0

    def test_paged_per_page_commands(self, config):
        mem = PagedMemory(config)
        assert mem.dma_commands(1) == 2  # worst-case straddle
        assert mem.dma_commands(4096) == 2
        assert mem.dma_commands(16384) == 5

    def test_paged_prep_cost_scales(self, config):
        mem = PagedMemory(config)
        small = mem.command_prep_cost(100)
        large = mem.command_prep_cost(1024 * 1024)
        assert large > small
        assert mem.pinned_pages > 0

    def test_allocation_accounting(self, config):
        mem = ContiguousMemory(config)
        buf = mem.allocate(1000)
        assert len(buf) == 1000 and mem.allocated_bytes == 1000
        with pytest.raises(ValueError):
            mem.allocate(-1)

    def test_os_type_selects_memory(self):
        machine, na, nb = build_pair(os_type=OSType.LINUX)
        assert isinstance(na.kernel.memory, PagedMemory)
        machine2, nc, nd = build_pair(os_type=OSType.CATAMOUNT)
        assert isinstance(nc.kernel.memory, ContiguousMemory)


class TestCrossingCosts:
    def test_catamount_trap_vs_linux_syscall(self, config):
        machine_c, a, _ = build_pair(os_type=OSType.CATAMOUNT)
        machine_l, b, _ = build_pair(os_type=OSType.LINUX)
        assert a.kernel.crossing_cost() == config.trap_overhead
        assert b.kernel.crossing_cost() == config.linux_syscall_overhead


class TestInterruptDrain:
    def test_handler_drains_all_events(self):
        """Paper 4.1: the interrupt handler processes all new events per
        invocation — a burst of messages takes far fewer interrupts than
        messages."""
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()
        count = 20

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=16, eq_size=256)
            for _ in range(count):
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(256)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            for _ in range(count):
                yield from api.PtlPut(md, target, 4, 0x1234)
            for _ in range(count):
                yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        irqs = nb.opteron.counters["interrupts"]
        suppressed = nb.kernel.counters["lazy_events_deferred"]
        assert irqs < count, f"{irqs} interrupts for {count} messages"

    def test_linux_send_charges_page_costs(self):
        """The same put costs more host time on Linux (pin + translate +
        push per-page mappings, section 3.3)."""

        def one_put(os_type, nbytes):
            machine, na, nb = build_pair(os_type=os_type)
            pa, pb = na.create_process(), nb.create_process()

            def receiver(proc):
                eq, me, md, buf = yield from make_target(proc, size=nbytes)
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
                return proc.sim.now

            def sender(proc, target):
                api = proc.api
                md = yield from api.PtlMDBind(proc.alloc(nbytes))
                t0 = proc.sim.now
                yield from api.PtlPut(md, target, 4, 0x1234)
                return proc.sim.now - t0

            hr = pb.spawn(receiver)
            hs = pa.spawn(sender, pb.id)
            _, send_time = run_to_completion(machine, hr, hs)
            return send_time

        catamount = one_put(OSType.CATAMOUNT, 256 * 1024)
        linux = one_put(OSType.LINUX, 256 * 1024)
        assert linux > catamount
        # the difference is roughly per-page work for 64+ pages
        cfg = SeaStarConfig()
        assert linux - catamount >= 64 * cfg.host_page_cmd_overhead
