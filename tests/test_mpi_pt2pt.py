"""MPI point-to-point over Portals: eager, rendezvous, wildcards,
ordering, non-blocking requests, truncation."""

import numpy as np
import pytest

from repro.machine.builder import Machine, build_pair
from repro.mpi import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    MPICH1,
    MPICH2,
    create_world,
    run_world,
)
from repro.net import Torus3D

from .conftest import pattern


def two_rank_world(flavor=MPICH1, **kw):
    machine, a, b = build_pair()
    world = create_world(machine, [a, b], flavor=flavor, **kw)
    return machine, world


class TestBasicSendRecv:
    @pytest.mark.parametrize("nbytes", [0, 1, 12, 100, 4096, 70_000])
    def test_eager_data_intact(self, nbytes):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                buf = pattern(max(nbytes, 1))[:nbytes].copy()
                yield from mpi.send(buf, 1, tag=5)
                return None
            buf = np.zeros(nbytes, dtype=np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=5)
            return status.count, bytes(buf)

        _, (count, data) = run_world(machine, world, main)
        assert count == nbytes
        assert data == bytes(pattern(max(nbytes, 1))[:nbytes])

    @pytest.mark.parametrize("nbytes", [200_000, 1_000_000])
    def test_rendezvous_data_intact(self, nbytes):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                buf = pattern(nbytes).copy()
                yield from mpi.send(buf, 1, tag=9)
                return None
            buf = np.zeros(nbytes, dtype=np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=9)
            return status.count, buf

        _, (count, data) = run_world(machine, world, main)
        assert count == nbytes
        assert np.array_equal(data, pattern(nbytes))

    def test_status_reports_source_and_tag(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.zeros(4, np.uint8), 1, tag=42)
                return None
            status = yield from mpi.recv(
                np.zeros(4, np.uint8), source=MPI_ANY_SOURCE, tag=MPI_ANY_TAG
            )
            return status

        _, status = run_world(machine, world, main)
        assert status.source == 0 and status.tag == 42 and status.count == 4

    def test_recv_truncates_long_eager(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.full(100, 7, np.uint8), 1, tag=1)
                return None
            buf = np.zeros(10, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=1)
            return status.count, bytes(buf)

        _, (count, data) = run_world(machine, world, main)
        assert count == 10 and data == bytes([7]) * 10

    def test_recv_shorter_rendezvous_fetches_prefix(self):
        machine, world = two_rank_world()
        n = 300_000

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(pattern(n).copy(), 1, tag=1)
                return None
            buf = np.zeros(1000, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=1)
            return status.count, buf

        _, (count, data) = run_world(machine, world, main)
        assert count == 1000
        assert np.array_equal(data, pattern(n)[:1000])


class TestMessageOrdering:
    def test_same_envelope_fifo(self):
        machine, world = two_rank_world()
        count = 10

        def main(mpi, rank):
            if rank == 0:
                for i in range(count):
                    yield from mpi.send(np.full(8, i, np.uint8), 1, tag=3)
                return None
            seen = []
            buf = np.zeros(8, np.uint8)
            for _ in range(count):
                yield from mpi.recv(buf, source=0, tag=3)
                seen.append(int(buf[0]))
            return seen

        _, seen = run_world(machine, world, main)
        assert seen == list(range(count))

    def test_tag_selectivity_out_of_order_consumption(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                yield from mpi.send(np.full(4, 1, np.uint8), 1, tag=100)
                yield from mpi.send(np.full(4, 2, np.uint8), 1, tag=200)
                return None
            # consume tag 200 first even though it arrived second
            b200 = np.zeros(4, np.uint8)
            yield from mpi.recv(b200, source=0, tag=200)
            b100 = np.zeros(4, np.uint8)
            yield from mpi.recv(b100, source=0, tag=100)
            return int(b200[0]), int(b100[0])

        _, (v200, v100) = run_world(machine, world, main)
        assert (v200, v100) == (2, 1)

    def test_unexpected_then_posted_mix(self):
        machine, world = two_rank_world()
        count = 6

        def main(mpi, rank):
            if rank == 0:
                for i in range(count):
                    yield from mpi.send(np.full(16, 10 + i, np.uint8), 1, tag=7)
                return None
            # let several arrive unexpectedly first
            yield mpi.sim.timeout(100_000_000)
            seen = []
            buf = np.zeros(16, np.uint8)
            for _ in range(count):
                yield from mpi.recv(buf, source=0, tag=7)
                seen.append(int(buf[0]))
            return seen

        _, seen = run_world(machine, world, main)
        assert seen == [10 + i for i in range(count)]


class TestNonBlocking:
    def test_isend_irecv_complete(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            if rank == 0:
                req = mpi.isend(np.full(64, 3, np.uint8), 1, tag=2)
                yield from req.wait()
                return req.complete
            buf = np.zeros(64, np.uint8)
            req = mpi.irecv(buf, source=0, tag=2)
            status = yield from req.wait()
            return status.count, int(buf[0])

        done, (count, val) = run_world(machine, world, main)
        assert done and count == 64 and val == 3

    def test_multiple_outstanding_irecvs(self):
        machine, world = two_rank_world()
        count = 8

        def main(mpi, rank):
            if rank == 0:
                for i in range(count):
                    yield from mpi.send(np.full(32, i, np.uint8), 1, tag=i)
                return None
            bufs = [np.zeros(32, np.uint8) for _ in range(count)]
            reqs = [mpi.irecv(bufs[i], source=0, tag=i) for i in range(count)]
            for req in reqs:
                yield from req.wait()
            return [int(b[0]) for b in bufs]

        _, vals = run_world(machine, world, main)
        assert vals == list(range(count))

    def test_sendrecv_exchange(self):
        machine, world = two_rank_world()

        def main(mpi, rank):
            sendbuf = np.full(128, mpi.rank + 1, np.uint8)
            recvbuf = np.zeros(128, np.uint8)
            other = 1 - rank
            yield from mpi.sendrecv(sendbuf, other, recvbuf, source=other, tag=5)
            return int(recvbuf[0])

        a, b = run_world(machine, world, main)
        assert (a, b) == (2, 1)

    def test_uninitialized_use_rejected(self):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b])
        mpi = world[0]
        with pytest.raises(RuntimeError):
            next(mpi._send_body(np.zeros(4, np.uint8), 1, 0))


class TestFlavors:
    def test_mpich2_slower_than_mpich1(self):
        def latency(flavor):
            machine, world = two_rank_world(flavor=flavor)
            stamps = {}

            def main(mpi, rank):
                buf = np.zeros(1, np.uint8)
                if rank == 0:
                    stamps["t0"] = mpi.sim.now
                    yield from mpi.send(buf, 1)
                    yield from mpi.recv(buf, source=1)
                    stamps["t1"] = mpi.sim.now
                else:
                    yield from mpi.recv(buf, source=0)
                    yield from mpi.send(buf, 0)
                return None

            run_world(machine, world, main)
            return stamps["t1"] - stamps["t0"]

        assert latency(MPICH2) > latency(MPICH1)

    def test_eager_limit_configurable(self):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b], eager_limit=1024)
        sent = {}

        def main(mpi, rank):
            buf = np.zeros(4096, np.uint8)
            if rank == 0:
                yield from mpi.send(buf, 1, tag=1)
                sent["rndv_mes"] = mpi.proc.ni.table.match_list(2)
                return None
            yield from mpi.recv(buf, source=0, tag=1)
            return None

        run_world(machine, world, main)
        # 4 KB > 1 KB eager limit: rendezvous path used (kernel counters)
        assert a.kernel.counters["gets"] == 0  # get issued by receiver side
        assert b.kernel.counters["gets"] == 1


class TestManyRanks:
    def test_ring_pass_eight_ranks(self):
        machine = Machine(Torus3D((8, 1, 1), wrap=(True, False, False)))
        nodes = [machine.node(i) for i in range(8)]
        world = create_world(machine, nodes)

        def main(mpi, rank):
            token = np.zeros(8, np.uint8)
            nxt = (rank + 1) % mpi.size
            prev = (rank - 1) % mpi.size
            if rank == 0:
                token[:] = 99
                yield from mpi.send(token, nxt, tag=1)
                yield from mpi.recv(token, source=prev, tag=1)
                return int(token[0])
            yield from mpi.recv(token, source=prev, tag=1)
            token[0] += 1
            yield from mpi.send(token, nxt, tag=1)
            return int(token[0])

        results = run_world(machine, world, main)
        assert results[0] == 99 + 7
