"""Opteron and PowerPC models: traps, interrupts, coalescing.

Interrupt accounting carries a property-tested invariant: every
``raise_interrupt`` call increments exactly one of ``interrupts`` /
``interrupts_coalesced``, so ``interrupt_raises`` equals their sum in
every ordering of raises, CPU grants, holds, and handler deaths — on
both scheduler paths.  A pending handler killed before its CPU grant
must also unlatch the coalescing flag, or every later interrupt would
coalesce into the corpse forever.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.config import SeaStarConfig
from repro.hw.processors import Opteron, PowerPC440
from repro.sim import NS, US, Simulator


@pytest.fixture
def host(sim, config):
    return Opteron(sim, config)


@pytest.fixture
def ppc(sim, config):
    return PowerPC440(sim, config)


class TestTrap:
    def test_null_trap_costs_75ns(self, sim, host, config):
        def body():
            yield from host.trap()

        sim.process(body())
        sim.run()
        assert sim.now == config.trap_overhead == 75 * NS
        assert host.counters["traps"] == 1

    def test_trap_extra_cost(self, sim, host, config):
        def body():
            yield from host.trap(extra_cost=1000)

        sim.process(body())
        sim.run()
        assert sim.now == config.trap_overhead + 1000

    def test_syscall_heavier_than_trap(self, sim, host, config):
        assert config.linux_syscall_overhead > config.trap_overhead

        def body():
            yield from host.syscall()

        sim.process(body())
        sim.run()
        assert sim.now == config.linux_syscall_overhead
        assert host.counters["syscalls"] == 1


class TestInterrupts:
    def test_interrupt_costs_two_microseconds(self, sim, host, config):
        done = []

        def handler():
            done.append(sim.now)
            if False:
                yield

        host.raise_interrupt(handler)
        sim.run()
        assert done == [config.interrupt_overhead]
        assert config.interrupt_overhead == 2 * US
        assert host.counters["interrupts"] == 1

    def test_pending_interrupts_coalesce(self, sim, host):
        runs = []

        def handler():
            runs.append(sim.now)
            if False:
                yield

        host.raise_interrupt(handler)
        host.raise_interrupt(handler)
        host.raise_interrupt(handler)
        sim.run()
        assert len(runs) == 1
        assert host.counters["interrupts_coalesced"] == 2

    def test_interrupt_after_handler_started_is_delivered(self, sim, host, config):
        runs = []

        def handler():
            runs.append(sim.now)
            if False:
                yield

        def scenario():
            host.raise_interrupt(handler)
            # wait until the first handler is done, then raise again
            yield sim.timeout(3 * US)
            host.raise_interrupt(handler)

        sim.process(scenario())
        sim.run()
        assert len(runs) == 2

    def test_no_coalesce_flag(self, sim, host):
        runs = []

        def handler():
            runs.append(sim.now)
            if False:
                yield

        host.raise_interrupt(handler, coalesce=False)
        host.raise_interrupt(handler, coalesce=False)
        sim.run()
        assert len(runs) == 2

    def test_interrupt_preempts_queued_app_work(self, sim, host):
        order = []

        def app():
            yield from host.execute(10 * NS)
            order.append("app")

        def handler():
            order.append("irq")
            if False:
                yield

        def scenario():
            req = host.request()
            yield req
            sim.process(app())
            host.raise_interrupt(handler)
            yield sim.timeout(1)
            host.release(req)

        sim.process(scenario())
        sim.run()
        assert order[0] == "irq"

    def test_handler_body_charges_cpu(self, sim, host, config):
        def handler():
            yield from host.charge(500 * NS)

        host.raise_interrupt(handler)
        sim.run()
        assert host.busy_time == config.interrupt_overhead + 500 * NS


_irq_ops = st.one_of(
    st.tuples(st.just("raise"), st.integers(0, 2000), st.booleans()),
    st.tuples(st.just("advance"), st.integers(0, 3 * US)),
    st.tuples(st.just("hold"), st.integers(1, 2 * US)),
    st.tuples(st.just("kill"), st.integers(0, 5)),
)


class TestInterruptAccounting:
    def test_killed_pending_interrupt_unlatches_coalescing(self):
        """Regression: a handler killed before its CPU grant used to leave
        ``_interrupt_pending`` latched True, silently coalescing every
        future interrupt away."""
        sim = Simulator()
        host = Opteron(sim, SeaStarConfig())
        runs = []

        def handler():
            runs.append(sim.now)
            if False:
                yield

        def scenario():
            # occupy the CPU so the interrupt body blocks pre-grant
            req = host.request()
            yield req
            victim = host.raise_interrupt(handler)
            yield sim.timeout(1)
            victim.interrupt("chaos")
            victim.defuse()  # the chaos owns the resulting failure
            yield sim.timeout(1)
            host.release(req)
            # the next raise must be delivered, not coalesced
            host.raise_interrupt(handler)

        sim.process(scenario())
        sim.run()
        assert len(runs) == 1
        assert host.counters["interrupts"] == 2
        assert host.counters["interrupts_coalesced"] == 0
        assert host.counters["interrupt_raises"] == 2

    @pytest.mark.property
    @pytest.mark.parametrize(
        "direct_resume", [True, False], ids=["fastpath", "legacy"]
    )
    @given(ops=st.lists(_irq_ops, min_size=1, max_size=20))
    def test_raises_conserved_in_every_ordering(self, direct_resume, ops):
        sim = Simulator(direct_resume=direct_resume)
        host = Opteron(sim, SeaStarConfig())
        raises = 0
        handled = []
        spawned = []

        def mk_handler(cost):
            def handler():
                if cost:
                    yield from host.charge(cost)
                handled.append(sim.now)
            return handler

        def driver():
            nonlocal raises
            for op in ops:
                kind = op[0]
                if kind == "raise":
                    proc = host.raise_interrupt(
                        mk_handler(op[1]), coalesce=op[2]
                    )
                    raises += 1
                    if proc is not None:
                        spawned.append(proc)
                elif kind == "advance":
                    if op[1]:
                        yield sim.timeout(op[1])
                elif kind == "hold":
                    req = host.request()
                    yield req
                    yield sim.timeout(op[1])
                    host.release(req)
                else:  # kill: chaos takes out a blocked interrupt body
                    victims = [
                        p for p in spawned
                        if p.is_alive and p._waiting_on is not None
                    ]
                    if victims:
                        victim = victims[op[1] % len(victims)]
                        victim.interrupt("chaos")
                        victim.defuse()

        sim.process(driver())
        sim.run()
        counts = host.counters
        assert counts["interrupt_raises"] == raises
        assert counts["interrupt_raises"] == (
            counts["interrupts"] + counts["interrupts_coalesced"]
        ), "conservation must hold in every ordering"

        # whatever the chaos did, the mechanism must still be live:
        # one more raise gets delivered, never coalesced into a corpse
        before = len(handled)
        host.raise_interrupt(mk_handler(0))
        sim.run()
        assert len(handled) == before + 1


class TestPowerPC:
    def test_handler_includes_dispatch_cost(self, sim, ppc, config):
        def body():
            yield from ppc.handler(1000)

        sim.process(body())
        sim.run()
        assert sim.now == config.fw_poll_dispatch + 1000

    def test_clock_rate(self, sim, ppc):
        # 500 MHz: one cycle = 2 ns
        assert ppc.cycles(1) == 2 * NS

    def test_single_threaded(self, sim, ppc):
        """Firmware handlers run to completion, serialized."""
        spans = []

        def handler(tag, cost):
            req = ppc.request()
            yield req
            start = sim.now
            yield sim.timeout(cost)
            ppc.release(req)
            spans.append((tag, start, sim.now))

        sim.process(handler("a", 100))
        sim.process(handler("b", 100))
        sim.run()
        assert spans[0][2] <= spans[1][1]
