"""Go-back-N internals: duplicates, history bounds, NAK edge cases."""

import numpy as np
import pytest

from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import EventKind, MDOptions
from repro.sim import US

from .conftest import drain_events, make_target, run_to_completion

TINY = SeaStarConfig(
    generic_rx_pendings=2,
    generic_tx_pendings=32,
    num_generic_pendings=34,
    gobackn_backoff=3 * US,
)


def run_burst(machine, na, nb, messages, nbytes=12):
    pa, pb = na.create_process(), nb.create_process()
    got = []

    def receiver(proc):
        eq, me, md, buf = yield from make_target(
            proc,
            size=max(nbytes, 1),
            eq_size=512,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
        )
        for _ in range(messages):
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            got.append(evs[-1].hdr_data)
        return got

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(512)
        md = yield from api.PtlMDBind(proc.alloc(max(nbytes, 1)), eq=eq)
        for i in range(messages):
            yield from api.PtlPut(md, target, 4, 0x1234, hdr_data=i, length=nbytes)
        for _ in range(messages):
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    run_to_completion(machine, hr, hs)
    return got


class TestSequencing:
    def test_no_duplicate_deliveries_under_recovery(self):
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        got = run_burst(machine, na, nb, 25)
        assert got == list(range(25))
        assert nb.firmware.counters["duplicates"] == 0 or got == list(range(25))

    def test_wire_sequences_advance_per_destination(self):
        machine, na, nb = build_pair(policy=ExhaustionPolicy.GO_BACK_N)
        run_burst(machine, na, nb, 5)
        src = na.firmware.control.lookup_source(nb.node_id)
        assert src is not None
        assert src.next_tx_seq == 5
        peer = nb.firmware.control.lookup_source(na.node_id)
        assert peer.expect_rx_seq == 5

    def test_recovery_clears_rejecting_state(self):
        machine, na, nb = build_pair(TINY, policy=ExhaustionPolicy.GO_BACK_N)
        run_burst(machine, na, nb, 20)
        peer = nb.firmware.control.lookup_source(na.node_id)
        assert peer.rejecting_from_seq is None


class TestHistoryBounds:
    def test_history_is_bounded(self):
        machine, na, nb = build_pair(policy=ExhaustionPolicy.GO_BACK_N)
        run_burst(machine, na, nb, 40, nbytes=8)
        # history ring holds at most 1024 records
        assert len(na.firmware._tx_history) <= 1024
        assert len(na.firmware._history_order) <= 1024

    def test_history_evicts_oldest(self):
        cfg = SeaStarConfig()
        machine, na, nb = build_pair(cfg, policy=ExhaustionPolicy.GO_BACK_N)
        fw = na.firmware
        # fabricate 1100 records through the private recorder
        from repro.fw.firmware import RetxRecord
        from repro.portals import MsgType, PortalsHeader, ProcessId

        for seq in range(1100):
            hdr = PortalsHeader(
                op=MsgType.PUT, src=ProcessId(0, 1), dst=ProcessId(1, 1)
            )
            fw._record_history(
                RetxRecord(
                    seq=seq, dst_node=1, header=hdr, payload=None,
                    proc=fw.generic, lower=None, host_ctx=None,
                )
            )
        assert len(fw._tx_history) == 1024
        assert (1, 0) not in fw._tx_history        # oldest evicted
        assert (1, 1099) in fw._tx_history         # newest retained


class TestNakEdgeCases:
    def test_unmatched_nak_counted_and_ignored(self):
        machine, na, nb = build_pair(policy=ExhaustionPolicy.GO_BACK_N)
        pa = na.create_process()
        # forge a NAK for a message node 0 never sent
        def forge(proc):
            fw = nb.firmware
            ok = fw._send_control(
                op=__import__("repro.portals.constants", fromlist=["MsgType"]).MsgType.NAK,
                dst_node=na.node_id,
                dst_pid=0,
                initiator_ctx=None,
                meta={"nak_seq": 999, "nak_node": nb.node_id},
            )
            assert ok
            yield proc.sim.timeout(100 * US)
            return True

        handle = pa.spawn(forge)
        run_to_completion(machine, handle)
        assert na.firmware.counters["nak_unmatched"] == 1
        assert na.firmware.counters["retransmits"] == 0

    def test_panic_mode_keeps_no_history(self):
        machine, na, nb = build_pair()  # PANIC default
        run_burst(machine, na, nb, 10, nbytes=8)
        assert len(na.firmware._tx_history) == 0
