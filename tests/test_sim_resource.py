"""Resource and CPU primitives: mutual exclusion, priorities, accounting."""

import pytest

from repro.sim import CPU, Resource, Simulator


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_serializes_at_capacity_one(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker(tag):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(100)
            res.release(req)
            spans.append((tag, start, sim.now))

        for tag in "ab":
            sim.process(worker(tag))
        sim.run()
        assert spans == [("a", 0, 100), ("b", 100, 200)]

    def test_capacity_allows_parallelism(self, sim):
        res = Resource(sim, capacity=2)
        ends = []

        def worker():
            req = res.request()
            yield req
            yield sim.timeout(100)
            res.release(req)
            ends.append(sim.now)

        for _ in range(2):
            sim.process(worker())
        sim.run()
        assert ends == [100, 100]

    def test_priority_order(self, sim):
        res = Resource(sim)
        order = []

        def worker(tag, prio):
            req = res.request(priority=prio)
            yield req
            yield sim.timeout(10)
            res.release(req)
            order.append(tag)

        def spawn_later():
            # occupy the resource first so later requests queue
            req = res.request()
            yield req
            sim.process(worker("low", 5))
            sim.process(worker("high", -5))
            sim.process(worker("mid", 0))
            yield sim.timeout(1)
            res.release(req)

        sim.process(spawn_later())
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_release_foreign_request_rejected(self, sim):
        r1, r2 = Resource(sim), Resource(sim)
        req = r1.request()
        with pytest.raises(ValueError):
            r2.release(req)

    def test_release_idle_rejected(self, sim):
        res = Resource(sim)
        req = res.request()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_cancel_queued_request(self, sim):
        res = Resource(sim)
        first = res.request()
        second = res.request()
        assert res.queued == 1
        res.release(second)  # cancel while queued
        assert res.queued == 0
        res.release(first)

    def test_use_helper(self, sim):
        res = Resource(sim)
        done = []

        def worker():
            yield from res.use(50)
            done.append(sim.now)

        sim.process(worker())
        sim.run()
        assert done == [50]
        assert res.in_use == 0


class TestCPU:
    def test_busy_time_accounting(self, sim):
        cpu = CPU(sim, clock_hz=1e9)

        def worker():
            yield from cpu.execute(500)
            yield from cpu.execute(300)

        sim.process(worker())
        sim.run()
        assert cpu.busy_time == 800
        assert cpu.utilization() == 1.0

    def test_utilization_fraction(self, sim):
        cpu = CPU(sim)

        def worker():
            yield from cpu.execute(100)
            yield sim.timeout(300)

        sim.process(worker())
        sim.run()
        assert cpu.utilization() == pytest.approx(0.25)

    def test_utilization_empty(self, sim):
        cpu = CPU(sim)
        assert cpu.utilization() == 0.0

    def test_cycles_conversion(self, sim):
        cpu = CPU(sim, clock_hz=5e8)  # 2 ns per cycle
        assert cpu.cycles(1) == 2000
        assert cpu.cycles(100) == 200_000

    def test_charge_without_acquisition(self, sim):
        cpu = CPU(sim)

        def holder():
            req = cpu.request()
            yield req
            yield from cpu.charge(400)  # must not deadlock
            cpu.release(req)

        p = sim.process(holder())
        sim.run()
        assert p.triggered and p.ok
        assert cpu.busy_time == 400

    def test_interrupt_priority_beats_app(self, sim):
        cpu = CPU(sim)
        order = []

        def app(tag):
            yield from cpu.execute(100, priority=CPU.PRIO_APP)
            order.append(tag)

        def irq():
            yield from cpu.execute(10, priority=CPU.PRIO_INTERRUPT)
            order.append("irq")

        def scenario():
            req = cpu.request()
            yield req
            sim.process(app("app1"))
            sim.process(app("app2"))
            sim.process(irq())
            yield sim.timeout(5)
            cpu.release(req)

        sim.process(scenario())
        sim.run()
        assert order[0] == "irq"
