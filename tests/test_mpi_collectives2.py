"""Scatter, allgather, alltoall."""

import numpy as np
import pytest

from repro.machine.builder import Machine
from repro.mpi import allgather, alltoall, create_world, run_world, scatter
from repro.net import Torus3D


def world_of(n):
    machine = Machine(Torus3D((n, 1, 1), wrap=(True, False, False)))
    nodes = [machine.node(i) for i in range(n)]
    return machine, create_world(machine, nodes)


class TestScatter:
    @pytest.mark.parametrize("n,root", [(2, 0), (4, 1), (6, 5)])
    def test_each_rank_gets_its_slice(self, n, root):
        machine, world = world_of(n)
        chunk = 64

        def main(mpi, rank):
            send = None
            if rank == root:
                send = np.concatenate(
                    [np.full(chunk, r + 1, np.uint8) for r in range(n)]
                )
            recv = np.zeros(chunk, np.uint8)
            yield from scatter(mpi, send, recv, root=root)
            return int(recv[0]), int(recv[-1])

        results = run_world(machine, world, main)
        assert results == [(r + 1, r + 1) for r in range(n)]

    def test_undersized_sendbuf_rejected(self):
        machine, world = world_of(2)

        def main(mpi, rank):
            recv = np.zeros(8, np.uint8)
            if rank == 0:
                with pytest.raises(ValueError):
                    yield from scatter(mpi, np.zeros(8, np.uint8), recv, root=0)
                yield from scatter(mpi, np.zeros(16, np.uint8), recv, root=0)
            else:
                yield from scatter(mpi, None, recv, root=0)
            return None

        run_world(machine, world, main)


class TestAllgather:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
    def test_every_rank_collects_all(self, n):
        machine, world = world_of(n)
        chunk = 32

        def main(mpi, rank):
            send = np.full(chunk, rank + 10, np.uint8)
            recv = np.zeros(chunk * n, np.uint8)
            yield from allgather(mpi, send, recv)
            return bytes(recv)

        results = run_world(machine, world, main)
        expected = b"".join(bytes([r + 10]) * chunk for r in range(n))
        assert all(r == expected for r in results)

    def test_undersized_recv_rejected(self):
        machine, world = world_of(2)

        def main(mpi, rank):
            with pytest.raises(ValueError):
                yield from allgather(
                    mpi, np.zeros(8, np.uint8), np.zeros(8, np.uint8)
                )
            if False:
                yield
            return None

        run_world(machine, world, main)


class TestAlltoall:
    @pytest.mark.parametrize("n", [2, 4, 8])  # powers of two: XOR schedule
    def test_personalized_exchange_power_of_two(self, n):
        machine, world = world_of(n)
        chunk = 16

        def main(mpi, rank):
            # block j carries value 100 + rank * 16 + j
            send = np.concatenate(
                [np.full(chunk, (100 + rank * 16 + j) % 256, np.uint8)
                 for j in range(n)]
            )
            recv = np.zeros(chunk * n, np.uint8)
            yield from alltoall(mpi, send, recv)
            return [int(recv[j * chunk]) for j in range(n)]

        results = run_world(machine, world, main)
        for rank, got in enumerate(results):
            # slot j on rank r must hold rank j's block r
            assert got == [(100 + j * 16 + rank) % 256 for j in range(n)]

    @pytest.mark.parametrize("n", [3, 5])  # non-powers: ring schedule
    def test_personalized_exchange_ring(self, n):
        machine, world = world_of(n)
        chunk = 16

        def main(mpi, rank):
            send = np.concatenate(
                [np.full(chunk, (100 + rank * 16 + j) % 256, np.uint8)
                 for j in range(n)]
            )
            recv = np.zeros(chunk * n, np.uint8)
            yield from alltoall(mpi, send, recv)
            return [int(recv[j * chunk]) for j in range(n)]

        results = run_world(machine, world, main)
        for rank, got in enumerate(results):
            assert got == [(100 + j * 16 + rank) % 256 for j in range(n)]
