"""Chaos campaigns: spec generation, per-run invariants, SLO
aggregation, the CLI, and the flagship acceptance property — a
50-plan campaign through the crash/hang-tolerant pool is byte-identical
to the same campaign run serially and undisturbed.
"""

import json

import pytest

from repro.faults.campaign import (
    FAULT_CLASSES,
    CampaignConfig,
    CampaignRunSpec,
    campaign_document,
    clean_baseline_ps,
    format_campaign_report,
    generate_specs,
    run_campaign,
    run_one_plan,
    spec_for_plan,
)
from repro.faults.plan import FaultPlan, named_plan
from repro.metrics import canonical_json


def _campaign_view(doc):
    """The comparable half of a campaign report: everything except
    ``meta`` (which carries workers/degradations and may differ) and
    the host-side ``pool.*`` lifecycle counters (spawns/crashes/retries
    are facts about *executing* the campaign, not about the simulated
    faults, so an injected worker kill legitimately changes them)."""
    counters = {
        k: v for k, v in doc["counters"].items() if not k.startswith("pool.")
    }
    return canonical_json({"counters": counters, "campaign": doc["campaign"]})


class TestConfigAndSpecs:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="at least one run"):
            CampaignConfig(runs=0)
        with pytest.raises(ValueError, match="unknown fault class"):
            CampaignConfig(classes=("drop", "meteor"))
        with pytest.raises(ValueError, match="at least one fault class"):
            CampaignConfig(classes=())

    def test_specs_are_deterministic(self):
        config = CampaignConfig(runs=14, seed=9)
        assert generate_specs(config) == generate_specs(config)

    def test_specs_round_robin_all_classes(self):
        config = CampaignConfig(runs=len(FAULT_CLASSES) * 2, seed=0)
        specs = generate_specs(config)
        by_class = {}
        for s in specs:
            by_class[s.fault_class] = by_class.get(s.fault_class, 0) + 1
        assert by_class == {cls: 2 for cls in FAULT_CLASSES}

    def test_different_seed_different_plans(self):
        a = generate_specs(CampaignConfig(runs=3, seed=1))
        b = generate_specs(CampaignConfig(runs=3, seed=2))
        assert [s.plan for s in a] != [s.plan for s in b]

    def test_terminal_classes_carry_fail_at(self):
        specs = generate_specs(CampaignConfig(runs=len(FAULT_CLASSES)))
        for s in specs:
            if s.fault_class in ("kill", "node-death"):
                assert s.fail_at is not None and s.fail_at > 0
            else:
                assert s.fail_at is None


class TestSpecForPlan:
    def test_node_death_plan_gets_death_exchange(self):
        spec = spec_for_plan("node-death", named_plan("node-death"))
        assert spec.fault_class == "node-death"
        assert spec.fail_at == named_plan("node-death").node_deaths[0].at

    def test_link_kill_plan_gets_death_exchange(self):
        spec = spec_for_plan("link-kill", named_plan("link-kill"))
        assert spec.fault_class == "kill"
        assert spec.fail_at is not None

    def test_recoverable_plan_keeps_its_name(self):
        spec = spec_for_plan("drop-1pct", named_plan("drop-1pct"))
        assert spec.fault_class == "drop-1pct"
        assert spec.fail_at is None


class TestSingleRuns:
    """One run per workload family; full class coverage lives in the
    acceptance campaign below."""

    def test_recoverable_run_passes_invariants(self):
        spec = CampaignRunSpec(
            run_id="r0",
            fault_class="drop",
            plan=named_plan("drop-1pct", seed=5),
            baseline_ps=clean_baseline_ps(),
        )
        record = run_one_plan(spec)
        assert record["ok"], record
        assert record["invariants"]["payload_integrity"]
        assert record["recovery_ps"] is not None
        assert record["recovery_ps"] <= record["recovery_bound_ps"]

    def test_node_death_run_detects_and_resolves(self):
        plan = named_plan("node-death", seed=5)
        spec = CampaignRunSpec(
            run_id="r1",
            fault_class="node-death",
            plan=plan,
            fail_at=plan.node_deaths[0].at,
        )
        record = run_one_plan(spec)
        assert record["ok"], record
        assert record["invariants"]["death_detected"]
        assert record["invariants"]["exactly_once"]
        # some messages died with the node, some landed before it did
        assert record["delivered"] + record["failed"] == 6
        assert record["failed"] >= 1
        assert record["detect_ps"] is not None
        assert record["counters"]["peer_deaths_detected"] == 1


class TestAggregation:
    def _record(self, run_id, cls, ok=True, mttr=1000):
        return {
            "run_id": run_id,
            "class": cls,
            "invariants": {"exactly_once": ok},
            "ok": ok,
            "recovery_ps": mttr,
            "mttr_ps": mttr,
            "detect_ps": None,
            "counters": {"retransmits": 2},
            "injected": {"chunks_dropped": 3},
        }

    def test_document_aggregates_counters_and_slo(self):
        runs = [
            self._record("run000-drop", "drop", mttr=100),
            self._record("run001-drop", "drop", mttr=300),
            self._record("run002-kill", "kill", ok=False, mttr=900),
        ]
        doc = campaign_document(runs, meta={"seed": 4})
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["counters"]["recovery.retransmits"] == 6
        assert doc["counters"]["injected.chunks_dropped"] == 9
        camp = doc["campaign"]
        assert camp["total_runs"] == 3 and camp["total_passed"] == 2
        assert camp["invariants"]["exactly_once"] == {"pass": 2, "fail": 1}
        assert camp["slo"]["drop"]["passed"] == 2
        assert camp["slo"]["drop"]["mttr_ps"]["min"] == 100
        assert camp["slo"]["drop"]["mttr_ps"]["max"] == 300
        assert camp["slo"]["kill"]["invariant_pass_rate"] == 0.0
        # runs come back sorted for stable serialization
        assert [r["run_id"] for r in camp["runs"]] == sorted(
            r["run_id"] for r in runs
        )

    def test_report_renders(self):
        doc = campaign_document(
            [self._record("run000-drop", "drop")],
            meta={"seed": 0, "workers": 1, "degradations": [
                {"task": "run000-drop", "event": "crash", "attempt": 0}
            ]},
        )
        text = format_campaign_report(doc)
        assert "1/1 passed" in text
        assert "exactly_once" in text
        assert "executor degradations survived: 1" in text


class TestAcceptanceCampaign:
    """The PR's flagship property: >= 50 plans, every fault class, run
    through the self-healing pool while the harness SIGKILLs one worker
    attempt and hangs another — and the report's simulated content is
    byte-identical to a serial, undisturbed run."""

    RUNS = 50

    def test_pool_campaign_byte_identical_under_kill_and_hang(
        self, monkeypatch
    ):
        from repro.benchrunner.pool import TEST_HANG_ENV, TEST_KILL_ENV

        config = CampaignConfig(runs=self.RUNS, seed=7, workers=1)
        serial = run_campaign(config)
        camp = serial["campaign"]
        assert camp["total_runs"] == self.RUNS
        assert camp["total_passed"] == self.RUNS, [
            r["run_id"] for r in camp["runs"] if not r["ok"]
        ]
        assert set(camp["slo"]) == set(FAULT_CLASSES)

        monkeypatch.setenv(TEST_KILL_ENV, "run001")
        monkeypatch.setenv(TEST_HANG_ENV, "run004")
        pooled_config = CampaignConfig(
            runs=self.RUNS, seed=7, workers=2, shard_timeout_s=8.0
        )
        pooled = run_campaign(pooled_config)

        assert _campaign_view(serial) == _campaign_view(pooled)
        events = {
            d["task"]: d["event"] for d in pooled["meta"]["degradations"]
        }
        assert events["run001-corrupt"] == "crash"
        assert events["run004-squeeze"] == "timeout"
        # ...and the same degradations as monotonic counters, so chaos
        # CI can gate on them without scraping logs
        assert pooled["counters"]["pool.crashes"] >= 1
        assert pooled["counters"]["pool.hang_kills"] >= 1
        assert pooled["counters"]["pool.retries"] >= 2
        assert serial["counters"]["pool.crashes"] == 0


class TestCampaignCli:
    def test_campaign_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "campaign.json"
        rc = main([
            "chaos", "campaign", "--runs", "3", "--seed", "2",
            "--classes", "drop,fw-crash,node-death",
            "--quiet", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["meta"]["kind"] == "chaos-campaign"
        assert doc["campaign"]["total_passed"] == 3
        text = capsys.readouterr().out
        assert "chaos campaign report" in text

    def test_campaign_rejects_unknown_class(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["chaos", "campaign", "--classes", "meteor", "--quiet"])

    def test_single_plan_json_shares_schema(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "plan.json"
        rc = main([
            "chaos", "--plan", "fw-crash", "--fast",
            "--max-bytes", "1024", "--json", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["meta"]["kind"] == "chaos-plan"
        run = doc["campaign"]["runs"][0]
        assert run["run_id"] == "plan-fw-crash"
        assert run["ok"]
        assert doc["counters"]["recovery.fw_crashes"] == 1

    def test_prometheus_renderer_accepts_campaign_doc(self):
        from repro.metrics import to_prometheus_text

        doc = campaign_document(
            [
                {
                    "run_id": "r0",
                    "class": "drop",
                    "invariants": {"exactly_once": True},
                    "ok": True,
                    "recovery_ps": 5,
                    "mttr_ps": 5,
                    "detect_ps": None,
                    "counters": {"retransmits": 2},
                    "injected": {"chunks_dropped": 1},
                }
            ]
        )
        text = to_prometheus_text(doc)
        assert "recovery" in text and "retransmits" in text


class TestNoopPlanStaysFree:
    def test_clean_machine_has_no_campaign_state(self):
        from repro.hw.config import DEFAULT_CONFIG
        from repro.machine.builder import build_pair

        cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
        machine, na, nb = build_pair(cfg, fault_plan=FaultPlan.none())
        assert machine.injector is None
        for node in (na, nb):
            fw = node.firmware
            assert fw._peer_timeout is None
            assert not fw._peer_watches
            assert not fw._peer_dead
            assert not fw.peer_death_times
            assert not fw._dead and fw._crash_until is None
