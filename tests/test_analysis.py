"""Analysis helpers: peaks, half-bandwidth interpolation, paper numbers."""

import pytest

from repro.analysis import (
    PAPER,
    half_bandwidth_point,
    latency_at,
    monotone_fraction,
    peak_bandwidth,
)
from repro.netpipe.runner import Measurement, Series
from repro.sim import SEC, US


def series_from(points):
    """points: list of (nbytes, bandwidth MB/s) -> synthetic stream series."""
    ms = []
    for nbytes, bw in points:
        # bandwidth = bytes_moved / total; bytes = nbytes, solve total
        total = round(nbytes / (bw * 1024 * 1024) * SEC)
        ms.append(
            Measurement("stream", nbytes, total_ps=total, repeats=1, bytes_moved=nbytes)
        )
    return Series(module="x", pattern="stream", points=ms)


class TestPeak:
    def test_peak_found(self):
        s = series_from([(1, 10), (100, 500), (1000, 900)])
        assert peak_bandwidth(s) == pytest.approx(900, rel=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            peak_bandwidth(Series("x", "stream", []))


class TestHalfBandwidth:
    def test_exact_hit(self):
        s = series_from([(100, 100), (200, 500), (400, 1000)])
        assert half_bandwidth_point(s) == pytest.approx(200, rel=0.05)

    def test_interpolation_between_points(self):
        s = series_from([(100, 0.001), (300, 1000)])
        point = half_bandwidth_point(s)
        assert 100 < point <= 300

    def test_first_point_already_half(self):
        s = series_from([(64, 600), (128, 1000)])
        assert half_bandwidth_point(s) == 64

    def test_explicit_peak(self):
        s = series_from([(100, 100), (200, 400)])
        assert half_bandwidth_point(s, peak=600) != half_bandwidth_point(s)

    def test_never_reaching_half_raises(self):
        s = series_from([(100, 100), (200, 150)])
        with pytest.raises(ValueError):
            half_bandwidth_point(s, peak=1000)


class TestLatencyAt:
    def test_picks_first_size_at_least(self):
        ms = [
            Measurement("pingpong", n, total_ps=2 * n * US, repeats=1, bytes_moved=n)
            for n in (1, 8, 64)
        ]
        s = Series("x", "pingpong", ms)
        assert latency_at(s, 1) == pytest.approx(1.0)
        assert latency_at(s, 5) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            latency_at(s, 1000)


class TestMonotone:
    def test_perfectly_monotone(self):
        assert monotone_fraction([1, 2, 3, 4]) == 1.0

    def test_tolerates_tiny_jitter(self):
        assert monotone_fraction([100, 99.5, 101]) == 1.0

    def test_counts_big_drops(self):
        assert monotone_fraction([100, 50, 100]) == pytest.approx(0.5)

    def test_short_series(self):
        assert monotone_fraction([5]) == 1.0


class TestPaperNumbers:
    def test_figure4_ordering(self):
        assert (
            PAPER.put_latency_us
            < PAPER.get_latency_us
            < PAPER.mpich1_latency_us
            < PAPER.mpich2_latency_us
        )

    def test_bidir_roughly_double_unidir(self):
        assert PAPER.put_bidir_peak_mb_s / PAPER.put_peak_mb_s == pytest.approx(
            2.0, rel=0.01
        )

    def test_half_bandwidth_points(self):
        assert PAPER.half_bw_stream_bytes < PAPER.half_bw_pingpong_bytes
