"""Accelerated mode: full data-movement parity with generic mode.

The accelerated implementation must preserve Portals semantics exactly —
matching, truncation, offsets, acks, gets, drops — while eliminating
host interrupts.  These tests run the same scenarios as the generic
data-movement suite on accelerated processes.
"""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.mpi import MPICH1, create_world, run_world
from repro.portals import (
    PTL_ACK_REQ,
    EventKind,
    MDOptions,
    NIFailType,
)

from .conftest import drain_events, fill_pattern, make_target, pattern, run_to_completion

PT = 4
BITS = 0x1234


def run_accel_pair(receiver_body, sender_body):
    machine, na, nb = build_pair()
    pa = na.create_process(accelerated=True)
    pb = nb.create_process(accelerated=True)
    hr = pb.spawn(receiver_body)
    hs = pa.spawn(sender_body, pb.id)
    values = run_to_completion(machine, hr, hs)
    return values, (na, nb)


class TestAcceleratedPut:
    @pytest.mark.parametrize("nbytes", [0, 1, 12, 13, 4096, 100_000])
    def test_payload_intact(self, nbytes):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=max(nbytes, 1))
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return evs[-1].mlength, bytes(buf[:nbytes])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(max(nbytes, 1))
            fill_pattern(buf)
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(buf, eq=eq)
            yield from api.PtlPut(md, target, PT, BITS, length=nbytes)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        values, _nodes = run_accel_pair(receiver, sender)
        mlength, data = values[0]
        assert mlength == nbytes
        assert data == bytes(pattern(max(nbytes, 1))[:nbytes])

    def test_no_interrupts_anywhere(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(64), eq=eq)
            yield from api.PtlPut(md, target, PT, BITS)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        _, (na, nb) = run_accel_pair(receiver, sender)
        assert na.opteron.counters["interrupts"] == 0
        assert nb.opteron.counters["interrupts"] == 0

    def test_truncation(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=10)
            evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return evs[-1].mlength, evs[-1].rlength

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(1000))
            yield from api.PtlPut(md, target, PT, BITS)
            yield proc.sim.timeout(100_000_000)
            return True

        values, _nodes = run_accel_pair(receiver, sender)
        mlength, rlength = values[0]
        assert mlength == 10 and rlength == 1000

    def test_unmatched_drops_counted_by_firmware(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, match_bits=0x777)
            yield proc.sim.timeout(100_000_000)
            return True

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(100))
            yield from api.PtlPut(md, target, PT, 0x888)
            yield proc.sim.timeout(100_000_000)
            return True

        _, (na, nb) = run_accel_pair(receiver, sender)
        assert nb.firmware.counters["accel_drops"] == 1

    def test_ack_round_trip(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=32)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            yield from api.PtlPut(md, target, PT, BITS, ack_req=PTL_ACK_REQ)
            evs = yield from drain_events(api, eq, want=[EventKind.ACK])
            ack = [e for e in evs if e.kind is EventKind.ACK][0]
            return ack.mlength

        values, (na, nb) = run_accel_pair(receiver, sender)
        assert values[1] == 8
        # ack delivery never interrupted anyone
        assert na.opteron.counters["interrupts"] == 0


class TestAcceleratedGet:
    @pytest.mark.parametrize("nbytes", [1, 12, 4096, 60_000])
    def test_get_fetches(self, nbytes):
        def target_side(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=nbytes,
                options=MDOptions.OP_GET | MDOptions.MANAGE_REMOTE,
            )
            fill_pattern(buf)
            yield from drain_events(proc.api, eq, want=[EventKind.GET_END])
            return True

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            buf = proc.alloc(nbytes)
            md = yield from api.PtlMDBind(buf, eq=eq)
            yield from api.PtlGet(md, target, PT, BITS)
            yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            return bytes(buf)

        values, _nodes = run_accel_pair(target_side, initiator)
        data = values[1]
        assert data == bytes(pattern(nbytes))

    def test_failed_get_reports_dropped(self):
        def target_side(proc):
            yield proc.sim.timeout(100_000_000)
            return True

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(64), eq=eq)
            yield from api.PtlGet(md, target, PT, BITS)
            evs = yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            end = [e for e in evs if e.kind is EventKind.REPLY_END][0]
            return end.ni_fail_type

        values, _nodes = run_accel_pair(target_side, initiator)
        assert values[1] is NIFailType.DROPPED


class TestAcceleratedMPI:
    def test_mpi_over_accelerated_processes(self):
        machine, a, b = build_pair()
        world = create_world(machine, [a, b], flavor=MPICH1, accelerated=True)

        def main(mpi, rank):
            n = 512
            if rank == 0:
                yield from mpi.send(pattern(n).copy(), 1, tag=5)
                return None
            buf = np.zeros(n, np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=5)
            return status.count, bytes(buf)

        _, (count, data) = run_world(machine, world, main)
        assert count == 512 and data == bytes(pattern(512))
        assert a.opteron.counters["interrupts"] == 0
        assert b.opteron.counters["interrupts"] == 0

    def test_accelerated_mpi_latency_near_xt3_target(self):
        """With offload, MPI small-message latency approaches the XT3's
        2 us nearest-neighbor requirement (paper section 1/3.3)."""

        def mpi_latency(accelerated):
            machine, a, b = build_pair()
            world = create_world(machine, [a, b], accelerated=accelerated)
            stamps = {}

            def main(mpi, rank):
                buf = np.zeros(1, np.uint8)
                if rank == 0:
                    stamps["t0"] = mpi.sim.now
                    yield from mpi.send(buf, 1)
                    yield from mpi.recv(buf, source=1)
                    stamps["t1"] = mpi.sim.now
                else:
                    yield from mpi.recv(buf, source=0)
                    yield from mpi.send(buf, 0)
                return None

            run_world(machine, world, main)
            return (stamps["t1"] - stamps["t0"]) / 2 / 1_000_000  # us

        accel = mpi_latency(True)
        generic = mpi_latency(False)
        assert accel < generic / 1.5
        assert accel < 6.0  # library costs dominate once interrupts go
