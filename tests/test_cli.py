"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_netpipe_defaults(self):
        args = build_parser().parse_args(["netpipe"])
        assert args.module == "put" and args.pattern == "pingpong"

    def test_bad_module_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["netpipe", "--module", "smoke"])


class TestCommands:
    def test_netpipe_fast_put(self, capsys):
        rc = main(
            [
                "netpipe",
                "--fast",
                "--max-bytes",
                "1024",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "module=put" in out
        assert "1024" in out

    def test_netpipe_stream_mpich(self, capsys):
        rc = main(
            [
                "netpipe",
                "--module",
                "mpich1",
                "--pattern",
                "stream",
                "--fast",
                "--max-bytes",
                "4096",
            ]
        )
        assert rc == 0
        assert "mpich-1.2.6" in capsys.readouterr().out

    def test_netpipe_accelerated(self, capsys):
        rc = main(
            ["netpipe", "--accelerated", "--fast", "--max-bytes", "256"]
        )
        assert rc == 0

    def test_netpipe_plot(self, capsys):
        rc = main(
            ["netpipe", "--fast", "--max-bytes", "1024", "--plot"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out and "|" in out  # chart axes rendered

    def test_accelerated_mpi_rejected(self):
        with pytest.raises(SystemExit):
            main(["netpipe", "--module", "mpich1", "--accelerated"])

    def test_latency_reports_all_modules(self, capsys):
        rc = main(["latency"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("put", "get", "mpich1", "mpich2"):
            assert name in out
        assert "worst relative deviation" in out

    def test_sram_report(self, capsys):
        rc = main(["sram"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SeaStar SRAM" in out and "sources" in out

    def test_sram_with_accel_processes(self, capsys):
        rc = main(["sram", "--accelerated-processes", "1"])
        assert rc == 0
        assert "fw_pid2" in capsys.readouterr().out

    def test_topology_with_route(self, capsys):
        rc = main(["topology", "--dims", "4", "4", "4", "--route", "0", "63"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nodes=64" in out and "route 0 -> 63" in out


class TestStats:
    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.module == "put" and args.pattern == "pingpong"
        assert args.max_bytes == 1 << 23
        assert not args.no_reconcile

    def test_bench_stats_flag_parses(self):
        args = build_parser().parse_args(["bench", "--fast", "--stats"])
        assert args.stats

    def test_stats_round_trip(self, capsys, tmp_path):
        json_path = tmp_path / "stats.json"
        prom_path = tmp_path / "stats.prom"
        rc = main(
            [
                "stats",
                "--fast",
                "--max-bytes",
                "4096",
                "--json",
                str(json_path),
                "--prom",
                str(prom_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturating stage" in out
        assert "component" in out  # reconciliation table rendered
        import json as jsonlib

        doc = jsonlib.loads(json_path.read_text())
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["attribution"]
        assert all(row["ok"] for row in doc["reconciliation"])
        assert "# TYPE" in prom_path.read_text()

    def test_stats_no_reconcile(self, capsys):
        rc = main(["stats", "--fast", "--max-bytes", "256", "--no-reconcile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturating stage" in out
        assert "spans (ps)" not in out


class TestPerfGate:
    def test_bench_perf_gate_flag_parses(self):
        args = build_parser().parse_args(["bench", "--perf", "--perf-gate"])
        assert args.perf and args.perf_gate

    def test_regression_verdicts(self):
        from repro.perf import (
            GATE_REGRESSION_FRACTION,
            PerfResult,
            check_regression,
        )

        result = PerfResult(
            sweep="s", events=10, wall_s=1.0, events_per_sec=100.0, reps=1
        )
        # no baseline, empty baseline, zero baseline: gate is meaningless
        assert check_regression(result, None) is None
        assert check_regression(result, {}) is None
        assert check_regression(result, {"events_per_sec": 0.0}) is None
        # within the 30% allowance: pass, including exactly at the floor
        assert check_regression(result, {"events_per_sec": 120.0}) is None
        floor_base = 100.0 / (1.0 - GATE_REGRESSION_FRACTION)
        assert (
            check_regression(result, {"events_per_sec": floor_base}) is None
        )
        # beyond it: a gate failure naming both numbers
        error = check_regression(result, {"events_per_sec": 500.0})
        assert error is not None and "perf gate FAILED" in error
        assert "500.0" in error


class TestChaos:
    def test_chaos_smoke(self, capsys):
        rc = main(
            ["chaos", "--plan", "drop-1pct", "--fast", "--max-bytes", "4096"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan=drop-1pct" in out
        assert "retransmits" in out
        assert "payload integrity: OK" in out

    def test_chaos_clean_plan(self, capsys):
        rc = main(["chaos", "--plan", "none", "--fast", "--max-bytes", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no fault injector attached" in out
        assert "payload integrity: OK" in out

    def test_chaos_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", "gremlins"])

    def test_chaos_rejects_get_module(self):
        # GET reply loss is unrecoverable by design; the CLI refuses it
        with pytest.raises(SystemExit):
            main(["chaos", "--module", "get"])
