"""Machine assembly: builders, node lifecycles, multi-hop placement."""

import pytest

from repro.machine.builder import Machine, build_pair, build_redstorm
from repro.net import Torus3D
from repro.portals import EventKind

from .conftest import drain_events, make_target, run_to_completion


class TestBuilders:
    def test_pair_default_adjacent(self):
        machine, a, b = build_pair()
        assert machine.fabric.hops(a.node_id, b.node_id) == 1

    def test_pair_with_hops(self):
        machine, a, b = build_pair(hops=5)
        assert machine.fabric.hops(a.node_id, b.node_id) == 5

    def test_pair_bad_hops(self):
        with pytest.raises(ValueError):
            build_pair(hops=-1)

    def test_redstorm_shape(self):
        machine = build_redstorm()
        assert machine.topology.num_nodes == 10368
        assert machine.topology.wrap == (False, False, True)

    def test_nodes_boot_lazily(self):
        machine = build_redstorm()
        assert len(machine.nodes) == 0
        machine.node(0)
        machine.node(5000)
        assert len(machine.nodes) == 2

    def test_node_fetch_idempotent(self):
        machine = build_redstorm()
        assert machine.node(3) is machine.node(3)

    def test_now_property(self):
        machine, a, b = build_pair()
        assert machine.now == 0
        machine.run(until=1000)
        assert machine.now == 1000


class TestHopLatencyEffect:
    def _latency(self, hops):
        machine, a, b = build_pair(hops=hops)
        pa, pb = a.create_process(), b.create_process()
        stamp = {}

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=8)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            stamp["recv"] = proc.sim.now
            return True

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8))
            stamp["send"] = proc.sim.now
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(50_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        return stamp["recv"] - stamp["send"]

    def test_farther_nodes_slower(self):
        near = self._latency(1)
        far = self._latency(20)
        cfg_hop = build_pair()[0].config.hop_latency
        assert far - near == pytest.approx(19 * cfg_hop, rel=0.01)

    def test_hop_cost_small_relative_to_software(self):
        """The paper's 2 us / 5 us nearest/farthest MPI requirement works
        because per-hop cost is tens of ns; check the same proportions."""
        near = self._latency(1)
        far = self._latency(60)  # beyond Red Storm's diameter
        assert far < near * 1.6


class TestManyNodes:
    def test_eight_node_all_to_one(self):
        machine = Machine(Torus3D((8, 1, 1), wrap=(False, False, False)))
        nodes = [machine.node(i) for i in range(8)]
        sink_proc = nodes[0].create_process()
        senders = [n.create_process() for n in nodes[1:]]
        count = len(senders)

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64, eq_size=256)
            got = set()
            for _ in range(count):
                evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
                got.add(evs[-1].hdr_data)
            return got

        def sender(proc, target, mark):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8))
            yield from api.PtlPut(md, target, 4, 0x1234, hdr_data=mark)
            yield proc.sim.timeout(300_000_000)
            return True

        hr = sink_proc.spawn(receiver)
        handles = [
            p.spawn(sender, sink_proc.id, 100 + i) for i, p in enumerate(senders)
        ]
        results = run_to_completion(machine, hr, *handles)
        assert results[0] == {100 + i for i in range(count)}
        # every sender got a source structure at the sink
        assert nodes[0].firmware.control.sources.in_use == count
