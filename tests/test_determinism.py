"""Whole-stack determinism: identical runs produce identical results.

The DES kernel promises bit-for-bit reproducibility; these tests verify
the promise survives all the layers stacked on top (a stray wall-clock
read, dict-iteration dependence, or unseeded RNG anywhere would break
them).
"""

import pytest

from repro.analysis import machine_report
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.mpi import MPICH1, create_world, run_world
from repro.netpipe import MPIModule, PortalsGetModule, PortalsPutModule, run_series
from repro.sim import US


def series_fingerprint(series):
    return [(p.nbytes, p.total_ps, p.bytes_moved) for p in series.points]


class TestNetPipeDeterminism:
    @pytest.mark.parametrize(
        "module_factory,pattern",
        [
            (PortalsPutModule, "pingpong"),
            (PortalsPutModule, "stream"),
            (PortalsPutModule, "bidir"),
            (PortalsGetModule, "pingpong"),
            (lambda: MPIModule(MPICH1), "pingpong"),
        ],
    )
    def test_identical_sweeps(self, module_factory, pattern):
        sizes = [1, 13, 1024, 65536]
        a = run_series(module_factory(), pattern, sizes)
        b = run_series(module_factory(), pattern, sizes)
        assert series_fingerprint(a) == series_fingerprint(b)

    def test_accelerated_deterministic(self):
        sizes = [1, 4096]
        a = run_series(PortalsPutModule(accelerated=True), "pingpong", sizes)
        b = run_series(PortalsPutModule(accelerated=True), "pingpong", sizes)
        assert series_fingerprint(a) == series_fingerprint(b)


class TestRecoveryDeterminism:
    def test_gobackn_runs_identically(self):
        cfg = SeaStarConfig(
            generic_rx_pendings=2,
            generic_tx_pendings=32,
            num_generic_pendings=34,
            gobackn_backoff=5 * US,
        )

        def run_once():
            import numpy as np

            from repro.portals import EventKind

            machine, na, nb = build_pair(cfg, policy=ExhaustionPolicy.GO_BACK_N)
            world = create_world(machine, [na, nb])

            def main(mpi, rank):
                buf = np.zeros(8, np.uint8)
                if rank == 0:
                    for i in range(15):
                        yield from mpi.send(buf, 1, tag=i)
                    return machine.now
                for i in range(15):
                    yield from mpi.recv(buf, source=0, tag=i)
                return machine.now

            results = run_world(machine, world, main)
            return (
                results,
                na.firmware.counters["retransmits"],
                nb.firmware.counters["naks_sent"],
                machine.now,
            )

        assert run_once() == run_once()


class TestBenchDeterminismStress:
    def test_fig4_three_ways_byte_identical(self):
        """The fig4 sweep run twice in-process and once across a
        spawn-based worker pool must agree byte for byte on the
        simulated half of the results document — the same contract the
        golden gate enforces, exercised across process boundaries."""
        from repro.benchrunner import run_bench, simulated_json

        first = run_bench(fast=True, filter="fig4")
        second = run_bench(fast=True, filter="fig4")
        pooled = run_bench(fast=True, filter="fig4", workers=2)
        assert simulated_json(first) == simulated_json(second)
        assert simulated_json(first) == simulated_json(pooled)


class TestReportDeterminism:
    def test_counters_identical_across_runs(self):
        def run_once():
            series = None
            machine, na, nb = build_pair()
            from repro.portals import EventKind

            from .conftest import drain_events, make_target, run_to_completion

            pa, pb = na.create_process(), nb.create_process()

            def receiver(proc):
                eq, me, md, buf = yield from make_target(proc, size=1024)
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
                return True

            def sender(proc, target):
                api = proc.api
                md = yield from api.PtlMDBind(proc.alloc(1024))
                yield from api.PtlPut(md, target, 4, 0x1234)
                yield proc.sim.timeout(100_000_000)
                return True

            hr = pb.spawn(receiver)
            hs = pa.spawn(sender, pb.id)
            run_to_completion(machine, hr, hs)
            return machine_report(machine)

        assert run_once() == run_once()
