"""NetPIPE endpoint internals: per-round MD lifecycle, event accounting,
stream flushing, module wiring."""

import pytest

from repro.machine.builder import build_pair
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
)
from repro.portals import EventKind

from .conftest import run_to_completion


def make_pair_endpoints(module, max_bytes=4096):
    machine, na, nb = build_pair()
    ep_a, ep_b = module.make_endpoints(machine, na, nb, max_bytes)
    return machine, ep_a, ep_b


class TestPutEndpoint:
    def test_round_lifecycle_binds_and_unbinds_md(self):
        machine, ep_a, ep_b = make_pair_endpoints(PortalsPutModule())

        def side_a():
            yield from ep_a.setup()
            assert ep_a.tx_md is None
            yield from ep_a.begin_round(256)
            md = ep_a.tx_md
            assert md is not None and md.active and md.length == 256
            yield from ep_a.send(256)
            yield from ep_a.recv(256)
            yield from ep_a.end_round()
            assert not md.active and ep_a.tx_md is None
            return True

        def side_b():
            yield from ep_b.setup()
            yield from ep_b.begin_round(256)
            yield from ep_b.recv(256)
            yield from ep_b.send(256)
            yield from ep_b.end_round()
            return True

        ha = machine.sim.process(side_a())
        hb = machine.sim.process(side_b())
        run_to_completion(machine, ha, hb)

    def test_md_created_once_per_round(self):
        """Paper 5.2: 'The memory descriptor is created once for each
        round of messages' — sends within a round reuse it."""
        machine, ep_a, ep_b = make_pair_endpoints(PortalsPutModule())
        mds = []

        def side_a():
            yield from ep_a.setup()
            yield from ep_a.begin_round(64)
            mds.append(ep_a.tx_md)
            for _ in range(5):
                yield from ep_a.send(64)
                yield from ep_a.recv(64)
            mds.append(ep_a.tx_md)
            yield from ep_a.end_round()
            return True

        def side_b():
            yield from ep_b.setup()
            yield from ep_b.begin_round(64)
            for _ in range(5):
                yield from ep_b.recv(64)
                yield from ep_b.send(64)
            yield from ep_b.end_round()
            return True

        ha = machine.sim.process(side_a())
        hb = machine.sim.process(side_b())
        run_to_completion(machine, ha, hb)
        assert mds[0] is mds[1]

    def test_event_counter_accounting(self):
        machine, ep_a, ep_b = make_pair_endpoints(PortalsPutModule())

        def side_a():
            yield from ep_a.setup()
            yield from ep_a.begin_round(16)
            yield from ep_a.send(16)
            yield from ep_a.recv(16)  # waits PUT_END from b
            yield from ep_a.flush_sends(1)  # consumes our SEND_END
            yield from ep_a.end_round()
            return dict(ep_a._counts)

        def side_b():
            yield from ep_b.setup()
            yield from ep_b.begin_round(16)
            yield from ep_b.recv(16)
            yield from ep_b.send(16)
            yield from ep_b.end_round()
            return True

        ha = machine.sim.process(side_a())
        hb = machine.sim.process(side_b())
        counts, _ = run_to_completion(machine, ha, hb)
        # everything consumed: no leftover PUT_END/SEND_END credit
        assert counts.get(EventKind.PUT_END, 0) == 0
        assert counts.get(EventKind.SEND_END, 0) == 0


class TestGetEndpoint:
    def test_get_exchange_roundtrip(self):
        machine, ep_a, ep_b = make_pair_endpoints(PortalsGetModule())

        def side_a():
            yield from ep_a.setup()
            yield from ep_a.begin_round(128)
            yield from ep_a.send(128)  # waits for b's get
            yield from ep_a.recv(128)  # gets from b
            yield from ep_a.end_round()
            return True

        def side_b():
            yield from ep_b.setup()
            yield from ep_b.begin_round(128)
            yield from ep_b.recv(128)
            yield from ep_b.send(128)
            yield from ep_b.end_round()
            return True

        ha = machine.sim.process(side_a())
        hb = machine.sim.process(side_b())
        run_to_completion(machine, ha, hb)


class TestMPIEndpoint:
    @pytest.mark.parametrize("flavor", [MPICH1, MPICH2])
    def test_module_name_matches_flavor(self, flavor):
        module = MPIModule(flavor)
        assert module.name == flavor.name

    def test_stream_window_drains_at_end_round(self):
        machine, ep_a, ep_b = make_pair_endpoints(MPIModule(MPICH1))

        def side_a():
            yield from ep_a.setup()
            yield from ep_a.begin_round(32)
            for _ in range(6):
                yield from ep_a.send(32)
            yield from ep_a.end_round()
            return True

        def side_b():
            yield from ep_b.setup()
            yield from ep_b.begin_round(32)
            for i in range(6):
                yield from ep_b.stream_recv(32, 6 - i)
            yield from ep_b.end_round()
            return len(ep_b._window)

        ha = machine.sim.process(side_a())
        hb = machine.sim.process(side_b())
        _, leftover = run_to_completion(machine, ha, hb)
        assert leftover == 0


class TestModuleFactories:
    def test_accelerated_flag_creates_accel_processes(self):
        machine, na, nb = build_pair()
        PortalsPutModule(accelerated=True).make_endpoints(machine, na, nb, 64)
        assert any(p.accelerated for p in na.processes.values())

    def test_generic_default(self):
        machine, na, nb = build_pair()
        PortalsPutModule().make_endpoints(machine, na, nb, 64)
        assert all(not p.accelerated for p in na.processes.values())
