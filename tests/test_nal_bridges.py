"""NAL/bridge layer: the paper's four deployment cases and the
accelerated direct-to-firmware path."""

import pytest

from repro.machine.builder import build_pair
from repro.nal import AcceleratedBridge, KBridge, QKBridge, UKBridge
from repro.oskern import OSType
from repro.portals import EventKind

from .conftest import drain_events, make_target, run_to_completion


def pingpong_once(machine, pa, pb, nbytes=4):
    done = {}

    def receiver(proc):
        eq, me, md, buf = yield from make_target(proc, size=max(nbytes, 1))
        yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
        done["recv_at"] = proc.sim.now
        return True

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(32)
        md = yield from api.PtlMDBind(proc.alloc(max(nbytes, 1)), eq=eq)
        done["send_at"] = proc.sim.now
        yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
        yield from drain_events(api, eq, want=[EventKind.SEND_END])
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    run_to_completion(machine, hr, hs)
    return done["recv_at"] - done["send_at"]


class TestDeploymentCases:
    def test_catamount_generic_uses_qkbridge(self):
        machine, na, nb = build_pair(os_type=OSType.CATAMOUNT)
        proc = na.create_process()
        assert isinstance(proc.bridge, QKBridge)
        assert proc.bridge.crossing_kind == "catamount-trap"

    def test_linux_user_uses_ukbridge(self):
        machine, na, nb = build_pair(os_type=OSType.LINUX)
        proc = na.create_process()
        assert isinstance(proc.bridge, UKBridge)

    def test_linux_kernel_client_uses_kbridge(self):
        machine, na, nb = build_pair(os_type=OSType.LINUX)
        proc = na.create_kernel_client()
        assert isinstance(proc.bridge, KBridge)
        assert proc.bridge.crossing_cost() == 0

    def test_kernel_client_rejected_on_catamount(self):
        machine, na, nb = build_pair(os_type=OSType.CATAMOUNT)
        with pytest.raises(RuntimeError):
            na.create_kernel_client()

    def test_catamount_accelerated(self):
        machine, na, nb = build_pair(os_type=OSType.CATAMOUNT)
        proc = na.create_process(accelerated=True)
        assert isinstance(proc.bridge, AcceleratedBridge)
        assert proc.ni.accelerated

    def test_accelerated_rejected_on_linux(self):
        """Paper 4.1: accelerated mode relies on physically contiguous
        buffers, which Linux paging cannot provide."""
        machine, na, nb = build_pair(os_type=OSType.LINUX)
        with pytest.raises(RuntimeError):
            na.create_process(accelerated=True)

    def test_uk_and_k_bridges_share_one_nic(self):
        """ukbridge + kbridge run simultaneously on one Linux node
        (section 3.2): a user process and a kernel-level service both
        talk over the same SSNAL."""
        machine, na, nb = build_pair(os_type=OSType.LINUX)
        user = na.create_process()
        lustre = na.create_kernel_client()
        assert user.bridge.ssnal is lustre.bridge.ssnal
        peer = nb.create_process()

        results = []

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=64)
            for _ in range(2):
                evs = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
                results.append(evs[-1].hdr_data)
            return True

        def sender(proc, target, mark):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(4))
            yield from api.PtlPut(md, target, 4, 0x1234, hdr_data=mark)
            yield proc.sim.timeout(200_000_000)
            return True

        hr = peer.spawn(receiver)
        h1 = user.spawn(sender, peer.id, 111)
        h2 = lustre.spawn(sender, peer.id, 222)
        run_to_completion(machine, hr, h1, h2)
        assert sorted(results) == [111, 222]


class TestBridgeCosts:
    def test_kbridge_cheaper_than_ukbridge(self):
        machine_u, a, b = build_pair(os_type=OSType.LINUX)
        t_user = pingpong_once(machine_u, a.create_process(), b.create_process())
        machine_k, c, d = build_pair(os_type=OSType.LINUX)
        t_kernel = pingpong_once(
            machine_k, c.create_kernel_client(), d.create_process()
        )
        assert t_kernel < t_user

    def test_qkbridge_cheaper_than_ukbridge(self):
        machine_c, a, b = build_pair(os_type=OSType.CATAMOUNT)
        t_cat = pingpong_once(machine_c, a.create_process(), b.create_process())
        machine_l, c, d = build_pair(os_type=OSType.LINUX)
        t_lin = pingpong_once(machine_l, c.create_process(), d.create_process())
        assert t_cat < t_lin


class TestAcceleratedMode:
    def test_accelerated_pingpong_works(self):
        machine, na, nb = build_pair()
        pa = na.create_process(accelerated=True)
        pb = nb.create_process(accelerated=True)
        latency = pingpong_once(machine, pa, pb)
        assert latency > 0

    def test_accelerated_no_interrupts_on_data_path(self):
        machine, na, nb = build_pair()
        pa = na.create_process(accelerated=True)
        pb = nb.create_process(accelerated=True)
        pingpong_once(machine, pa, pb, nbytes=4)
        assert nb.opteron.counters["interrupts"] == 0
        assert na.opteron.counters["interrupts"] == 0

    def test_accelerated_faster_than_generic(self):
        machine_g, a, b = build_pair()
        t_generic = pingpong_once(
            machine_g, a.create_process(), b.create_process()
        )
        machine_a, c, d = build_pair()
        t_accel = pingpong_once(
            machine_a,
            c.create_process(accelerated=True),
            d.create_process(accelerated=True),
        )
        # the whole point: eliminating interrupts cuts latency sharply
        assert t_accel < t_generic / 1.8

    def test_accelerated_payload_message(self):
        machine, na, nb = build_pair()
        pa = na.create_process(accelerated=True)
        pb = nb.create_process(accelerated=True)
        latency = pingpong_once(machine, pa, pb, nbytes=50_000)
        assert latency > 0

    def test_accelerated_and_generic_coexist(self):
        """Generic-mode processes continue to work beside an accelerated
        one on the same node (section 4.1)."""
        machine, na, nb = build_pair()
        accel = na.create_process(accelerated=True)
        generic = na.create_process()
        peer = nb.create_process()
        t1 = pingpong_once(machine, accel, peer)

        machine2, nc, nd = build_pair()
        nc.create_process(accelerated=True)
        gen2 = nc.create_process()
        peer2 = nd.create_process()
        t2 = pingpong_once(machine2, gen2, peer2)
        assert t1 > 0 and t2 > 0
