"""Property-based tests of Portals semantics and engine-path identity.

Random *programs* — sequences of match-list attachments, incoming
headers, EQ posts/reads, and sim-process operations — are generated with
Hypothesis and checked against small pure-Python oracles:

* matching order: ``first_match`` always returns the earliest linked
  entry whose (source, bits, accepting-MD) criterion passes;
* truncation: ``mlength`` follows the TRUNCATE / MANAGE_REMOTE rules
  exactly, and a no-space drop leaves all state untouched;
* unlink: MD and ME retirement callbacks fire exactly once, UNLINK is
  posted at most once per MD, and a retired entry never matches again;
* EQ: events are read in post order and ``reads + pending + dropped``
  always equals the number of posts;
* engine identity: the same random process program produces the same
  trace (times and values) on the flattened-sleep fast path and the
  legacy event-object path (``Simulator(direct_resume=...)``);
* bulk-event identity: a NetPIPE sweep under any mix of tracing,
  metrics, and fault plans produces identical measurements, counters,
  spans, and logical event counts with ``bulk_events`` on and off — and
  with no observer attached the bulk path demonstrably engages.

Profiles live in ``tests/conftest.py``: the default ``fast`` profile is
small and derandomized for PR CI; set ``HYPOTHESIS_PROFILE=nightly`` for
the deeper randomized run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.portals import (
    PTL_MD_THRESH_INF,
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    EventQueue,
    MatchEntry,
    MatchList,
    MatchStatus,
    MDOptions,
    MsgType,
    PortalsHeader,
    PortalTable,
    ProcessId,
    PtlEQDropped,
    PtlEQEmpty,
    bits_match,
    commit_operation,
    match_request,
    md_from_buffer,
    source_match,
)
from repro.sim import Channel, Simulator, Store

pytestmark = pytest.mark.property

ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)

# small pools keep collisions (the interesting case) frequent
_BIT_POOL = [0x0, 0x1, 0x2, 0x3, 0xFF, 0xDEAD]
_IGNORE_POOL = [0x0, 0x1, 0x3, (1 << 64) - 1]
_NIDS = [PTL_NID_ANY, 1, 2]
_PIDS = [PTL_PID_ANY, 1, 2]


# ---------------------------------------------------------------------------
# random match-list programs vs a pure oracle
# ---------------------------------------------------------------------------

@dataclass
class _EntrySpec:
    """Generator-side description of one attached entry."""

    nid: int
    pid: int
    match_bits: int
    ignore_bits: int
    md_size: int
    threshold: int  # -1 => infinite
    truncate: bool
    manage_remote: bool
    allow_get: bool
    unlink: bool
    at_head: bool
    with_eq: bool
    # runtime state, filled in by the test
    me: Optional[MatchEntry] = None
    local_offset: int = 0
    remaining: int = 0
    md_unlinks: int = 0
    me_unlinks: int = 0
    unlink_events: int = 0


entry_specs = st.builds(
    _EntrySpec,
    nid=st.sampled_from(_NIDS),
    pid=st.sampled_from(_PIDS),
    match_bits=st.sampled_from(_BIT_POOL),
    ignore_bits=st.sampled_from(_IGNORE_POOL),
    md_size=st.integers(0, 64),
    threshold=st.sampled_from([-1, 1, 2, 3]),
    truncate=st.booleans(),
    manage_remote=st.booleans(),
    allow_get=st.booleans(),
    unlink=st.booleans(),
    at_head=st.booleans(),
    with_eq=st.booleans(),
)

incoming_headers = st.tuples(
    st.sampled_from([1, 2]),          # nid
    st.sampled_from([1, 2]),          # pid
    st.sampled_from(_BIT_POOL),       # match bits
    st.integers(0, 96),               # length
    st.integers(0, 32),               # offset (MANAGE_REMOTE only)
    st.booleans(),                    # is_put
)


def _build_table(specs, sim):
    """Attach every spec; return (table, ordered shadow list)."""
    table = PortalTable(4)
    ml = table.match_list(0)
    ordered: list[_EntrySpec] = []
    for spec in specs:
        options = MDOptions.OP_PUT
        if spec.allow_get:
            options |= MDOptions.OP_GET
        if spec.truncate:
            options |= MDOptions.TRUNCATE
        if spec.manage_remote:
            options |= MDOptions.MANAGE_REMOTE
        eq = EventQueue(sim, 64) if spec.with_eq else None
        md = md_from_buffer(
            np.zeros(spec.md_size, dtype=np.uint8),
            threshold=PTL_MD_THRESH_INF if spec.threshold < 0 else spec.threshold,
            options=options,
            eq=eq,
            unlink=spec.unlink,
        )
        me = MatchEntry(
            ProcessId(spec.nid, spec.pid),
            spec.match_bits,
            spec.ignore_bits,
            md=md,
            unlink_on_use=spec.unlink,
        )
        # count retirement callbacks — "exactly once" is the invariant
        def _md_cb(s=spec):
            s.md_unlinks += 1

        def _me_cb(s=spec):
            s.me_unlinks += 1

        md.on_unlink = _md_cb
        me.on_unlink = _me_cb
        spec.me = me
        spec.remaining = spec.threshold
        if spec.at_head:
            ml.attach_head(me)
            ordered.insert(0, spec)
        else:
            ml.attach_tail(me)
            ordered.append(spec)
    return table, ordered


def _oracle_first(ordered, src, bits, is_put):
    """Reference walk: earliest linked entry whose criterion + MD accept."""
    for spec in ordered:
        if not spec.me.linked:
            continue
        if not source_match(src, ProcessId(spec.nid, spec.pid)):
            continue
        if not bits_match(bits, spec.match_bits, spec.ignore_bits):
            continue
        if spec.remaining == 0:
            continue
        if not is_put and not spec.allow_get:
            continue
        return spec
    return None


@given(
    specs=st.lists(entry_specs, min_size=1, max_size=6),
    deliveries=st.lists(incoming_headers, min_size=1, max_size=12),
)
def test_match_program_obeys_order_truncation_and_unlink(specs, deliveries):
    sim = Simulator()
    table, ordered = _build_table(specs, sim)
    ml = table.match_list(0)
    for nid, pid, bits, length, offset, is_put in deliveries:
        src = ProcessId(nid, pid)
        hdr = PortalsHeader(
            op=MsgType.PUT if is_put else MsgType.GET,
            src=src,
            dst=ProcessId(0, 0),
            ptl_index=0,
            match_bits=bits,
            length=length,
            offset=offset,
        )
        expected = _oracle_first(ordered, src, bits, is_put)
        result = match_request(table, hdr)

        if expected is None:
            assert result.status is MatchStatus.DROPPED_NO_MATCH
            continue
        assert result.me is expected.me, "matching-order invariant"

        # truncation oracle
        exp_offset = offset if expected.manage_remote else expected.local_offset
        available = max(0, expected.md_size - exp_offset)
        if length <= available:
            exp_mlength = length
        elif expected.truncate:
            exp_mlength = available
        else:
            assert result.status is MatchStatus.DROPPED_NO_SPACE
            # a drop must leave all state untouched
            assert expected.me.linked and expected.me.md.active
            assert expected.md_unlinks == 0 and expected.me_unlinks == 0
            continue
        assert result.matched
        assert result.offset == exp_offset
        assert result.mlength == exp_mlength
        assert result.rlength == length
        assert result.mlength <= length
        # accepted bytes always fit in the space beyond the offset (a
        # zero-length op may "match" at an out-of-range remote offset)
        assert result.mlength <= max(0, expected.md_size - result.offset)

        events = commit_operation(ml, result, hdr, started=True)
        events += commit_operation(ml, result, hdr, started=False)
        expected.unlink_events += sum(
            1 for e in events if e.kind is EventKind.UNLINK
        )

        # shadow state update
        if expected.remaining > 0:
            expected.remaining -= 1
        if not expected.manage_remote:
            expected.local_offset = exp_offset + exp_mlength

        if expected.remaining == 0 and expected.unlink:
            assert not expected.me.md.active
            assert not expected.me.linked
        else:
            assert expected.me.md.active
            assert expected.me.linked

    # exactly-once retirement, across the whole program
    for spec in ordered:
        retired = spec.remaining == 0 and spec.unlink
        assert spec.md_unlinks == (1 if retired else 0)
        assert spec.me_unlinks == (1 if retired else 0)
        # UNLINK posted at most once, and only when an EQ was attached
        assert spec.unlink_events == (1 if retired and spec.with_eq else 0)


# ---------------------------------------------------------------------------
# random EQ programs vs a circular-buffer oracle
# ---------------------------------------------------------------------------

def _mk_event(i: int):
    from repro.portals.events import PortalsEvent

    return PortalsEvent(
        kind=EventKind.PUT_END,
        initiator=ProcessId(1, 1),
        ptl_index=0,
        match_bits=i,
    )


@given(
    size=st.integers(1, 5),
    ops=st.lists(st.sampled_from(["post", "get"]), min_size=1, max_size=40),
)
def test_eq_program_order_and_conservation(size, ops, engine_sim):
    eq = EventQueue(engine_sim, size)
    posted = 0
    reads = 0
    dropped_total = 0
    next_expected = 1  # match_bits of the next event we should read
    for op in ops:
        if op == "post":
            posted += 1
            if eq.pending >= size:
                # will lap the reader: oldest unread is lost
                next_expected += 1
                dropped_total += 1
            eq.post(_mk_event(posted))
        else:
            if eq.dropped:
                with pytest.raises(PtlEQDropped):
                    eq.get()
                continue
            if eq.pending == 0:
                with pytest.raises(PtlEQEmpty):
                    eq.get()
                continue
            event = eq.get()
            assert event.match_bits == next_expected, "post order preserved"
            next_expected += 1
            reads += 1
        assert reads + eq.pending + dropped_total == posted, "conservation"


# ---------------------------------------------------------------------------
# engine-path identity: same program, both scheduler paths, same trace
# ---------------------------------------------------------------------------

_ops = st.one_of(
    st.tuples(st.just("sleep"), st.integers(0, 1000)),
    st.tuples(st.just("put"), st.integers(0, 1), st.integers(0, 99)),
    st.tuples(st.just("get"), st.integers(0, 1)),
    st.tuples(st.just("sput"), st.integers(0, 99)),
    st.tuples(st.just("sget")),
)

programs = st.lists(  # one op-list per process
    st.lists(_ops, min_size=1, max_size=8), min_size=1, max_size=4
)


def _run_program(direct_resume: bool, program):
    """Execute the program; return the (proc, op, time, value) trace."""
    sim = Simulator(direct_resume=direct_resume)
    channels = [Channel(sim), Channel(sim)]
    store = Store(sim, capacity=2)
    trace: list[tuple] = []

    def body(pid, ops):
        for i, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield op[1]
                trace.append((pid, i, sim.now, None))
            elif kind == "put":
                channels[op[1]].put(op[2])
                trace.append((pid, i, sim.now, op[2]))
            elif kind == "get":
                value = yield channels[op[1]].get()
                trace.append((pid, i, sim.now, value))
            elif kind == "sput":
                yield store.put(op[1])
                trace.append((pid, i, sim.now, op[1]))
            else:
                value = yield store.get()
                trace.append((pid, i, sim.now, value))

    for pid, ops in enumerate(program):
        sim.process(body(pid, ops), name=f"p{pid}")
    sim.run()
    return trace, sim.now


@given(program=programs)
def test_both_engine_paths_produce_identical_traces(program):
    fast = _run_program(True, program)
    legacy = _run_program(False, program)
    assert fast == legacy


# ---------------------------------------------------------------------------
# bulk-event identity: vectorized chunk trains must be invisible
# ---------------------------------------------------------------------------

# sizes straddling the bulk threshold: single-chunk small messages, and
# multi-chunk transfers where the TX engine can coalesce chunk trains
_BULK_SIZES = [1, 4096, 65536, 262144]


def _sweep_fingerprint(bulk, sizes, trace, metrics, plan_name):
    """Run a pingpong sweep; return (comparable-state, machine)."""
    from repro.faults.plan import named_plan
    from repro.fw.firmware import ExhaustionPolicy
    from repro.metrics.export import machine_counters
    from repro.netpipe import NetPipeRunner, PortalsPutModule

    plan = named_plan(plan_name) if plan_name else None
    runner = NetPipeRunner(
        PortalsPutModule(),
        repeats=1,
        warmup=1,
        trace=trace,
        metrics=metrics,
        fault_plan=plan,
        policy=(
            ExhaustionPolicy.GO_BACK_N if plan else ExhaustionPolicy.PANIC
        ),
        bulk_events=bulk,
    )
    series = runner.run("pingpong", sizes)
    machine = runner.machine
    state = {
        "points": series.points,
        "now": machine.sim.now,
        "events": machine.sim.events_scheduled,
        "counters": machine_counters(machine),
    }
    if trace:
        # msg_ids come from a process-global allocator, so back-to-back
        # runs shift them uniformly; compare up to first-seen renaming
        remap: dict = {}
        state["spans"] = [
            (
                s.name, s.node, s.component, s.t0, s.t1,
                None if s.msg_id is None
                else remap.setdefault(s.msg_id, len(remap)),
            )
            for s in machine.tracer.spans
        ]
    if metrics:
        state["metrics"] = machine.metrics.snapshot()
    return state, machine


@given(
    sizes=st.lists(
        st.sampled_from(_BULK_SIZES), min_size=1, max_size=2, unique=True
    ),
    trace=st.booleans(),
    metrics=st.booleans(),
    plan_name=st.sampled_from([None, "fw-crash"]),
)
def test_bulk_events_invisible_under_any_observer_mix(
    sizes, trace, metrics, plan_name
):
    fast, fast_machine = _sweep_fingerprint(
        True, sizes, trace, metrics, plan_name
    )
    exact, exact_machine = _sweep_fingerprint(
        False, sizes, trace, metrics, plan_name
    )
    assert fast == exact

    # bulk=False must never elide anything...
    assert exact_machine.sim._bulk_extra == 0
    # ...and with no observer attached, a multi-chunk sweep must actually
    # engage the bulk path (guards against the gate silently always
    # falling back to chunk-exact)
    if not trace and not metrics and plan_name is None and max(sizes) >= 65536:
        assert fast_machine.sim._bulk_extra > 0
        assert fast_machine.sim._seq < exact_machine.sim._seq
    # observers force chunk-exact: identical raw heap traffic
    if trace or metrics or plan_name is not None:
        assert fast_machine.sim._bulk_extra == 0


@given(
    delays=st.lists(st.integers(0, 500), min_size=1, max_size=10),
    until=st.integers(0, 1500),
)
def test_run_until_identical_across_paths(delays, until):
    def clock(sim, log):
        for d in delays:
            yield d
            log.append(sim.now)

    results = []
    for mode in (True, False):
        sim = Simulator(direct_resume=mode)
        log: list[int] = []
        sim.process(clock(sim, log))
        sim.run(until=until)
        results.append((log, sim.now))
    assert results[0] == results[1]
    assert results[0][1] == until  # clock lands exactly on the horizon
