"""Channel and Store primitives: FIFO order, blocking, capacity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Simulator, Store


class TestChannel:
    def test_put_then_get_immediate(self, sim):
        ch = Channel(sim)
        ch.put("x")
        got = []

        def getter():
            v = yield ch.get()
            got.append(v)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        got = []

        def getter():
            v = yield ch.get()
            got.append((v, sim.now))

        def putter():
            yield sim.timeout(100)
            ch.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 100)]

    def test_fifo_item_order(self, sim):
        ch = Channel(sim)
        for i in range(5):
            ch.put(i)
        out = []

        def getter():
            for _ in range(5):
                out.append((yield ch.get()))

        sim.process(getter())
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_fifo_getter_order(self, sim):
        ch = Channel(sim)
        out = []

        def getter(tag):
            v = yield ch.get()
            out.append((tag, v))

        for tag in "abc":
            sim.process(getter(tag))

        def putter():
            yield sim.timeout(1)
            for i in range(3):
                ch.put(i)

        sim.process(putter())
        sim.run()
        assert out == [("a", 0), ("b", 1), ("c", 2)]

    def test_len_and_waiting(self, sim):
        ch = Channel(sim)
        assert len(ch) == 0
        ch.put(1)
        assert len(ch) == 1
        ch.get()
        assert len(ch) == 0
        ch.get()
        assert ch.waiting == 1

    def test_peek_and_drain(self, sim):
        ch = Channel(sim)
        ch.put("a")
        ch.put("b")
        assert ch.peek() == "a"
        assert ch.drain() == ["a", "b"]
        assert len(ch) == 0
        with pytest.raises(IndexError):
            ch.peek()


class TestStore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_blocks_when_full(self, sim):
        st_ = Store(sim, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield st_.put(i)
                times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield sim.timeout(10)
                yield st_.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # first put immediate; subsequent puts gated by gets at t=10, 20
        assert times == [0, 10, 20]

    def test_order_preserved_under_backpressure(self, sim):
        st_ = Store(sim, capacity=2)
        out = []

        def producer():
            for i in range(10):
                yield st_.put(i)

        def consumer():
            for _ in range(10):
                yield sim.timeout(3)
                out.append((yield st_.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert out == list(range(10))

    def test_full_property(self, sim):
        st_ = Store(sim, capacity=2)
        assert not st_.full
        st_.put(1)
        st_.put(2)
        assert st_.full

    @settings(max_examples=20, deadline=None)
    @given(
        capacity=st.integers(1, 8),
        items=st.lists(st.integers(), min_size=1, max_size=40),
        consumer_delay=st.integers(0, 20),
    )
    def test_store_never_reorders_or_loses(self, capacity, items, consumer_delay):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        out = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                if consumer_delay:
                    yield sim.timeout(consumer_delay)
                out.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert out == items
