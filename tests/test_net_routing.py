"""Table-based dimension-ordered routing: fixed paths, in-order guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Router, Torus3D, build_route_tables, route_path


class TestRouteTables:
    def test_tables_cover_all_destinations(self):
        topo = Torus3D((3, 3, 2))
        tables = build_route_tables(topo)
        assert len(tables) == topo.num_nodes
        for table in tables.values():
            assert len(table) == topo.num_nodes

    def test_local_entry_for_self(self):
        topo = Torus3D((2, 2, 2))
        tables = build_route_tables(topo)
        for node, table in tables.items():
            assert table.port_for(node) == "local"

    def test_unknown_destination_raises(self):
        topo = Torus3D((2, 1, 1))
        tables = build_route_tables(topo)
        with pytest.raises(KeyError):
            tables[0].port_for(99)


class TestPaths:
    def test_path_endpoints(self):
        topo = Torus3D((4, 4, 4))
        router = Router(topo)
        path = router.path(0, 63)
        assert path[0] == 0 and path[-1] == 63

    def test_path_length_equals_min_distance(self):
        # dimension-order routing on mesh/torus is minimal
        topo = Torus3D((4, 3, 5), wrap=(False, False, True))
        router = Router(topo)
        for src in range(0, topo.num_nodes, 7):
            for dst in range(0, topo.num_nodes, 11):
                assert router.hops(src, dst) == topo.distance(src, dst)

    def test_dimension_order_x_then_y_then_z(self):
        topo = Torus3D((3, 3, 3), wrap=(False, False, False))
        router = Router(topo)
        src = topo.node_id(topo.coord(0))
        dst = 2 + 2 * 3 + 2 * 9  # (2,2,2)
        path = [topo.coord(n) for n in router.path(src, dst)]
        # x moves first, then y, then z
        xs = [c.x for c in path]
        assert xs == sorted(xs)
        first_y_move = next(i for i in range(1, len(path)) if path[i].y != path[i - 1].y)
        assert path[first_y_move - 1].x == 2  # x finished before y started

    def test_fixed_path_deterministic(self):
        # table-based routing: the same pair always takes the same path
        topo = Torus3D((5, 5, 5), wrap=(False, False, True))
        r1, r2 = Router(topo), Router(topo)
        assert r1.path(3, 97) == r2.path(3, 97)

    def test_wraparound_taken_when_shorter(self):
        topo = Torus3D((8, 1, 1), wrap=(True, False, False))
        router = Router(topo)
        assert router.path(0, 7) == [0, 7]
        assert router.hops(0, 7) == 1

    def test_self_path(self):
        topo = Torus3D((2, 2, 2))
        router = Router(topo)
        assert router.path(3, 3) == [3]
        assert router.hops(3, 3) == 0

    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
        wrap=st.tuples(st.booleans(), st.booleans(), st.booleans()),
        data=st.data(),
    )
    def test_every_path_is_minimal_and_loop_free(self, dims, wrap, data):
        topo = Torus3D(dims, wrap=wrap)
        router = Router(topo)
        n = topo.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        path = router.path(src, dst)
        assert len(set(path)) == len(path)  # loop-free
        assert len(path) - 1 == topo.distance(src, dst)  # minimal

    def test_hops_cached(self):
        topo = Torus3D((4, 4, 4))
        router = Router(topo)
        assert router.hops(0, 21) == router.hops(0, 21)
        assert (0, 21) in router._hops_cache
