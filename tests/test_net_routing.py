"""Table-based dimension-ordered routing: fixed paths, in-order guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    Coord,
    Router,
    Torus3D,
    axis_span_hops,
    build_route_tables,
    min_cut_hops,
    route_path,
    slab_cut_hops,
)


class TestRouteTables:
    def test_tables_cover_all_destinations(self):
        topo = Torus3D((3, 3, 2))
        tables = build_route_tables(topo)
        assert len(tables) == topo.num_nodes
        for table in tables.values():
            assert len(table) == topo.num_nodes

    def test_local_entry_for_self(self):
        topo = Torus3D((2, 2, 2))
        tables = build_route_tables(topo)
        for node, table in tables.items():
            assert table.port_for(node) == "local"

    def test_unknown_destination_raises(self):
        topo = Torus3D((2, 1, 1))
        tables = build_route_tables(topo)
        with pytest.raises(KeyError):
            tables[0].port_for(99)


class TestPaths:
    def test_path_endpoints(self):
        topo = Torus3D((4, 4, 4))
        router = Router(topo)
        path = router.path(0, 63)
        assert path[0] == 0 and path[-1] == 63

    def test_path_length_equals_min_distance(self):
        # dimension-order routing on mesh/torus is minimal
        topo = Torus3D((4, 3, 5), wrap=(False, False, True))
        router = Router(topo)
        for src in range(0, topo.num_nodes, 7):
            for dst in range(0, topo.num_nodes, 11):
                assert router.hops(src, dst) == topo.distance(src, dst)

    def test_dimension_order_x_then_y_then_z(self):
        topo = Torus3D((3, 3, 3), wrap=(False, False, False))
        router = Router(topo)
        src = topo.node_id(topo.coord(0))
        dst = 2 + 2 * 3 + 2 * 9  # (2,2,2)
        path = [topo.coord(n) for n in router.path(src, dst)]
        # x moves first, then y, then z
        xs = [c.x for c in path]
        assert xs == sorted(xs)
        first_y_move = next(i for i in range(1, len(path)) if path[i].y != path[i - 1].y)
        assert path[first_y_move - 1].x == 2  # x finished before y started

    def test_fixed_path_deterministic(self):
        # table-based routing: the same pair always takes the same path
        topo = Torus3D((5, 5, 5), wrap=(False, False, True))
        r1, r2 = Router(topo), Router(topo)
        assert r1.path(3, 97) == r2.path(3, 97)

    def test_wraparound_taken_when_shorter(self):
        topo = Torus3D((8, 1, 1), wrap=(True, False, False))
        router = Router(topo)
        assert router.path(0, 7) == [0, 7]
        assert router.hops(0, 7) == 1

    def test_self_path(self):
        topo = Torus3D((2, 2, 2))
        router = Router(topo)
        assert router.path(3, 3) == [3]
        assert router.hops(3, 3) == 0

    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
        wrap=st.tuples(st.booleans(), st.booleans(), st.booleans()),
        data=st.data(),
    )
    def test_every_path_is_minimal_and_loop_free(self, dims, wrap, data):
        topo = Torus3D(dims, wrap=wrap)
        router = Router(topo)
        n = topo.num_nodes
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        path = router.path(src, dst)
        assert len(set(path)) == len(path)  # loop-free
        assert len(path) - 1 == topo.distance(src, dst)  # minimal

    def test_hops_cached(self):
        topo = Torus3D((4, 4, 4))
        router = Router(topo)
        assert router.hops(0, 21) == router.hops(0, 21)
        assert (0, 21) in router._hops_cache


class TestRedStormRouting:
    """Dimension-ordered routing on the full Red Storm geometry.

    The parallel DES driver's lookahead assumes routes are minimal
    (path hops == coordinate distance) and that z wraps while x/y do
    not; these walk the actual per-node tables at scale — both the
    calibrated 27x16x24 arrangement and the 27x20x24 build-out.
    """

    @pytest.mark.parametrize("dims", [(27, 16, 24), (27, 20, 24)])
    def test_paths_minimal_on_full_geometry(self, dims):
        topo = Torus3D(dims, wrap=(False, False, True))
        router = Router(topo)
        corner = topo.node_id(Coord(dims[0] - 1, dims[1] - 1, dims[2] - 1))
        center = topo.node_id(Coord(dims[0] // 2, dims[1] // 2, dims[2] // 2))
        probes = [0, 1, corner, center, topo.node_id(Coord(0, 0, dims[2] - 1))]
        for src in probes:
            for dst in probes:
                assert router.hops(src, dst) == topo.distance(src, dst)

    def test_z_route_uses_wraparound(self):
        topo = Torus3D((27, 20, 24), wrap=(False, False, True))
        router = Router(topo)
        lo = topo.node_id(Coord(13, 10, 0))
        hi = topo.node_id(Coord(13, 10, 23))
        # one hop backwards through the torus link, not 23 forwards
        assert router.path(lo, hi) == [lo, hi]

    def test_x_route_cannot_wrap(self):
        topo = Torus3D((27, 20, 24), wrap=(False, False, True))
        router = Router(topo)
        lo = topo.node_id(Coord(0, 10, 12))
        hi = topo.node_id(Coord(26, 10, 12))
        assert router.hops(lo, hi) == 26


class TestSlabCutHops:
    """Cut geometry feeding the parallel driver's lookahead matrix."""

    def test_adjacent_slabs_one_hop(self):
        topo = Torus3D((27, 16, 24), wrap=(False, False, True))
        ranges = [(0, 9), (9, 18), (18, 27)]
        hops = slab_cut_hops(topo, 0, ranges)
        assert hops[0][1] == hops[1][2] == 1
        assert hops[0][2] == 10  # x is mesh: 8..17 lie between
        assert hops == [list(r) for r in zip(*hops)]  # symmetric

    def test_z_extreme_slabs_touch_through_torus(self):
        # cut along z: the first and last slabs are adjacent via wrap
        topo = Torus3D((27, 16, 24), wrap=(False, False, True))
        ranges = [(0, 6), (6, 12), (12, 18), (18, 24)]
        hops = slab_cut_hops(topo, 2, ranges)
        assert hops[0][3] == 1  # z=0 and z=23 share a torus link
        assert hops[0][2] == 7  # interior pair still pays the span

    def test_matches_brute_force_on_redstorm_slabs(self):
        # spot-check the closed form against node-level distance at the
        # full 27x20x24 scale (brute force over slab boundary planes)
        topo = Torus3D((27, 20, 24), wrap=(False, False, True))
        ranges = [(0, 7), (7, 14), (14, 20)]
        hops = slab_cut_hops(topo, 1, ranges)
        for i, j in [(0, 1), (0, 2), (1, 2)]:
            plane_i = [topo.node_id(Coord(0, y, 0)) for y in range(*ranges[i])]
            plane_j = [topo.node_id(Coord(0, y, 0)) for y in range(*ranges[j])]
            assert hops[i][j] == min_cut_hops(topo, plane_i, plane_j)

    def test_axis_span_honors_wrap_flag(self):
        topo = Torus3D((27, 16, 24), wrap=(False, False, True))
        assert axis_span_hops(topo, 2, [0], [23]) == 1   # torus
        assert axis_span_hops(topo, 0, [0], [26]) == 26  # mesh
        with pytest.raises(ValueError):
            axis_span_hops(topo, 0, [], [1])
