"""Fleet-wide telemetry: round recorders, straggler attribution, the
Perfetto merge, pool lifecycle events, serve instrumentation, and the
post-mortem flight recorder.

The load-bearing contract is first: telemetry is host-side only, so the
gated ``result`` half of a partitioned run is byte-identical with it on
or off — for every partition count, both transports, and a run whose
worker was SIGKILLed mid-flight.  Everything else (trace export, flight
dumps, lifecycle counters) builds on top of that relaxation.
"""

from __future__ import annotations

import glob
import http.client
import json
import os
import threading
import time

import pytest

import repro.sim.parallel.engine as engine
from repro.sim.parallel import CausalityError, PlaneScenario, run_scenario
from repro.sim.parallel.engine import DirExchange
from repro.benchrunner.pool import PoolTask, run_pool
from repro.serve import ReproServer
from repro.telemetry import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    HostSeries,
    RoundRecorder,
    default_flight_dir,
    dump_flight,
    export_parallel_trace,
    format_straggler_report,
    round_counters,
    straggler_report,
    telemetry_probe,
)
from repro.trace import validate_chrome_trace

DIMS = (8, 4, 2)


def _blob(doc):
    return json.dumps(doc, sort_keys=True)


def _run(nparts, **kw):
    scenario = PlaneScenario(name="neighbor", dims=DIMS, msg_bytes=2048)
    return run_scenario(scenario, nparts, **kw)


def _double(payload):
    return {"value": payload * 2}


# -- unit: the recorders -----------------------------------------------------


def _round(round_no, **overrides):
    rec = {
        "round_no": round_no,
        "t0_s": 0.1 * round_no,
        "publish_s": 0.001,
        "collect_s": 0.002,
        "absorb_s": 0.003,
        "advance_s": 0.004,
        "poll_wait_s": 0.0015,
        "horizon_ps": 1000,
        "nprime_ps": 900,
        "exports": 2,
        "imports": 3,
        "events": 10 * (round_no + 1),
    }
    rec.update(overrides)
    return rec


class TestRoundRecorder:
    def test_totals_sum_phases_and_traffic(self):
        rec = RoundRecorder(1)
        for i in range(3):
            rec.record_round(**_round(i))
        doc = rec.to_jsonable()
        assert doc["part"] == 1
        assert len(doc["rounds"]) == 3
        totals = doc["totals"]
        assert totals["rounds"] == 3
        assert totals["publish_s"] == pytest.approx(0.003)
        assert totals["advance_s"] == pytest.approx(0.012)
        assert totals["poll_wait_s"] == pytest.approx(0.0045)
        assert totals["exports"] == 6 and totals["imports"] == 9
        # events is cumulative per round; the total is the last value
        assert totals["events"] == 30

    def test_tail_events_bounded_oldest_first(self):
        rec = RoundRecorder(0)
        for i in range(10):
            rec.record_round(**_round(i))
        tail = rec.tail_events(4)
        assert [ev["round"] for ev in tail] == [6, 7, 8, 9]
        assert all(ev["kind"] == "round" and ev["part"] == 0 for ev in tail)
        # stamped against the recorder's wall-clock base
        assert tail[0]["t_unix"] == pytest.approx(rec.base_unix + 0.6)

    def test_round_counters(self):
        a, b = RoundRecorder(0), RoundRecorder(1)
        for i in range(4):
            a.record_round(**_round(i))
        for i in range(2):
            b.record_round(**_round(i, exports=1, imports=0))
        counters = round_counters([a.to_jsonable(), b.to_jsonable(), None])
        assert counters == {
            "parallel.partitions": 2,
            "parallel.rounds": 4,
            "parallel.exports": 8 + 2,
            "parallel.imports": 12,
            "parallel.events": 40 + 20,
        }


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        events = rec.events()
        assert len(events) == 4
        assert [ev["i"] for ev in events] == [6, 7, 8, 9]
        assert rec.recorded == 10

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_sorts_events_and_stamps_schema(self, tmp_path):
        events = [
            {"t_unix": 3.0, "kind": "late"},
            {"t_unix": 1.0, "kind": "early"},
        ]
        path = dump_flight(
            str(tmp_path), reason="manual", role="unit/test", events=events,
            detail="forced",
        )
        doc = json.loads(open(path).read())
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["reason"] == "manual"
        assert doc["role"] == "unit/test"
        assert doc["pid"] == os.getpid()
        assert doc["detail"] == "forced"
        assert [ev["kind"] for ev in doc["events"]] == ["early", "late"]
        # role is sanitized in the filename, never the document
        assert "flight-unit-test-" in os.path.basename(path)

    def test_default_flight_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        assert default_flight_dir() is None
        monkeypatch.setenv("REPRO_FLIGHT_DIR", "/tmp/flights")
        assert default_flight_dir() == "/tmp/flights"


class TestHostSeries:
    def test_empty_summary(self):
        assert HostSeries("x").summary() == {"samples": 0}

    def test_summary_tracks_extrema_and_last(self):
        series = HostSeries("x")
        for value in (3, 1, 4):
            series.sample(value)
        summary = series.summary()
        assert summary["samples"] == 3
        assert summary["last"] == 4
        assert summary["min"] == 1 and summary["max"] == 4
        assert summary["mean"] == pytest.approx(8 / 3)
        assert "time_weighted_mean" in summary


class TestStragglerReport:
    def _docs(self):
        fast, slow = RoundRecorder(0), RoundRecorder(1)
        for i in range(3):
            fast.record_round(**_round(i, advance_s=0.001, poll_wait_s=0.01))
            slow.record_round(**_round(i, advance_s=0.1))
        return [fast.to_jsonable(), slow.to_jsonable()]

    def test_attributes_wall_to_slowest(self):
        report = straggler_report(self._docs())
        assert report["rounds"] == 3 and report["partitions"] == 2
        assert report["slowest_partition"] == 1
        # per-round wall is the straggler's duration; p1's advance dominates
        assert report["wall_s"] == pytest.approx(3 * (0.001 + 0.002 + 0.003 + 0.1))
        assert report["simulate_s"] == pytest.approx(0.3)
        by_part = {row["part"]: row for row in report["by_partition"]}
        assert by_part[1]["straggler_rounds"] == 3
        assert by_part[0]["straggler_rounds"] == 0
        assert len(report["worst_rounds"]) == 3

    def test_empty_and_missing_docs(self):
        assert straggler_report([None, None])["partitions"] == 0
        report = straggler_report([None] + self._docs())
        assert report["partitions"] == 2

    def test_format_marks_slowest(self):
        text = format_straggler_report(straggler_report(self._docs()))
        assert "p01 *" in text and "p00  " in text
        assert "transport-wait" in text
        assert "slowest partition" in text


# -- the contract: telemetry never changes a gated byte ----------------------


class TestByteIdentity:
    @pytest.mark.parametrize("nparts", [2, 4, 8])
    def test_memory_transport_identical_with_telemetry(self, nparts):
        base = _run(1)
        plain = _run(nparts, transport="memory")
        instrumented = _run(nparts, transport="memory", telemetry=True)
        assert _blob(instrumented["result"]) == _blob(base["result"])
        assert _blob(instrumented["result"]) == _blob(plain["result"])
        telemetry = instrumented["info"]["telemetry"]
        assert len(telemetry["partitions"]) == nparts
        assert telemetry["straggler"]["rounds"] == instrumented["info"]["rounds"] + 1
        assert "telemetry" not in plain["info"]

    def test_pool_transport_identical_with_telemetry(self):
        base = _run(1)
        instrumented = _run(2, transport="pool", telemetry=True)
        assert _blob(instrumented["result"]) == _blob(base["result"])
        info = instrumented["info"]
        telemetry = info["telemetry"]
        assert len(telemetry["partitions"]) == 2
        # the file transport accounts its polling instead of spinning silently
        assert info["poll_wait_s"] >= 0.0
        assert info["pool"]["pool.spawns"] == 2
        assert info["pool"]["pool.completions"] == 2
        assert info["pool"]["pool.crashes"] == 0

    def test_sigkill_respawn_identical_and_flight_dumped(
        self, tmp_path, monkeypatch
    ):
        base = _run(1)
        monkeypatch.setenv("REPRO_POOL_TEST_KILL", "plane-neighbor-part01")
        flight = tmp_path / "flights"
        part = _run(
            2, transport="pool", telemetry=True, flight_dir=str(flight)
        )
        assert _blob(part["result"]) == _blob(base["result"])
        counters = part["info"]["pool"]
        assert counters["pool.crashes"] >= 1
        assert counters["pool.retries"] >= 1
        assert counters["pool.spawns"] >= 3
        dumps = glob.glob(str(flight / "flight-pool-parent-*.json"))
        assert len(dumps) == 1
        doc = json.loads(open(dumps[0]).read())
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["reason"] == "worker-crash"
        assert "plane-neighbor-part01: crash" in doc["detail"]
        kinds = {ev["kind"] for ev in doc["events"]}
        # pool lifecycle interleaved with the survivors' round tails
        assert {"pool.spawn", "pool.crash", "pool.retry", "round"} <= kinds
        stamps = [ev["t_unix"] for ev in doc["events"]]
        assert stamps == sorted(stamps)


# -- the merged Perfetto trace -----------------------------------------------


class TestPerfettoExport:
    @pytest.fixture(scope="class")
    def telemetry_docs(self):
        run = _run(4, transport="memory", telemetry=True)
        return run["info"]["telemetry"]["partitions"]

    def test_one_process_track_per_partition(self, telemetry_docs):
        doc = export_parallel_trace(telemetry_docs)
        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        assert {ev["pid"] for ev in events} == {0, 1, 2, 3}
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {i: f"partition {i}" for i in range(4)}

    def test_phase_spans_tile_their_round(self, telemetry_docs):
        events = export_parallel_trace(telemetry_docs)["traceEvents"]
        rounds = [
            ev for ev in events
            if ev["ph"] == "X" and ev["name"].startswith("round ")
        ]
        phases = [
            ev for ev in events
            if ev["ph"] == "X" and not ev["name"].startswith("round ")
        ]
        assert rounds and len(phases) == 4 * len(rounds)
        for span in rounds:
            children = [
                ev for ev in phases
                if ev["pid"] == span["pid"]
                and span["ts"] <= ev["ts"]
                and ev["ts"] + ev["dur"] <= span["ts"] + span["dur"] + 1e-6
            ]
            assert len(children) >= 4
            tiled = sum(
                ev["dur"] for ev in children
                if abs(ev["ts"] - span["ts"]) < span["dur"] + 1e-6
            )
            assert tiled >= span["dur"] - 1e-3

    def test_round_args_carry_protocol_state(self, telemetry_docs):
        events = export_parallel_trace(telemetry_docs)["traceEvents"]
        spans = [ev for ev in events if ev["name"] == "round 0"]
        assert len(spans) == 4
        for span in spans:
            assert set(span["args"]) == {
                "horizon_ps", "nprime_ps", "exports", "imports", "events",
            }

    def test_written_file_round_trips(self, telemetry_docs, tmp_path):
        path = tmp_path / "trace.json"
        doc = export_parallel_trace(telemetry_docs, path=str(path))
        assert json.loads(path.read_text()) == doc

    def test_no_docs_rejected(self):
        with pytest.raises(ValueError, match="no partition telemetry"):
            export_parallel_trace([None, None])


# -- forced failures produce post-mortems ------------------------------------


class TestCausalityFlightDump:
    def test_causality_error_dumps_round_tail(self, tmp_path, monkeypatch):
        # fail partition 1's absorb from round 1 on: the driver must dump
        # the recorded round tail before re-raising (the genuine
        # floor-check arithmetic is covered by test_parallel_sim's
        # TestCausalityGuard; this test pins the post-mortem path)
        real_absorb = engine.PartitionRunner.absorb

        def failing_absorb(self, docs):
            imported = real_absorb(self, docs)
            if self.idx == 1 and docs and docs[0]["round"] >= 1:
                raise CausalityError(
                    "import at 5 ps below safe floor 999 ps (forced)"
                )
            return imported

        monkeypatch.setattr(engine.PartitionRunner, "absorb", failing_absorb)
        with pytest.raises(CausalityError):
            _run(2, transport="memory", flight_dir=str(tmp_path))
        dumps = glob.glob(str(tmp_path / "flight-memory-part*.json"))
        assert len(dumps) == 1
        assert "part01" in dumps[0]
        doc = json.loads(open(dumps[0]).read())
        assert doc["reason"] == "causality-error"
        assert "safe floor" in doc["detail"]
        kinds = [ev["kind"] for ev in doc["events"]]
        # the last rounds before the violation, then the violation itself
        assert "round" in kinds
        assert kinds[-1] == "causality-error"

    def test_no_flight_dir_means_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        run = _run(2, transport="memory")
        assert run["info"]["rounds"] > 0
        assert glob.glob(str(tmp_path / "flight-*.json")) == []


class TestDirExchangePollWait:
    def test_poll_wait_accumulates_while_peer_lags(self, tmp_path):
        exchange = DirExchange(str(tmp_path), deadline_s=10.0)
        exchange.publish(0, 0, {"part": 0})

        def late_publish():
            time.sleep(0.05)
            exchange.publish(0, 1, {"part": 1})

        thread = threading.Thread(target=late_publish)
        thread.start()
        docs = exchange.collect(0, 2)
        thread.join()
        assert [doc["part"] for doc in docs] == [0, 1]
        assert exchange.poll_wait_s > 0.0
        assert exchange.polls >= 1

    def test_wedged_diagnostics_cite_cumulative_wait(self, tmp_path):
        exchange = DirExchange(str(tmp_path), deadline_s=0.05)
        exchange.publish(0, 0, {"part": 0})
        with pytest.raises(RuntimeError, match="cumulative poll-wait"):
            exchange.collect(0, 2)
        assert exchange.polls >= 1


# -- pool lifecycle events ---------------------------------------------------


class TestPoolLifecycle:
    def test_inline_run_records_completions(self):
        tasks = [PoolTask(task_id=f"t{i}", payload=i) for i in range(3)]
        outcome = run_pool(tasks, _double, workers=1)
        events = [entry["event"] for entry in outcome.lifecycle]
        assert events == ["complete"] * 3
        assert all("wall_s" in entry for entry in outcome.lifecycle)
        counters = outcome.counters()
        assert counters["pool.completions"] == 3
        assert counters["pool.spawns"] == 0
        assert counters["pool.failures"] == 0

    def test_crash_records_spawn_crash_retry_sequence(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_TEST_KILL", "t1")
        tasks = [PoolTask(task_id=f"t{i}", payload=i) for i in range(2)]
        outcome = run_pool(tasks, _double, workers=2)
        assert outcome.results["t1"] == {"value": 2}
        counters = outcome.counters()
        assert counters["pool.crashes"] >= 1
        assert counters["pool.retries"] >= 1
        assert counters["pool.spawns"] >= 3
        assert counters["pool.completions"] == 2
        t1_events = [
            entry["event"] for entry in outcome.lifecycle
            if entry["task"] == "t1"
        ]
        assert t1_events[:3] == ["spawn", "crash", "retry"]
        assert t1_events[-1] == "complete"
        stamps = [entry["t_unix"] for entry in outcome.lifecycle]
        assert stamps == sorted(stamps)


# -- serve instrumentation ---------------------------------------------------


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(port=0, cache_dir=str(tmp_path), batch_window_s=0.01)
    srv.start()
    conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=300)
    yield srv, conn
    conn.close()
    srv.stop()


def _get(conn, path):
    conn.request("GET", path)
    resp = conn.getresponse()
    return resp.status, resp.read()


def _post(conn, path, doc):
    conn.request("POST", path, body=json.dumps(doc))
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


class TestServeTelemetry:
    def test_stats_exposes_queue_internals_and_spans(self, server):
        _, conn = server
        body = {"size": 64}
        status, first = _post(conn, "/v1/trace", body)
        assert status == 200 and first["response"]["cache"] == "miss"
        status, second = _post(conn, "/v1/trace", body)
        assert second["response"]["cache"] == "hit"
        status, raw = _get(conn, "/v1/stats")
        assert status == 200
        doc = json.loads(raw)
        queue = doc["queue"]
        assert queue["requests"] == 2
        assert queue["depth"] == 0
        assert queue["queue_depth"]["samples"] >= 2
        assert queue["batch_sizes"]["samples"] >= 2
        assert queue["batch_sizes"]["max"] >= 1
        spans = doc["recent_requests"]
        assert [span["cache"] for span in spans] == ["miss", "hit"]
        for span in spans:
            assert span["req_kind"] == "trace"
            assert {
                "normalize_s", "queue_wait_s", "lookup_s",
                "execute_s", "store_s",
            } <= set(span)
        # a hit costs a lookup, never an execute or store
        assert spans[1]["execute_s"] == 0.0 and spans[1]["store_s"] == 0.0
        assert spans[0]["execute_s"] > 0.0

    def test_metrics_endpoint_renders_prometheus(self, server):
        _, conn = server
        _post(conn, "/v1/trace", {"size": 64})
        _post(conn, "/v1/trace", {"size": 64})
        status, raw = _get(conn, "/v1/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 2" in text
        assert "repro_serve_cache_hits 1" in text
        assert "repro_serve_cache_hit_rate 0.5" in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_batch_size" in text

    def test_metrics_document_offline(self, tmp_path):
        srv = ReproServer(port=0, cache_dir=str(tmp_path))
        doc = srv.metrics_document()
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["counters"]["serve.requests"] == 0
        assert doc["gauges"]["serve.queue.depth"] == {"samples": 0}
        assert doc["gauges"]["serve.workers"]["last"] == 1.0


# -- the probe and the CLI surfaces ------------------------------------------


class TestProbeAndCLI:
    def test_telemetry_probe_memory_transport(self):
        probe = telemetry_probe(transport="memory", dims=(6, 2, 2))
        counters = probe["counters"]
        assert counters["parallel.partitions"] == 2
        assert counters["parallel.rounds"] > 0
        assert counters["parallel.events"] > 0
        assert "pool.spawns" not in counters  # memory transport: no pool
        assert probe["straggler"]["partitions"] == 2
        assert len(probe["partitions"]) == 2

    def test_cli_trace_parallel_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "parallel-trace.json"
        rc = main([
            "trace", "--parallel", "2", "--transport", "memory",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        assert {ev["pid"] for ev in doc["traceEvents"]} == {0, 1}
        text = capsys.readouterr().out
        assert "slowest partition" in text
        assert "partition tracks" in text

    def test_cli_trace_parallel_rejects_one_partition(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="at least 2"):
            main(["trace", "--parallel", "1"])

    def test_cli_stats_telemetry_folds_fleet_counters(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "stats.json"
        rc = main([
            "stats", "--fast", "--max-bytes", "256", "--no-reconcile",
            "--telemetry", "--json", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["counters"]["parallel.partitions"] == 2
        assert doc["counters"]["pool.spawns"] == 2
        assert "telemetry probe" in capsys.readouterr().out
