"""Smoke-run the example programs (they are part of the public surface).

The big NetPIPE sweep is exercised by the benchmarks already; every
other example runs here end to end so a regression in the public API
cannot silently rot them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "one-way latency" in out and "5." in out

    def test_latency_breakdown(self, capsys):
        run_example("latency_breakdown")
        out = capsys.readouterr().out
        assert "INTERRUPT" in out and "cross-check" in out

    def test_exhaustion_recovery(self, capsys):
        run_example("exhaustion_recovery")
        out = capsys.readouterr().out
        assert "NODE PANIC" in out and "30/30" in out

    def test_accelerated_mode(self, capsys):
        run_example("accelerated_mode")
        out = capsys.readouterr().out
        assert "accelerated 0" in out  # zero interrupts

    def test_mpi_stencil(self, capsys):
        run_example("mpi_stencil")
        out = capsys.readouterr().out
        assert "residual" in out

    def test_lustre_service_node(self, capsys):
        run_example("lustre_service_node")
        out = capsys.readouterr().out
        assert "objects written then read back: 4" in out

    def test_fft_transpose(self, capsys):
        run_example("fft_transpose")
        out = capsys.readouterr().out
        assert "verified on every rank" in out

    def test_redstorm_block(self, capsys):
        run_example("redstorm_block")
        out = capsys.readouterr().out
        assert "320 point-to-point transfers" in out

    def test_chaos_recovery(self, capsys):
        run_example("chaos_recovery")
        out = capsys.readouterr().out
        assert "payloads intact : True" in out
        assert "replay identical: True" in out
        assert "PTL_NI_FAIL (no hang, no exception)" in out
