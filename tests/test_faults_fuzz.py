"""Fuzzed fault plans through the reliable transport.

Hypothesis generates random (seeded, shrinkable) :class:`FaultPlan`\\ s
and drives them through ``verify_payload_integrity`` and the dead-link
exhaustion path.  The invariants:

* every *recoverable* plan (finite outages, sub-certainty loss rates,
  a generous retry budget) ends with every payload delivered intact,
  exactly once — ``ok`` is True and the run terminates;
* ``verify_payload_integrity`` never silently passes corrupt data:
  whenever corruption was injected and the check still reports ok, the
  firmware provably detected it (CRC errors) and recovered
  (retransmits) — corrupt bytes cannot reach the buffer unnoticed;
* a dead link yields exactly one ``SEND_END``/``PTL_NI_FAIL`` per
  message — never zero (hang), never two (duplicate completion);
* the same plan replayed gives bit-identical recovery behaviour (the
  injector's RNG is fully seeded).

The heavy tests build a two-node machine per example, so they run a
fixed small example count on PRs and a deeper one when
``HYPOTHESIS_PROFILE=nightly`` is set.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ChunkAction,
    FaultPlan,
    LinkOutage,
    OutageMode,
    ScriptedFault,
    verify_payload_integrity,
)
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import DEFAULT_CONFIG
from repro.machine.builder import build_pair
from repro.portals import EventKind, NIFailType
from repro.sim import us

pytestmark = pytest.mark.property

_NIGHTLY = os.environ.get("HYPOTHESIS_PROFILE") == "nightly"
_HEAVY_EXAMPLES = 40 if _NIGHTLY else 8

#: quick retransmit clock + deep retry budget: every finite fault is
#: recoverable in simulated microseconds
RECOVER_FAST = DEFAULT_CONFIG.replace(
    reliable_transport=True,
    retransmit_timeout=us(15),
    gobackn_backoff=us(5),
    gobackn_backoff_max=us(25),
)

#: dead wire + tiny retry budget (the test_gobackn_exhaustion idiom)
DEAD = FaultPlan(outages=(LinkOutage(start=0, end=None, mode=OutageMode.DROP),))
FAST_EXHAUST = DEFAULT_CONFIG.replace(
    reliable_transport=True,
    gobackn_max_retries=2,
    gobackn_backoff=us(5),
    gobackn_backoff_max=us(15),
    retransmit_timeout=us(15),
)

_SIZES = [1, 257, 4096]


@st.composite
def recoverable_plans(draw) -> FaultPlan:
    """Plans whose faults are all finite / sub-certainty: go-back-N with
    a deep retry budget must always recover from them."""
    outages = []
    for _ in range(draw(st.integers(0, 2))):
        start = draw(st.integers(0, us(40)))
        duration = draw(st.integers(us(1), us(30)))
        mode = draw(st.sampled_from([OutageMode.STALL, OutageMode.DROP]))
        outages.append(LinkOutage(start=start, end=start + duration, mode=mode))
    script = tuple(
        ScriptedFault(index=idx, action=draw(st.sampled_from(list(ChunkAction))))
        for idx in draw(st.lists(st.integers(0, 40), max_size=3, unique=True))
    )
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        drop_prob=draw(st.sampled_from([0.0, 0.01, 0.05, 0.1])),
        corrupt_prob=draw(st.sampled_from([0.0, 0.01, 0.05, 0.1])),
        outages=tuple(outages),
        script=script,
    )


@settings(max_examples=_HEAVY_EXAMPLES, deadline=None)
@given(plan=recoverable_plans())
def test_recoverable_plans_deliver_intact_exactly_once(plan):
    check = verify_payload_integrity(plan, _SIZES, config=RECOVER_FAST)
    assert check["checked"] == len(_SIZES)
    assert check["ok"], f"corrupt delivery under {plan}: {check['mismatches']}"
    assert check["ok"] == (not check["mismatches"])

    injected = check["report"]["injected"]
    recovery = check["report"]["recovery"]
    # integrity can only hold *silently* if nothing was actually lost or
    # corrupted on the wire; otherwise the firmware must show its work
    if injected.get("chunks_corrupted", 0):
        assert recovery.get("crc_errors", 0) >= 1, (
            "corrupt chunks reached the buffer without a CRC detection"
        )
    if injected.get("chunks_dropped", 0):
        assert (
            recovery.get("retransmits", 0) + recovery.get("timeout_retransmits", 0)
        ) >= 1, "dropped chunks were delivered without any retransmit"


@settings(max_examples=_HEAVY_EXAMPLES, deadline=None)
@given(plan=recoverable_plans())
def test_same_plan_replays_bit_identically(plan):
    first = verify_payload_integrity(plan, _SIZES, config=RECOVER_FAST)
    second = verify_payload_integrity(plan, _SIZES, config=RECOVER_FAST)
    assert first["ok"] == second["ok"]
    assert first["mismatches"] == second["mismatches"]
    assert first["report"]["injected"] == second["report"]["injected"]
    assert first["report"]["recovery"] == second["report"]["recovery"]
    assert first["machine"].now == second["machine"].now


def _run_dead_link(messages: int, nbytes: int):
    machine, na, nb = build_pair(
        FAST_EXHAUST, policy=ExhaustionPolicy.GO_BACK_N, fault_plan=DEAD
    )
    pa, pb = na.create_process(), nb.create_process()
    events = []

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(128)
        md = yield from api.PtlMDBind(proc.alloc(nbytes), eq=eq)
        for _ in range(messages):
            yield from api.PtlPut(md, target, 4, 0x1234, length=nbytes)
        fails = 0
        while fails < messages:
            ev = yield from api.PtlEQWait(eq)
            events.append(ev)
            if (
                ev.kind is EventKind.SEND_END
                and ev.ni_fail_type is NIFailType.FAIL
            ):
                fails += 1
        return fails

    hs = pa.spawn(sender, pb.id)
    machine.run()
    assert hs.triggered, "sender hung waiting for failure events"
    if not hs.ok:
        raise hs.value
    return machine, na, events


@settings(max_examples=_HEAVY_EXAMPLES, deadline=None)
@given(
    messages=st.integers(1, 4),
    nbytes=st.sampled_from([64, 2048, 8192]),
)
def test_dead_link_fails_each_message_exactly_once(messages, nbytes):
    machine, na, events = _run_dead_link(messages, nbytes)
    failures = [
        ev
        for ev in events
        if ev.kind is EventKind.SEND_END and ev.ni_fail_type is NIFailType.FAIL
    ]
    assert len(failures) == messages
    assert na.firmware.counters["gobackn_failures"] == messages
    # quiesced: nothing (watchdogs, timers) left running after exhaustion
    end = machine.now
    machine.run()
    assert machine.now == end
