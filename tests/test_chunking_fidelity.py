"""Chunked vs exact per-packet simulation (the DESIGN.md §5 claim).

The fabric simulates payload in configurable chunks for tractability;
setting ``chunk_bytes = packet_bytes`` gives exact per-packet runs.
These tests verify the acceleration is faithful: timing at both
granularities agrees to within a small tolerance, and data movement is
identical.
"""

import pytest

from repro.analysis import latency_at, peak_bandwidth
from repro.hw.config import SeaStarConfig
from repro.netpipe import PortalsPutModule, run_series

EXACT = SeaStarConfig(chunk_bytes=64)        # one packet per event
DEFAULT = SeaStarConfig()                    # 4 KB chunks
COARSE = SeaStarConfig(chunk_bytes=16384)    # very coarse


class TestTimingFidelity:
    @pytest.mark.parametrize("nbytes", [1, 13, 1024, 8192])
    def test_latency_matches_exact_simulation(self, nbytes):
        exact = run_series(PortalsPutModule(), "pingpong", [nbytes], config=EXACT)
        fast = run_series(PortalsPutModule(), "pingpong", [nbytes], config=DEFAULT)
        # mid sizes batch slightly at coarser granularity; 1 KB chunks
        # stay within ~6% of the exact per-packet run
        assert latency_at(fast, nbytes) == pytest.approx(
            latency_at(exact, nbytes), rel=0.07
        )

    def test_bandwidth_matches_exact_simulation(self):
        size = [256 * 1024]
        exact = run_series(PortalsPutModule(), "pingpong", size, config=EXACT)
        fast = run_series(PortalsPutModule(), "pingpong", size, config=DEFAULT)
        assert peak_bandwidth(fast) == pytest.approx(
            peak_bandwidth(exact), rel=0.03
        )

    def test_coarse_chunks_still_reasonable(self):
        size = [1 << 20]
        fast = run_series(PortalsPutModule(), "pingpong", size, config=DEFAULT)
        coarse = run_series(PortalsPutModule(), "pingpong", size, config=COARSE)
        assert peak_bandwidth(coarse) == pytest.approx(
            peak_bandwidth(fast), rel=0.05
        )

    def test_small_messages_unaffected_by_chunk_size(self):
        # inline messages never touch the payload path at all
        exact = run_series(PortalsPutModule(), "pingpong", [8], config=EXACT)
        coarse = run_series(PortalsPutModule(), "pingpong", [8], config=COARSE)
        assert latency_at(exact, 8) == latency_at(coarse, 8)


class TestDataFidelity:
    @pytest.mark.parametrize("chunk", [64, 256, 4096, 16384])
    def test_payload_identical_across_granularities(self, chunk):
        import numpy as np

        from repro.machine.builder import build_pair
        from repro.portals import EventKind

        from .conftest import drain_events, fill_pattern, make_target, pattern, run_to_completion

        cfg = SeaStarConfig(chunk_bytes=chunk)
        machine, na, nb = build_pair(cfg)
        pa, pb = na.create_process(), nb.create_process()
        n = 40_000

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=n)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return bytes(buf)

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(n)
            fill_pattern(buf)
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, 4, 0x1234)
            yield proc.sim.timeout(500_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        data, _ = run_to_completion(machine, hr, hs)
        assert data == bytes(pattern(n))
