"""End-to-end fault injection: recovery, determinism, single-fault
survival (property), link flaps under MPI, and retry exhaustion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ChunkAction,
    FaultPlan,
    LinkOutage,
    OutageMode,
    ScriptedFault,
    named_plan,
    verify_payload_integrity,
)
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import DEFAULT_CONFIG
from repro.machine.builder import build_pair
from repro.mpi import create_world, run_world
from repro.portals import EventKind, NIFailType
from repro.sim import us

from .conftest import pattern

GO_BACK_N = ExhaustionPolicy.GO_BACK_N

#: sizes spanning single-chunk, multi-chunk and many-chunk messages
SIZES = [1, 13, 1024, 4096, 40_000]


class TestRecovery:
    def test_drop_plan_delivers_everything(self):
        result = verify_payload_integrity(named_plan("drop-5pct"), SIZES)
        assert result["ok"], result["mismatches"]
        recovery = result["report"]["recovery"]
        injected = result["report"]["injected"]
        assert injected["chunks_dropped"] > 0
        assert recovery["retransmits"] > 0
        assert recovery["naks_sent"] > 0

    def test_corruption_detected_and_recovered(self):
        plan = FaultPlan(seed=3, corrupt_prob=0.05)
        result = verify_payload_integrity(plan, SIZES)
        assert result["ok"], result["mismatches"]
        report = result["report"]
        assert report["injected"]["chunks_corrupted"] > 0
        assert report["recovery"]["crc_errors"] > 0
        assert report["recovery"]["retransmits"] > 0

    def test_clean_plan_needs_no_recovery(self):
        # drop_prob 0 but a scripted fault far past the workload: the
        # injector is live yet never fires
        plan = FaultPlan(script=(ScriptedFault(10_000_000),))
        result = verify_payload_integrity(plan, [1, 4096])
        assert result["ok"]
        assert result["report"]["recovery"].get("retransmits", 0) == 0


class TestDeterminism:
    def test_same_plan_same_seed_replays_identically(self):
        plan = named_plan("drop-5pct", seed=11)
        a = verify_payload_integrity(plan, SIZES)
        b = verify_payload_integrity(plan, SIZES)
        assert a["machine"].now == b["machine"].now
        assert a["report"]["injected"] == b["report"]["injected"]
        assert a["report"]["recovery"] == b["report"]["recovery"]

    def test_different_seed_differs(self):
        # not guaranteed in general, but with ~200 chunks at 5% loss the
        # fault sequence differing is astronomically likely
        a = verify_payload_integrity(named_plan("drop-5pct", seed=1), SIZES)
        b = verify_payload_integrity(named_plan("drop-5pct", seed=2), SIZES)
        assert (
            a["report"]["injected"] != b["report"]["injected"]
            or a["machine"].now != b["machine"].now
        )


class TestSingleFaultProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=48),
        action=st.sampled_from([ChunkAction.DROP, ChunkAction.CORRUPT]),
    )
    def test_any_single_chunk_fault_still_delivers(self, index, action):
        """Drop or corrupt ANY single wire chunk — data or control, by
        global index — and every payload still arrives byte-identical."""
        plan = FaultPlan(script=(ScriptedFault(index, action),))
        result = verify_payload_integrity(plan, [1, 1024, 4096])
        assert result["ok"], (index, action, result["mismatches"])


class TestMPIUnderFlaps:
    def test_send_recv_survives_mid_transfer_stall_flap(self):
        # the link goes dark for 150 us right as the rendezvous transfer
        # is streaming; traffic parks at the serializer and resumes
        plan = FaultPlan(
            outages=(
                LinkOutage(start=us(40), end=us(190), mode=OutageMode.STALL),
            )
        )
        cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
        machine, a, b = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        world = create_world(machine, [a, b])
        nbytes = 300_000

        def main(mpi, rank):
            if rank == 0:
                buf = pattern(nbytes).copy()
                yield from mpi.send(buf, 1, tag=5)
                return None
            buf = np.zeros(nbytes, dtype=np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=5)
            return status.count, buf

        _, (count, data) = run_world(machine, world, main)
        assert count == nbytes
        assert np.array_equal(data, pattern(nbytes))
        # the flap actually bit: time was spent parked on a dead link
        assert machine.injector.counters["stall_time_ps"] > 0

    def test_send_recv_survives_lossy_flap(self):
        # same style of window but the link EATS chunks: end-to-end
        # recovery (NAK + timeout retransmit) must rebuild the stream.
        # Eager-sized message: rendezvous fetches with PtlGet, and GET
        # reply loss is unrecoverable by design (no wire_seq on replies).
        plan = FaultPlan(
            outages=(
                LinkOutage(start=us(40), end=us(120), mode=OutageMode.DROP),
            )
        )
        cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
        machine, a, b = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        world = create_world(machine, [a, b])
        nbytes = 100_000

        def main(mpi, rank):
            if rank == 0:
                buf = pattern(nbytes).copy()
                yield from mpi.send(buf, 1, tag=9)
                return None
            buf = np.zeros(nbytes, dtype=np.uint8)
            status = yield from mpi.recv(buf, source=0, tag=9)
            return status.count, buf

        _, (count, data) = run_world(machine, world, main)
        assert count == nbytes
        assert np.array_equal(data, pattern(nbytes))
        assert machine.injector.counters["outage_drops"] > 0


class TestLinkKill:
    def test_dead_link_degrades_to_failure_event(self):
        """A permanently dead link must surface PTL_NI_FAIL on the
        sender's EQ — never hang, never raise."""
        plan = FaultPlan(
            outages=(LinkOutage(start=0, end=None, mode=OutageMode.DROP),)
        )
        cfg = DEFAULT_CONFIG.replace(
            reliable_transport=True,
            gobackn_max_retries=3,
            gobackn_backoff=us(5),
            gobackn_backoff_max=us(20),
            retransmit_timeout=us(20),
        )
        machine, na, nb = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        pa, pb = na.create_process(), nb.create_process()
        failures = []

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(64)
            md = yield from api.PtlMDBind(proc.alloc(4096), eq=eq)
            yield from api.PtlPut(md, target, 4, 0x1234, length=4096)
            while True:
                ev = yield from api.PtlEQWait(eq)
                if (
                    ev.kind is EventKind.SEND_END
                    and ev.ni_fail_type is NIFailType.FAIL
                ):
                    failures.append(ev)
                    return True

        hs = pa.spawn(sender, pb.id)
        machine.run()
        assert hs.triggered and hs.ok
        assert len(failures) == 1
        assert na.firmware.counters["gobackn_failures"] >= 1


def _total_wire_chunks(sizes):
    """Chunk count of the clean integrity exchange: run it with a
    scripted fault parked far past the workload and read the injector's
    wire-order chunk counter."""
    plan = FaultPlan(script=(ScriptedFault(10_000_000),))
    result = verify_payload_integrity(plan, sizes)
    assert result["ok"]
    return result["machine"].injector._chunk_index


class TestFinalChunkFaults:
    """Faults on the very last wire chunks of the final message — where
    there is no later traffic whose NAK/SACK could mask a recovery bug;
    only the ack watchdog can notice."""

    SIZES = [1, 1024, 4096]

    @pytest.mark.parametrize("action", [ChunkAction.DROP, ChunkAction.CORRUPT])
    @pytest.mark.parametrize("back", [1, 2])
    def test_fault_on_trailing_chunk_still_delivers(self, action, back):
        total = _total_wire_chunks(self.SIZES)
        # the chunk sequence up to the faulted index is identical to the
        # clean run (fates are decided in wire order), so total-back
        # addresses the same chunk the clean run sent there
        plan = FaultPlan(script=(ScriptedFault(total - back, action),))
        result = verify_payload_integrity(plan, self.SIZES)
        assert result["ok"], (action, back, result["mismatches"])
        injected = result["report"]["injected"]
        assert injected["scripted_faults"] == 1
        recovery = result["report"]["recovery"]
        # something end-to-end had to act: either the data was damaged
        # (retransmit) or a trailing control chunk vanished (timeout
        # retransmit resynchronizes the SACK stream)
        assert (
            recovery.get("retransmits", 0) > 0
            or recovery.get("timeout_retransmits", 0) > 0
            or recovery.get("retransmits_suppressed", 0) > 0
        ), recovery


class TestKillDuringRetransmit:
    """A link kill landing while a retransmit is already in flight: the
    in-flight repair dies with the link, and the sender must still reach
    exactly one terminal verdict per message.

    The plan arms the peer monitor (``peer_timeout``): a kill can land
    *after* the data was SACKed but *before* the Portals ACK made it
    back, and only the monitor's sweep can turn that lost ACK into a
    verdict (retry exhaustion never fires — the transport is satisfied).
    """

    KILL_OFFSETS_US = [2, 5, 10, 20, 40, 80]

    @staticmethod
    def _run_kill(kill_at_us):
        from repro.portals import PTL_ACK_REQ

        plan = FaultPlan(
            script=(ScriptedFault(2, ChunkAction.DROP),),
            outages=(
                LinkOutage(
                    start=us(kill_at_us), end=None, mode=OutageMode.DROP
                ),
            ),
            peer_timeout=us(200),
        )
        cfg = DEFAULT_CONFIG.replace(
            reliable_transport=True,
            gobackn_max_retries=3,
            gobackn_backoff=us(5),
            gobackn_backoff_max=us(20),
            retransmit_timeout=us(20),
        )
        machine, na, nb = build_pair(cfg, policy=GO_BACK_N, fault_plan=plan)
        pa, pb = na.create_process(), nb.create_process()
        terminal = []

        def receiver(proc):
            from repro.portals import (
                PTL_MD_THRESH_INF,
                PTL_NID_ANY,
                PTL_PID_ANY,
                MDOptions,
                ProcessId,
            )

            api = proc.api
            eq = yield from api.PtlEQAlloc(64)
            me = yield from api.PtlMEAttach(
                4, ProcessId(PTL_NID_ANY, PTL_PID_ANY), 0x21
            )
            yield from api.PtlMDAttach(
                me,
                proc.alloc(40_000),
                options=MDOptions.OP_PUT
                | MDOptions.TRUNCATE
                | MDOptions.MANAGE_REMOTE,
                eq=eq,
            )
            while True:
                yield from api.PtlEQWait(eq)

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(64)
            md = yield from api.PtlMDBind(proc.alloc(40_000), eq=eq)
            yield from api.PtlPut(
                md, target, 4, 0x21, length=40_000, ack_req=PTL_ACK_REQ
            )
            while not terminal:
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is EventKind.ACK:
                    terminal.append("acked")
                elif (
                    ev.kind is EventKind.SEND_END
                    and ev.ni_fail_type is NIFailType.FAIL
                ):
                    terminal.append("failed")

        pb.spawn(receiver)
        pa.spawn(sender, pb.id)
        machine.run()
        return machine, na, terminal

    @pytest.mark.parametrize("kill_at_us", KILL_OFFSETS_US)
    def test_exactly_one_terminal_event(self, kill_at_us):
        _machine, _na, terminal = self._run_kill(kill_at_us)
        # never hangs, never double-reports — one verdict, whatever the
        # kill timing did to the repair (or the returning ACK) in flight
        assert len(terminal) == 1, (kill_at_us, terminal)

    def test_sweep_covers_a_retransmit_in_flight(self):
        """At least one kill offset in the sweep must land after a
        retransmit began (otherwise the race above isn't exercised)."""
        hits = 0
        for kill_at_us in self.KILL_OFFSETS_US:
            _machine, na, _terminal = self._run_kill(kill_at_us)
            counters = na.firmware.counters
            if (
                counters["retransmits"] > 0
                or counters["timeout_retransmits"] > 0
            ):
                hits += 1
        assert hits >= 1

    def test_sweep_covers_a_lost_ack(self):
        """...and at least one offset must land in the ACK-loss window:
        data delivered (SACKed) but the Portals ACK eaten by the kill,
        so the verdict can only come from the peer monitor's sweep."""
        assert any(
            na.firmware.counters["peer_death_failures"] > 0
            and terminal == ["failed"]
            for _m, na, terminal in map(self._run_kill, self.KILL_OFFSETS_US)
        )
