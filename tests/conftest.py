"""Shared test fixtures and helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hyp_settings

from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    MDOptions,
    ProcessId,
)
from repro.sim import Simulator

# Hypothesis profiles: PRs run the small derandomized "fast" profile so
# tier-1 stays quick and reproducible; the nightly CI job selects the
# deeper randomized profile via HYPOTHESIS_PROFILE=nightly.
hyp_settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[
        HealthCheck.too_slow,
        # engine_sim is only read (sim.now == 0) across examples
        HealthCheck.function_scoped_fixture,
    ],
)
hyp_settings.register_profile(
    "nightly",
    max_examples=300,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # engine_sim is only read (sim.now == 0) across examples
        HealthCheck.function_scoped_fixture,
    ],
)
hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture(params=[True, False], ids=["fastpath", "legacy"])
def engine_sim(request):
    """A simulator on each scheduler path (flattened sleeps vs legacy
    event objects) — property tests run against both."""
    return Simulator(direct_resume=request.param)


@pytest.fixture
def config():
    """The default calibrated configuration."""
    return SeaStarConfig()


@pytest.fixture
def pair():
    """(machine, node_a, node_b) one hop apart — the NetPIPE setup."""
    return build_pair()


def run_to_completion(machine, *procs):
    """Run the machine; assert every given sim process finished cleanly."""
    machine.run()
    for proc in procs:
        assert proc.triggered, f"process {proc.name} did not finish"
        if not proc.ok:
            raise proc.value
    return [p.value for p in procs]


def make_target(proc, *, portal=4, match_bits=0x1234, size=4096,
                options=None, eq_size=64, threshold=None):
    """Coroutine: set up a standard receive target on ``proc``.

    Returns (eq, me, md, buffer).
    """
    from repro.portals import PTL_MD_THRESH_INF

    api = proc.api
    eq = yield from api.PtlEQAlloc(eq_size)
    me = yield from api.PtlMEAttach(
        portal, ProcessId(PTL_NID_ANY, PTL_PID_ANY), match_bits
    )
    buf = proc.alloc(size)
    opts = (
        options
        if options is not None
        else MDOptions.OP_PUT | MDOptions.OP_GET | MDOptions.TRUNCATE
    )
    md = yield from api.PtlMDAttach(
        me,
        buf,
        options=opts,
        eq=eq,
        threshold=PTL_MD_THRESH_INF if threshold is None else threshold,
    )
    return eq, me, md, buf


def drain_events(api, eq, *, want=None, limit=64):
    """Coroutine: wait for events until ``want`` kinds seen (in order).

    Returns the list of all events consumed.
    """
    seen = []
    kinds_needed = list(want or [])
    while kinds_needed and limit > 0:
        ev = yield from api.PtlEQWait(eq)
        seen.append(ev)
        if ev.kind == kinds_needed[0]:
            kinds_needed.pop(0)
        limit -= 1
    return seen


def fill_pattern(buf: np.ndarray, seed: int = 1) -> None:
    """Deterministic recognizable fill."""
    n = len(buf)
    buf[:] = (np.arange(seed, seed + n) * 31 + 7).astype(np.uint8)


def pattern(n: int, seed: int = 1) -> np.ndarray:
    """The array fill_pattern would produce."""
    return ((np.arange(seed, seed + n) * 31 + 7) % 256).astype(np.uint8)
