"""Firmware data structures: free lists, pendings, sources, mailboxes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fw import (
    CommandFifo,
    FreeList,
    LowerPending,
    Mailbox,
    NicControlBlock,
    Source,
    UpperPending,
)
from repro.sim import Simulator


class TestFreeList:
    def test_alloc_free_cycle(self):
        fl = FreeList([1, 2, 3], name="t")
        assert fl.capacity == 3 and fl.available == 3
        a = fl.alloc()
        assert a == 1 and fl.in_use == 1
        fl.free(a)
        assert fl.available == 3

    def test_exhaustion_returns_none(self):
        fl = FreeList([object()])
        fl.alloc()
        assert fl.alloc() is None

    def test_high_water_tracking(self):
        fl = FreeList(list(range(10)))
        items = [fl.alloc() for _ in range(7)]
        for item in items:
            fl.free(item)
        fl.alloc()
        assert fl.high_water == 7

    def test_over_free_rejected(self):
        fl = FreeList([1])
        with pytest.raises(RuntimeError):
            fl.free(2)

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(st.booleans(), max_size=100))
    def test_conservation_invariant(self, ops):
        """available + in_use == capacity at all times."""
        fl = FreeList(list(range(8)))
        held = []
        for is_alloc in ops:
            if is_alloc:
                item = fl.alloc()
                if item is not None:
                    held.append(item)
            elif held:
                fl.free(held.pop())
            assert fl.available + fl.in_use == fl.capacity
            assert fl.in_use == len(held)


class TestPendings:
    def test_reset_scrubs(self):
        lp = LowerPending(pending_id=1, owner_pid=0)
        lp.upper = UpperPending(pending_id=1)
        lp.state = "busy"
        lp.msg_id = 7
        lp.upper.host_ctx = "ctx"
        lp.reset()
        assert lp.state == "free" and lp.msg_id == 0
        assert lp.upper.host_ctx is None
        assert lp.direct_eq is None and lp.direct_event is None

    def test_identity_equality(self):
        a = LowerPending(pending_id=1, owner_pid=0)
        b = LowerPending(pending_id=1, owner_pid=0)
        assert a != b and a == a


class TestSources:
    def test_attach_allocates_once_per_node(self):
        cb = NicControlBlock(sources=FreeList([Source() for _ in range(4)]))
        s1 = cb.attach_source(7)
        s2 = cb.attach_source(7)
        assert s1 is s2
        assert cb.sources.in_use == 1
        assert s1.src_node == 7 and s1.active

    def test_lookup_missing(self):
        cb = NicControlBlock(sources=FreeList([Source()]))
        assert cb.lookup_source(3) is None

    def test_pool_exhaustion(self):
        cb = NicControlBlock(sources=FreeList([Source(), Source()]))
        assert cb.attach_source(1) is not None
        assert cb.attach_source(2) is not None
        assert cb.attach_source(3) is None

    def test_source_reset(self):
        s = Source()
        s.src_node = 3
        s.next_tx_seq = 9
        s.expect_rx_seq = 4
        s.reset()
        assert s.src_node == -1 and s.next_tx_seq == 0 and s.expect_rx_seq == 0


class TestMailbox:
    def test_command_fifo_indices(self, sim):
        fifo = CommandFifo(sim)
        fifo.post("a")
        fifo.post("b")
        assert fifo.depth == 2 and fifo.tail == 2

        got = []

        def consumer():
            for _ in range(2):
                cmd = yield fifo.get()
                fifo.consumed()
                got.append(cmd)

        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]
        assert fifo.depth == 0

    def test_streamed_commands_keep_order(self, sim):
        mbox = Mailbox(sim, name="t")
        for i in range(10):
            mbox.post_command(i)
        out = []

        def fw():
            for _ in range(10):
                out.append((yield mbox.commands.get()))

        sim.process(fw())
        sim.run()
        assert out == list(range(10))
        assert mbox.stats["commands"] == 10

    def test_synchronous_command_busy_waits_for_result(self, sim):
        """Commands that return a result make the host busy-wait on the
        result FIFO (section 4.1)."""
        mbox = Mailbox(sim, name="t")
        result_holder = []

        def host():
            result = yield from mbox.post_command_await_result({"op": "stats"})
            result_holder.append((result, sim.now))

        def fw():
            cmd = yield mbox.commands.get()
            yield sim.timeout(5000)
            mbox.results.post({"ok": True, "echo": cmd})

        sim.process(host())
        sim.process(fw())
        sim.run()
        result, when = result_holder[0]
        assert result["ok"] and when == 5000
        assert mbox.stats["synchronous_commands"] == 1
