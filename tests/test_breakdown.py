"""Analytic latency decomposition vs the simulated stack.

If the analytic budget and the simulation drift apart, a path stage was
silently added or dropped somewhere — this is the model's
self-consistency gate.
"""

import pytest

from repro.analysis import (
    breakdown_total_us,
    format_breakdown,
    latency_at,
    put_latency_breakdown,
)
from repro.hw.config import DEFAULT_CONFIG, SeaStarConfig
from repro.netpipe import PortalsPutModule, run_series


class TestStructure:
    def test_inline_has_one_interrupt(self):
        stages = put_latency_breakdown(nbytes=1)
        interrupts = [s for s in stages if "INTERRUPT" in s.name]
        assert len(interrupts) == 1

    def test_payload_has_two_interrupts(self):
        stages = put_latency_breakdown(nbytes=1024)
        interrupts = [s for s in stages if "INTERRUPT" in s.name]
        assert len(interrupts) == 2

    def test_interrupts_dominate(self):
        """The paper: 'A significant amount of the current latency is due
        to interrupt processing by the host processor.'"""
        stages = put_latency_breakdown(nbytes=1)
        total = sum(s.cost_ps for s in stages)
        irq = sum(s.cost_ps for s in stages if "INTERRUPT" in s.name)
        assert irq / total > 0.3

    def test_wire_time_is_negligible(self):
        stages = put_latency_breakdown(nbytes=1)
        total = sum(s.cost_ps for s in stages)
        wire = sum(s.cost_ps for s in stages if s.where == "wire")
        assert wire / total < 0.05

    def test_hops_scale_only_the_wire(self):
        near = put_latency_breakdown(nbytes=1, hops=1)
        far = put_latency_breakdown(nbytes=1, hops=50)
        delta = sum(s.cost_ps for s in far) - sum(s.cost_ps for s in near)
        assert delta == 49 * DEFAULT_CONFIG.hop_latency

    def test_format_contains_subtotals(self):
        text = format_breakdown(nbytes=1)
        assert "TOTAL" in text and "host" in text and "subtotal" in text


class TestAgreementWithSimulation:
    @pytest.fixture(scope="class")
    def simulated(self):
        return run_series(PortalsPutModule(), "pingpong", [1, 12, 1024, 2048, 8192])

    @pytest.mark.parametrize("nbytes", [1, 12, 1024, 2048])
    def test_analytic_matches_simulated(self, simulated, nbytes):
        analytic = breakdown_total_us(nbytes=nbytes)
        measured = latency_at(simulated, nbytes)
        assert analytic == pytest.approx(measured, rel=0.05)

    def test_larger_messages_only_loosely_bounded(self, simulated):
        """Above ~2 KB, payload streaming overlaps the host path in ways
        the serial budget does not model; the analytic number becomes a
        lower bound rather than an estimate."""
        analytic = breakdown_total_us(nbytes=8192)
        measured = latency_at(simulated, 8192)
        assert analytic < measured < analytic * 2

    def test_tracks_config_changes(self):
        """A perturbed config moves the analytic and simulated numbers
        together."""
        perturbed = SeaStarConfig(interrupt_overhead=4_000_000)
        analytic = breakdown_total_us(perturbed, nbytes=1)
        series = run_series(PortalsPutModule(), "pingpong", [1], config=perturbed)
        assert analytic == pytest.approx(latency_at(series, 1), rel=0.05)
        assert analytic > breakdown_total_us(nbytes=1) + 1.9
