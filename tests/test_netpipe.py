"""NetPIPE harness: size schedules, patterns, measurement arithmetic."""

import pytest

from repro.netpipe import (
    MPIModule,
    Measurement,
    NetPipeRunner,
    PortalsGetModule,
    PortalsPutModule,
    decade_sizes,
    netpipe_sizes,
    run_series,
)
from repro.mpi import MPICH1
from repro.sim import MB, US


class TestSizeSchedule:
    def test_covers_range(self):
        sizes = netpipe_sizes(1, 8 * MB)
        assert sizes[0] == 1 and sizes[-1] == 8 * MB

    def test_sorted_unique(self):
        sizes = netpipe_sizes()
        assert sizes == sorted(set(sizes))

    def test_perturbations_present(self):
        sizes = netpipe_sizes(1, 1024, perturbation=3)
        assert 61 in sizes and 64 in sizes and 67 in sizes

    def test_midpoints_present(self):
        sizes = netpipe_sizes(1, 1024, perturbation=0)
        assert 96 in sizes  # 64 + 32

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            netpipe_sizes(0, 10)
        with pytest.raises(ValueError):
            netpipe_sizes(10, 5)

    def test_decade_sizes(self):
        sizes = decade_sizes(1, 1024)
        assert sizes == [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]

    def test_decade_bounds_validated(self):
        # same contract as netpipe_sizes: min >= 1, min <= max
        with pytest.raises(ValueError):
            decade_sizes(0, 10)
        with pytest.raises(ValueError):
            decade_sizes(10, 5)

    def test_decade_range_without_power_of_two(self):
        # no power of two in [5, 7]: the endpoint must still be emitted
        assert decade_sizes(5, 7) == [7]


class TestMeasurement:
    def test_pingpong_latency_is_half_rtt(self):
        m = Measurement("pingpong", 1, total_ps=10 * US, repeats=1, bytes_moved=1)
        assert m.latency_us == pytest.approx(5.0)

    def test_pingpong_bandwidth_uses_half_rtt(self):
        m = Measurement(
            "pingpong", MB, total_ps=2 * 10**9, repeats=1, bytes_moved=MB
        )
        # 1 MiB over 1 ms one-way = 1000 MB/s
        assert m.bandwidth_mb_s == pytest.approx(1000.0)

    def test_stream_bandwidth_uses_full_window(self):
        m = Measurement("stream", MB, total_ps=10**9, repeats=1, bytes_moved=MB)
        assert m.bandwidth_mb_s == pytest.approx(1000.0)

    def test_repeats_averaged(self):
        m = Measurement("pingpong", 1, total_ps=40 * US, repeats=4, bytes_moved=4)
        assert m.latency_us == pytest.approx(5.0)


class TestRunnerPatterns:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            NetPipeRunner(PortalsPutModule()).run("zigzag", [1])

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            NetPipeRunner(PortalsPutModule()).run("pingpong", [])

    def test_pingpong_series_structure(self):
        series = run_series(PortalsPutModule(), "pingpong", [1, 64, 1024])
        assert series.module == "put" and series.pattern == "pingpong"
        assert series.sizes() == [1, 64, 1024]
        assert len(series.latencies_us()) == 3
        assert all(lat > 0 for lat in series.latencies_us())

    def test_latency_grows_with_size(self):
        series = run_series(PortalsPutModule(), "pingpong", [1, 65536])
        lats = series.latencies_us()
        assert lats[1] > lats[0]

    def test_stream_faster_than_pingpong_for_put(self):
        sizes = [4096]
        stream = run_series(PortalsPutModule(), "stream", sizes)
        ping = run_series(PortalsPutModule(), "pingpong", sizes)
        assert stream.points[0].bandwidth_mb_s > ping.points[0].bandwidth_mb_s

    def test_get_stream_cannot_pipeline(self):
        """Figure 6's signature: streaming barely helps gets."""
        sizes = [4096]
        put_stream = run_series(PortalsPutModule(), "stream", sizes)
        get_stream = run_series(PortalsGetModule(), "stream", sizes)
        # gets are serialized round trips: far below the pipelined puts
        assert (
            get_stream.points[0].bandwidth_mb_s
            < 0.6 * put_stream.points[0].bandwidth_mb_s
        )

    def test_bidir_moves_both_directions(self):
        sizes = [262144]
        uni = run_series(PortalsPutModule(), "pingpong", sizes)
        bi = run_series(PortalsPutModule(), "bidir", sizes)
        assert bi.points[0].bandwidth_mb_s > 1.5 * uni.points[0].bandwidth_mb_s

    def test_mpi_module_runs_all_patterns(self):
        for pattern in ("pingpong", "stream", "bidir"):
            series = run_series(MPIModule(MPICH1), pattern, [1, 4096])
            assert len(series.points) == 2

    def test_multi_hop_runner(self):
        near = run_series(PortalsPutModule(), "pingpong", [1], hops=1)
        far = run_series(PortalsPutModule(), "pingpong", [1], hops=10)
        assert far.points[0].latency_us > near.points[0].latency_us
