"""The simulation service: request canonicalization, the batch queue
(memoization, dedup, pool sharding, error paths), and the HTTP front
end end-to-end on an ephemeral port.
"""

import http.client
import json
import threading

import pytest

from repro.cache import ResultCache, cache_key
from repro.serve import (
    BatchQueue,
    ReproServer,
    RequestError,
    ServiceError,
    execute_request,
    normalize_request,
    request_summary,
)

SIZES = [1, 64]  # two tiny points: every sweep in here stays fast


def sweep(**overrides):
    return {"kind": "sweep", "module": "put", "sizes": SIZES, **overrides}


# -- request canonicalization ------------------------------------------------


class TestNormalize:
    def test_defaults_materialized(self):
        req = normalize_request(sweep())
        assert req == {
            "kind": "sweep",
            "module": "put",
            "pattern": "pingpong",
            "hops": 1,
            "accelerated": False,
            "sizes": SIZES,
        }

    def test_equivalent_spellings_share_one_key(self):
        """A schedule spelled via fast/max_bytes and the explicit size
        list it expands to canonicalize identically — one cache entry."""
        from repro.netpipe.sizes import decade_sizes

        by_schedule = normalize_request(
            {"kind": "sweep", "fast": True, "max_bytes": 4096}
        )
        by_list = normalize_request(sweep(sizes=list(decade_sizes(1, 4096))))
        assert by_schedule == by_list
        assert cache_key(by_schedule, code="c") == cache_key(by_list, code="c")

    def test_sizes_sorted_and_deduplicated(self):
        req = normalize_request(sweep(sizes=[64, 1, 64]))
        assert req["sizes"] == [1, 64]

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="unknown field"):
            normalize_request(sweep(workers=4))
        with pytest.raises(RequestError, match="unknown field"):
            normalize_request({"kind": "trace", "size": 1, "plan": "x"})

    def test_explicit_sizes_exclude_schedule_fields(self):
        with pytest.raises(RequestError, match="mutually exclusive"):
            normalize_request(sweep(max_bytes=4096))

    def test_bad_values_rejected(self):
        for doc in (
            "not a dict",
            {"kind": "resimulate"},
            sweep(module="tcp"),
            sweep(sizes=[]),
            sweep(sizes=[0]),
            sweep(sizes=[True]),
            sweep(sizes=[1 << 40]),
            sweep(module="mpich1", accelerated=True),
            {"kind": "trace", "size": 0},
            {"kind": "chaos", "plan": "meteor-strike"},
            {"kind": "chaos", "seed": -1},
        ):
            with pytest.raises(RequestError):
                normalize_request(doc)

    def test_trace_chaos_stats_kinds(self):
        assert normalize_request({"kind": "trace"}) == {
            "kind": "trace",
            "size": 1,
            "hops": 1,
        }
        chaos = normalize_request({"kind": "chaos"})
        assert chaos == {"kind": "chaos", "plan": "drop-1pct", "seed": 0}
        stats = normalize_request({"kind": "stats", "sizes": SIZES})
        assert stats["kind"] == "stats" and stats["sizes"] == SIZES

    def test_summaries_cover_every_kind(self):
        for doc in (sweep(), {"kind": "trace"}, {"kind": "chaos"},
                    {"kind": "stats", "sizes": SIZES}):
            assert request_summary(normalize_request(doc))


class TestExecute:
    def test_sweep_matches_direct_simulation(self):
        from repro.netpipe import PortalsPutModule, run_series

        result = execute_request(normalize_request(sweep()))
        series = run_series(PortalsPutModule(), "pingpong", SIZES)
        assert result["latency_us"] == [p.latency_us for p in series.points]
        assert result["bandwidth_mb_s"] == [
            p.bandwidth_mb_s for p in series.points
        ]

    def test_results_are_json_clean(self):
        result = execute_request(normalize_request({"kind": "trace", "size": 64}))
        assert json.loads(json.dumps(result)) == result
        assert result["latency_ps"] > 0 and result["stages"]


# -- the batch queue ---------------------------------------------------------


@pytest.fixture
def queue_with_cache(tmp_path):
    q = BatchQueue(ResultCache(tmp_path), batch_window_s=0.01)
    q.start()
    yield q
    q.stop()


class TestBatchQueue:
    def test_miss_then_hit_with_provenance(self, queue_with_cache):
        q = queue_with_cache
        first = q.submit(sweep(), timeout_s=120)
        assert first["cache"] == "miss"
        second = q.submit(sweep(), timeout_s=120)
        assert second["cache"] == "hit"
        assert second["key"] == first["key"]
        assert second["result"] == first["result"]
        prov = second["provenance"]
        assert prov["request"] == normalize_request(sweep())
        assert prov["kind"] == "sweep"
        assert prov["code_version"] and prov["package_version"]
        assert q.cache.stats.stores == 1

    def test_concurrent_identical_requests_simulate_once(self, tmp_path):
        q = BatchQueue(ResultCache(tmp_path), batch_window_s=0.25)
        q.start()
        try:
            responses = [None] * 3

            def ask(i):
                responses[i] = q.submit(sweep(), timeout_s=120)

            threads = [
                threading.Thread(target=ask, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # one simulation, one stored artifact, three identical answers
            # (late arrivals land in a second batch and hit the store)
            assert q.stats.executed == 1
            assert q.cache.stats.stores == 1
            keys = {r["key"] for r in responses}
            results = [r["result"] for r in responses]
            assert len(keys) == 1
            assert results[0] == results[1] == results[2]
        finally:
            q.stop()

    def test_distinct_misses_shard_across_the_pool(self, tmp_path):
        q = BatchQueue(
            ResultCache(tmp_path), workers=2, batch_window_s=0.25
        )
        q.start()
        try:
            docs = [sweep(), {"kind": "trace", "size": 64}]
            responses = [None] * len(docs)

            def ask(i):
                responses[i] = q.submit(docs[i], timeout_s=300)

            threads = [
                threading.Thread(target=ask, args=(i,))
                for i in range(len(docs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r is not None for r in responses)
            assert {r["result"]["kind"] for r in responses} == {"sweep", "trace"}
            # pooled answers memoize exactly like inline ones
            assert q.submit(docs[0], timeout_s=120)["cache"] == "hit"
        finally:
            q.stop()

    def test_no_cache_still_attaches_provenance(self):
        q = BatchQueue(None, batch_window_s=0.01)
        q.start()
        try:
            first = q.submit({"kind": "trace", "size": 64}, timeout_s=120)
            again = q.submit({"kind": "trace", "size": 64}, timeout_s=120)
            assert first["cache"] == again["cache"] == "miss"  # nothing memoizes
            assert first["result"] == again["result"]  # but determinism holds
            assert first["provenance"]["request"]["size"] == 64
        finally:
            q.stop()

    def test_malformed_request_never_enters_the_queue(self, queue_with_cache):
        with pytest.raises(RequestError):
            queue_with_cache.submit(sweep(module="tcp"))
        assert queue_with_cache.stats.requests == 0

    def test_execution_failure_is_a_service_error(self, tmp_path, monkeypatch):
        import repro.serve.batch as batch_mod

        def boom(request):
            raise RuntimeError("simulated executor crash")

        monkeypatch.setattr(batch_mod, "execute_payload", boom)
        q = BatchQueue(ResultCache(tmp_path), batch_window_s=0.01)
        q.start()
        try:
            with pytest.raises(ServiceError, match="simulated executor crash"):
                q.submit(sweep(), timeout_s=120)
            assert q.stats.errors == 1
            assert q.cache.stats.stores == 0  # failures are never memoized
        finally:
            q.stop()

    def test_timeout_is_a_service_error(self, tmp_path):
        q = BatchQueue(ResultCache(tmp_path))  # never started: nothing drains
        with pytest.raises(ServiceError, match="timed out"):
            q.submit(sweep(), timeout_s=0.05)


# -- the HTTP front end ------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(port=0, cache_dir=str(tmp_path), batch_window_s=0.01)
    srv.start()
    conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=300)
    yield srv, conn
    conn.close()
    srv.stop()


def get(conn, path):
    conn.request("GET", path)
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


def post(conn, path, doc):
    conn.request("POST", path, body=json.dumps(doc))
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


class TestHTTP:
    def test_health(self, server):
        _, conn = server
        status, doc = get(conn, "/v1/health")
        assert status == 200
        assert doc["ok"] and doc["schema"] == "repro-serve/1"
        assert doc["code_version"] and doc["package_version"]

    def test_repeated_sweep_served_from_cache(self, server):
        _, conn = server
        body = {"module": "put", "sizes": SIZES}
        status, first = post(conn, "/v1/sweep", body)
        assert status == 200 and first["ok"]
        assert first["response"]["cache"] == "miss"
        status, second = post(conn, "/v1/sweep", body)
        assert status == 200
        assert second["response"]["cache"] == "hit"
        assert second["response"]["result"] == first["response"]["result"]
        assert second["response"]["provenance"]["request"]["sizes"] == SIZES

    def test_query_route_equals_kind_route(self, server):
        _, conn = server
        _, by_kind = post(conn, "/v1/trace", {"size": 64})
        _, by_query = post(conn, "/v1/query", {"kind": "trace", "size": 64})
        assert by_kind["response"]["key"] == by_query["response"]["key"]
        assert by_query["response"]["cache"] == "hit"

    def test_batch_endpoint_dedups_and_reports_stats(self, server):
        srv, conn = server
        status, doc = post(
            conn, "/v1/batch", {"requests": [sweep(), sweep(), {"kind": "trace"}]}
        )
        assert status == 200 and doc["ok"]
        assert len(doc["responses"]) == 3
        assert doc["responses"][0]["response"]["key"] == (
            doc["responses"][1]["response"]["key"]
        )
        status, stats = get(conn, "/v1/stats")
        assert status == 200
        assert stats["queue"]["requests"] == 3
        assert srv.cache.stats.stores == 2  # sweep deduped, trace distinct

    def test_batch_items_fail_independently(self, server):
        _, conn = server
        status, doc = post(
            conn,
            "/v1/batch",
            {"requests": [{"kind": "trace", "size": 64}, {"kind": "nope"}]},
        )
        assert status == 207 and not doc["ok"]
        assert doc["responses"][0]["ok"]
        assert not doc["responses"][1]["ok"]

    def test_validation_errors_are_400(self, server):
        _, conn = server
        status, doc = post(conn, "/v1/sweep", {"module": "tcp"})
        assert status == 400 and not doc["ok"] and "module" in doc["error"]
        status, doc = post(conn, "/v1/batch", {"requests": []})
        assert status == 400
        conn.request("POST", "/v1/query", body="not json{")
        resp = conn.getresponse()
        assert resp.status == 400
        json.loads(resp.read())

    def test_unknown_routes_are_404(self, server):
        _, conn = server
        status, _ = get(conn, "/v1/nope")
        assert status == 404
        status, _ = post(conn, "/v1/resimulate", {"kind": "sweep"})
        assert status == 404

    def test_handle_usable_without_sockets(self, tmp_path):
        srv = ReproServer(cache_dir=str(tmp_path), batch_window_s=0.01)
        srv.queue.start()
        try:
            status, doc = srv.handle({"kind": "trace", "size": 64})
            assert status == 200 and doc["response"]["cache"] == "miss"
            status, doc = srv.handle({"kind": "trace", "size": -5})
            assert status == 400
        finally:
            srv.queue.stop()
