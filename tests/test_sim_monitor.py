"""Tracing and measurement utilities."""

import pytest

from repro.sim import Counters, Simulator, TimeSeries, Tracer


class TestTracer:
    def test_records_time_and_category(self, sim):
        tr = Tracer(sim)

        def body():
            tr.emit("start")
            yield sim.timeout(100)
            tr.emit("end", detail={"n": 1})

        sim.process(body())
        sim.run()
        assert [r.time for r in tr.records] == [0, 100]
        assert tr.count("end") == 1
        assert tr.by_category("end")[0].detail == {"n": 1}

    def test_between(self, sim):
        tr = Tracer(sim)

        def body():
            for _ in range(5):
                tr.emit("tick")
                yield sim.timeout(10)

        sim.process(body())
        sim.run()
        assert len(tr.between(10, 40)) == 3

    def test_disabled_tracer_records_nothing(self, sim):
        tr = Tracer(sim, enabled=False)
        tr.emit("x")
        assert tr.records == []

    def test_clear(self, sim):
        tr = Tracer(sim)
        tr.emit("x")
        tr.clear()
        assert tr.count("x") == 0


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        c.incr("a")
        c.incr("a", 4)
        assert c["a"] == 5
        assert c["missing"] == 0

    def test_snapshot_is_copy(self):
        c = Counters()
        c.incr("a")
        snap = c.snapshot()
        c.incr("a")
        assert snap == {"a": 1}

    def test_reset_selected(self):
        c = Counters()
        c.incr("a")
        c.incr("b")
        c.reset(["a"])
        assert c["a"] == 0 and c["b"] == 1

    def test_reset_all(self):
        c = Counters()
        c.incr("a")
        c.reset()
        assert c.snapshot() == {}


class TestTimeSeries:
    def test_stats(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (10, 3.0), (20, 2.0)]:
            ts.sample(t, v)
        assert len(ts) == 3
        assert ts.mean == 2.0
        assert ts.max == 3.0
        assert ts.min == 1.0

    def test_empty_stats_raise(self):
        # An empty series must be distinguishable from one whose samples
        # all happen to be zero, so the statistics refuse to answer.
        ts = TimeSeries("empty")
        for stat in ("mean", "max", "min"):
            with pytest.raises(ValueError, match="no samples"):
                getattr(ts, stat)

    def test_zero_samples_are_real(self):
        ts = TimeSeries("zeros")
        ts.sample(0, 0.0)
        assert ts.mean == 0.0 and ts.max == 0.0 and ts.min == 0.0
