"""End-to-end Portals data movement through the full simulated stack:
puts, gets, acks, truncation, offsets, drops, failed gets."""

import numpy as np
import pytest

from repro.machine.builder import build_pair
from repro.portals import (
    PTL_ACK_REQ,
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    NIFailType,
    ProcessId,
)

from .conftest import drain_events, fill_pattern, make_target, pattern, run_to_completion

ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)
PT = 4
BITS = 0x1234


def run_pair(receiver_body, sender_body):
    machine, na, nb = build_pair()
    pa = na.create_process()
    pb = nb.create_process()
    hr = pb.spawn(receiver_body)
    hs = pa.spawn(sender_body, pb.id)
    return run_to_completion(machine, hr, hs)


class TestPut:
    @pytest.mark.parametrize("nbytes", [0, 1, 12, 13, 64, 1000, 5000, 100_000])
    def test_payload_delivered_intact(self, nbytes):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=max(nbytes, 1))
            ev = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            end = ev[-1]
            return end.mlength, bytes(buf[:nbytes])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(max(nbytes, 1))
            fill_pattern(buf)
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(buf, eq=eq)
            yield from api.PtlPut(md, target, PT, BITS, length=nbytes)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        (mlength, data), _ = run_pair(receiver, sender)
        assert mlength == nbytes
        assert data == bytes(pattern(max(nbytes, 1))[:nbytes])

    def test_put_start_then_end(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc)
            evs = yield from drain_events(
                proc.api, eq, want=[EventKind.PUT_START, EventKind.PUT_END]
            )
            return [e.kind for e in evs]

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(100))
            yield from api.PtlPut(md, target, PT, BITS)
            return True

        kinds, _ = run_pair(receiver, sender)
        assert kinds[0] == EventKind.PUT_START and kinds[-1] == EventKind.PUT_END

    def test_remote_offset_with_manage_remote(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc,
                size=256,
                options=MDOptions.OP_PUT | MDOptions.MANAGE_REMOTE,
            )
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return bytes(buf[:80])

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(16)
            buf[:] = 9
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, PT, BITS, remote_offset=64)
            yield proc.sim.timeout(50_000_000)
            return True

        data, _ = run_pair(receiver, sender)
        assert data[:64] == bytes(64)
        assert data[64:80] == bytes([9]) * 16

    def test_local_offset_slices_source(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=8)
            ev = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return bytes(buf)

        def sender(proc, target):
            api = proc.api
            buf = proc.alloc(32)
            buf[:] = np.arange(32, dtype=np.uint8)
            md = yield from api.PtlMDBind(buf)
            yield from api.PtlPut(md, target, PT, BITS, local_offset=8, length=8)
            yield proc.sim.timeout(50_000_000)
            return True

        data, _ = run_pair(receiver, sender)
        assert data == bytes(range(8, 16))

    def test_truncation_at_target(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=10)
            ev = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return ev[-1].mlength, ev[-1].rlength

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(1000))
            yield from api.PtlPut(md, target, PT, BITS)
            yield proc.sim.timeout(100_000_000)
            return True

        (mlength, rlength), _ = run_pair(receiver, sender)
        assert mlength == 10 and rlength == 1000

    def test_hdr_data_delivered(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc)
            ev = yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return ev[-1].hdr_data

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(4))
            yield from api.PtlPut(md, target, PT, BITS, hdr_data=0xFEEDC0DE)
            yield proc.sim.timeout(50_000_000)
            return True

        hdr_data, _ = run_pair(receiver, sender)
        assert hdr_data == 0xFEEDC0DE

    def test_unmatched_put_dropped_and_counted(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, match_bits=0x777)
            yield proc.sim.timeout(100_000_000)
            return proc.node_id

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(500))
            yield from api.PtlPut(md, target, PT, 0x888)  # wrong bits
            yield proc.sim.timeout(100_000_000)
            return True

        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()
        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        assert nb.kernel.counters["drops_no_match"] == 1
        assert pb.ni.counters["drops"] == 1

    def test_threshold_limits_deliveries(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, threshold=2)
            yield from drain_events(
                proc.api, eq, want=[EventKind.PUT_END, EventKind.PUT_END]
            )
            yield proc.sim.timeout(100_000_000)
            return proc.ni.counters["drops"]

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(4))
            for _ in range(3):
                yield from api.PtlPut(md, target, PT, BITS)
            yield proc.sim.timeout(150_000_000)
            return True

        drops, _ = run_pair(receiver, sender)
        assert drops == 1  # third put found an exhausted MD


class TestAcks:
    def test_ack_event_on_request(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=10)
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(100), eq=eq)
            yield from api.PtlPut(md, target, PT, BITS, ack_req=PTL_ACK_REQ)
            evs = yield from drain_events(api, eq, want=[EventKind.ACK])
            ack = [e for e in evs if e.kind is EventKind.ACK][0]
            return ack.mlength

        _, mlength = run_pair(receiver, sender)
        assert mlength == 10  # truncated length reported in the ack

    def test_ack_disable_suppresses(self):
        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.ACK_DISABLE,
            )
            yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            yield proc.sim.timeout(100_000_000)
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            yield from api.PtlPut(md, target, PT, BITS, ack_req=PTL_ACK_REQ)
            yield from drain_events(api, eq, want=[EventKind.SEND_END])
            yield proc.sim.timeout(100_000_000)
            got_ack = False
            while True:
                ev = eq.try_get()
                if ev is None:
                    break
                if ev.kind is EventKind.ACK:
                    got_ack = True
            return got_ack

        _, got_ack = run_pair(receiver, sender)
        assert not got_ack


class TestGet:
    @pytest.mark.parametrize("nbytes", [1, 12, 100, 4096, 50_000])
    def test_get_fetches_data(self, nbytes):
        def target_side(proc):
            eq, me, md, buf = yield from make_target(
                proc,
                size=nbytes,
                options=MDOptions.OP_GET | MDOptions.MANAGE_REMOTE,
            )
            fill_pattern(buf)
            yield from drain_events(proc.api, eq, want=[EventKind.GET_END])
            return True

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            buf = proc.alloc(nbytes)
            md = yield from api.PtlMDBind(buf, eq=eq)
            yield from api.PtlGet(md, target, PT, BITS)
            evs = yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            end = [e for e in evs if e.kind is EventKind.REPLY_END][0]
            return end.mlength, bytes(buf)

        _, (mlength, data) = run_pair(target_side, initiator)
        assert mlength == nbytes
        assert data == bytes(pattern(nbytes))

    def test_get_remote_offset(self):
        def target_side(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=100,
                options=MDOptions.OP_GET | MDOptions.MANAGE_REMOTE,
            )
            buf[:] = np.arange(100, dtype=np.uint8)
            yield proc.sim.timeout(100_000_000)
            return True

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            buf = proc.alloc(10)
            md = yield from api.PtlMDBind(buf, eq=eq)
            yield from api.PtlGet(md, target, PT, BITS, remote_offset=40)
            yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            return bytes(buf)

        _, data = run_pair(target_side, initiator)
        assert data == bytes(range(40, 50))

    def test_failed_get_reports_dropped(self):
        def target_side(proc):
            # no matching entry at all
            yield proc.sim.timeout(100_000_000)
            return True

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(64), eq=eq)
            yield from api.PtlGet(md, target, PT, BITS)
            evs = yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            end = [e for e in evs if e.kind is EventKind.REPLY_END][0]
            return end.ni_fail_type, end.mlength

        _, (fail, mlength) = run_pair(target_side, initiator)
        assert fail is NIFailType.DROPPED and mlength == 0

    def test_get_consumes_target_threshold(self):
        def target_side(proc):
            eq, me, md, buf = yield from make_target(
                proc,
                size=64,
                options=MDOptions.OP_GET | MDOptions.MANAGE_REMOTE,
                threshold=1,
            )
            yield proc.sim.timeout(200_000_000)
            return md.threshold

        def initiator(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(16)
            md = yield from api.PtlMDBind(proc.alloc(64), eq=eq)
            yield from api.PtlGet(md, target, PT, BITS)
            yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            # second get: target MD now exhausted -> dropped
            md2 = yield from api.PtlMDBind(proc.alloc(64), eq=eq)
            yield from api.PtlGet(md2, target, PT, BITS)
            evs = yield from drain_events(api, eq, want=[EventKind.REPLY_END])
            end = [e for e in evs if e.kind is EventKind.REPLY_END][-1]
            return end.ni_fail_type

        threshold, fail = run_pair(target_side, initiator)
        assert threshold == 0
        assert fail is NIFailType.DROPPED


class TestBidirectional:
    def test_simultaneous_puts_both_directions(self):
        def side(proc, peer):
            api = proc.api
            eq, me, md, buf = yield from make_target(proc, size=64)
            src = proc.alloc(64)
            src[:] = proc.pid
            smd = yield from api.PtlMDBind(src)
            yield from api.PtlPut(smd, peer, PT, BITS)
            yield from drain_events(api, eq, want=[EventKind.PUT_END])
            return int(buf[0])

        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()
        ha = pa.spawn(side, pb.id)
        hb = pb.spawn(side, pa.id)
        va, vb = run_to_completion(machine, ha, hb)
        assert va == pb.pid and vb == pa.pid
