"""Targeted tests for less-traveled branches across the stack."""

import pytest

from repro.analysis import ascii_chart, format_machine_report
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.sim import Channel, Simulator, Store, US


class TestStoreDrainHandoff:
    def test_get_after_drain_hands_off_from_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def producer():
            yield store.put("a")
            yield store.put("b")  # blocks: capacity 1

        def consumer():
            yield sim.timeout(10)
            drained = store.drain()  # empties buffer while putter waits
            got.append(("drained", drained))
            value = yield store.get()  # direct handoff from blocked putter
            got.append(("got", value))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [("drained", ["a"]), ("got", "b")]


class TestChartScales:
    def test_log_y_axis(self):
        text = ascii_chart(
            [1, 10, 100],
            [[1.0, 100.0, 10000.0]],
            ["logy"],
            logy=True,
            width=30,
            height=6,
        )
        assert "1e+04" in text or "10000" in text

    def test_linear_x_axis(self):
        text = ascii_chart(
            [0.0, 5.0, 10.0], [[1.0, 2.0, 3.0]], ["lin"], logx=False
        )
        assert "lin" in text


class TestReportRecoveryLine:
    def test_gobackn_counters_surface_in_report(self):
        from repro.portals import EventKind, MDOptions

        from .conftest import drain_events, make_target, run_to_completion

        cfg = SeaStarConfig(
            generic_rx_pendings=2,
            generic_tx_pendings=32,
            num_generic_pendings=34,
            gobackn_backoff=5 * US,
        )
        machine, na, nb = build_pair(cfg, policy=ExhaustionPolicy.GO_BACK_N)
        pa, pb = na.create_process(), nb.create_process()
        count = 25

        def receiver(proc):
            eq, me, md, buf = yield from make_target(
                proc, size=16, eq_size=512,
                options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            )
            for _ in range(count):
                yield from drain_events(proc.api, eq, want=[EventKind.PUT_END])
            return True

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(512)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            for _ in range(count):
                yield from api.PtlPut(md, target, 4, 0x1234, length=8)
            for _ in range(count):
                yield from drain_events(api, eq, want=[EventKind.SEND_END])
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        run_to_completion(machine, hr, hs)
        report = format_machine_report(machine)
        assert "recovery:" in report
        assert "naks_sent" in report or "retransmits" in report


class TestSimCornerCases:
    def test_all_of_with_preprocessed_event(self):
        sim = Simulator()
        early = sim.timeout(5)
        sim.run()  # early is processed
        late = sim.timeout(50)
        done = []

        def waiter():
            result = yield sim.all_of([early, late])
            done.append(len(result))

        sim.process(waiter())
        sim.run()
        # the pre-processed event is handled via immediate callback
        assert done == [2]

    def test_channel_put_wakes_in_arrival_order(self):
        sim = Simulator()
        ch = Channel(sim)
        woke = []

        def getter(tag, delay):
            yield sim.timeout(delay)
            value = yield ch.get()
            woke.append((tag, value))

        sim.process(getter("first", 1))
        sim.process(getter("second", 2))

        def putter():
            yield sim.timeout(10)
            ch.put("x")
            ch.put("y")

        sim.process(putter())
        sim.run()
        assert woke == [("first", "x"), ("second", "y")]

    def test_run_until_before_next_event(self):
        sim = Simulator()
        sim.timeout(1000)
        assert sim.run(until=500) == 500
        assert sim.now == 500
        sim.run()
        assert sim.now == 1000
