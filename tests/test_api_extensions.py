"""PtlNIStatus / PtlNIDist and go-back-N terminal failure (SEND_FAILED)."""

import pytest

from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import EventKind, NIFailType
from repro.sim import US

from .conftest import drain_events, make_target, run_to_completion


class TestNIStatus:
    def test_drop_counter_visible_via_api(self):
        machine, na, nb = build_pair()
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, match_bits=0x111)
            yield proc.sim.timeout(100_000_000)
            drops = yield from proc.api.PtlNIStatus("drops")
            return drops

        def sender(proc, target):
            api = proc.api
            md = yield from api.PtlMDBind(proc.alloc(8))
            yield from api.PtlPut(md, target, 4, 0x999)  # no match
            yield proc.sim.timeout(100_000_000)
            return True

        hr = pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        drops, _ = run_to_completion(machine, hr, hs)
        assert drops == 1

    def test_missing_register_reads_zero(self):
        machine, na, nb = build_pair()
        pa = na.create_process()

        def body(proc):
            value = yield from proc.api.PtlNIStatus("nonexistent")
            return value

        handle = pa.spawn(body)
        (value,) = run_to_completion(machine, handle)
        assert value == 0


class TestNIDist:
    @pytest.mark.parametrize("hops", [1, 4, 12])
    def test_distance_equals_route_hops(self, hops):
        machine, na, nb = build_pair(hops=hops)
        pa, pb = na.create_process(), nb.create_process()

        def body(proc, target):
            dist = yield from proc.api.PtlNIDist(target)
            return dist

        handle = pa.spawn(body, pb.id)
        (dist,) = run_to_completion(machine, handle)
        assert dist == hops

    def test_distance_to_self_is_zero(self):
        machine, na, nb = build_pair()
        pa = na.create_process()

        def body(proc):
            dist = yield from proc.api.PtlNIDist(proc.id)
            return dist

        handle = pa.spawn(body)
        (dist,) = run_to_completion(machine, handle)
        assert dist == 0

    def test_accelerated_bridge_also_answers(self):
        machine, na, nb = build_pair(hops=3)
        pa = na.create_process(accelerated=True)
        pb = nb.create_process()

        def body(proc, target):
            dist = yield from proc.api.PtlNIDist(target)
            return dist

        handle = pa.spawn(body, pb.id)
        (dist,) = run_to_completion(machine, handle)
        assert dist == 3


class TestGoBackNTerminalFailure:
    def test_send_failed_surfaces_as_ni_fail(self):
        """When retransmission gives up (max retries), the initiator gets
        SEND_END with PTL_NI_FAIL instead of hanging forever."""
        cfg = SeaStarConfig(
            # a receiver with NO receive pendings at all: every incoming
            # request is refused, so retransmission must eventually give
            # up and report failure to the sender
            generic_rx_pendings=0,
            generic_tx_pendings=34,
            num_generic_pendings=34,
            gobackn_backoff=2 * US,
            gobackn_max_retries=3,
        )
        machine, na, nb = build_pair(cfg, policy=ExhaustionPolicy.GO_BACK_N)
        pa, pb = na.create_process(), nb.create_process()

        def receiver(proc):
            eq, me, md, buf = yield from make_target(proc, size=16, eq_size=512)
            while True:
                yield from proc.api.PtlEQWait(eq)

        def sender(proc, target):
            api = proc.api
            eq = yield from api.PtlEQAlloc(512)
            md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
            fails = 0
            local = 0
            for _ in range(20):
                yield from api.PtlPut(md, target, 4, 0x1234, length=8)
            # local completions arrive first; terminal failures follow
            # once the retransmission budget is exhausted
            while fails < 20:
                ev = yield from api.PtlEQWait(eq)
                if ev.kind is not EventKind.SEND_END:
                    continue
                if ev.ni_fail_type is NIFailType.FAIL:
                    fails += 1
                else:
                    local += 1
            return fails, local

        pb.spawn(receiver)
        hs = pa.spawn(sender, pb.id)
        machine.run(until=50_000 * US)
        assert hs.triggered and hs.ok
        fails, local = hs.value
        assert fails == 20, "every message must eventually fail"
        assert local == 20, "local completion (buffer reusable) still fires"
        assert na.firmware.counters["gobackn_failures"] == 20
        # nothing was ever delivered
        assert nb.firmware.generic.rx_pendings.capacity == 0
