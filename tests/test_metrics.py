"""The metrics registry, attribution, and exporters."""

import json

import pytest

from repro.metrics import (
    EXPORT_SCHEMA,
    Gauge,
    Histogram,
    MetricCounter,
    MetricsRegistry,
    Timeline,
    attribute_windows,
    canonical_json,
    format_attribution,
    format_reconciliation,
    machine_counters,
    metrics_document,
    reconcile_with_spans,
    saturating_by_decade,
    to_prometheus_text,
)
from repro.netpipe import NetPipeRunner, PortalsPutModule
from repro.sim import Simulator
from repro.sim.monitor import TimeSeries


class TestInstruments:
    def test_counter_monotonic(self):
        c = MetricCounter("c")
        c.incr()
        c.incr(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.incr(-1)

    def test_gauge_summary_time_weighted(self):
        g = Gauge("g")
        g.sample(0, 10.0)
        g.sample(100, 0.0)
        s = g.summary(until=200)
        assert s["samples"] == 2
        assert s["last"] == 0.0
        assert s["min"] == 0.0 and s["max"] == 10.0
        # 10 held over [0,100), 0 held over [100,200) -> mean 5
        assert s["time_weighted_mean"] == pytest.approx(5.0)

    def test_gauge_empty_summary(self):
        assert Gauge("g").summary() == {"samples": 0}

    def test_timeline_busy_total(self):
        t = Timeline("t")
        t.add(0, 10)
        t.add(20, 25)
        assert t.busy_total() == 15
        assert len(t) == 2

    def test_timeline_busy_between_prorates_edges(self):
        t = Timeline("t")
        t.add(0, 10)
        t.add(20, 30)
        assert t.busy_between(5, 25) == 10  # 5 from each interval
        assert t.busy_between(10, 20) == 0  # gap only
        assert t.busy_between(0, 30) == 20
        assert t.busy_between(30, 30) == 0  # empty window
        assert t.utilization(0, 40) == pytest.approx(0.5)

    def test_histogram_bucket_edges(self):
        h = Histogram("h", [10, 100])
        h.observe(10)  # le=10 bucket (inclusive upper bound)
        h.observe(11)  # le=100 bucket
        h.observe(1000)  # overflow
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(1021)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [10, 10])
        with pytest.raises(ValueError):
            Histogram("h", [100, 10])


class TestTimeWeightedStats:
    def test_integral_empty(self):
        assert TimeSeries("s").integral() == 0.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("s").time_weighted_mean()

    def test_single_sample(self):
        s = TimeSeries("s")
        s.sample(50, 7.0)
        # no span yet: integral 0, mean degenerates to the sample value
        assert s.integral() == 0.0
        assert s.time_weighted_mean() == 7.0
        # extended to until: value held for the whole span
        assert s.integral(until=150) == pytest.approx(700.0)
        assert s.time_weighted_mean(until=150) == pytest.approx(7.0)

    def test_step_series(self):
        s = TimeSeries("s")
        s.sample(0, 0.0)
        s.sample(10, 4.0)
        s.sample(30, 1.0)
        # 0*10 + 4*20 + (last value contributes nothing without until)
        assert s.integral() == pytest.approx(80.0)
        assert s.time_weighted_mean() == pytest.approx(80.0 / 30)
        assert s.integral(until=40) == pytest.approx(90.0)
        assert s.time_weighted_mean(until=40) == pytest.approx(90.0 / 40)

    def test_sample_mean_is_still_sample_mean(self):
        s = TimeSeries("s")
        s.sample(0, 0.0)
        s.sample(1, 0.0)
        s.sample(1000, 3.0)
        assert s.mean == pytest.approx(1.0)  # not time-weighted


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry(Simulator())
        assert reg.counter("a") is reg.counter("a")
        assert reg.timeline("t") is reg.timeline("t")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry(Simulator())
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry(Simulator())
        reg.histogram("h", [1, 2])
        with pytest.raises(ValueError):
            reg.histogram("h", [1, 2, 3])

    def test_snapshot_shape(self):
        sim = Simulator()
        reg = MetricsRegistry(sim)
        reg.counter("c").incr(3)
        reg.gauge("g").sample(0, 1.0)
        reg.timeline("t.busy").add(0, 5)
        reg.histogram("h", [10]).observe(4)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"]["g"]["samples"] == 1
        assert snap["timelines"]["t.busy"]["busy_ps"] == 5
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["now_ps"] == sim.now


class TestMachineIntegration:
    @pytest.fixture(scope="class")
    def run(self):
        runner = NetPipeRunner(PortalsPutModule(), metrics=True, trace=True)
        series = runner.run("pingpong", [1, 64, 4096, 65536])
        return runner, series

    def test_disabled_mode_identity(self, run):
        _, with_metrics = run
        plain = NetPipeRunner(PortalsPutModule()).run(
            "pingpong", [1, 64, 4096, 65536]
        )
        assert [(p.nbytes, p.total_ps) for p in plain.points] == [
            (p.nbytes, p.total_ps) for p in with_metrics.points
        ]

    def test_attribution_reproduces_paper_narrative(self, run):
        runner, _ = run
        rows = attribute_windows(runner.machine.metrics, runner.windows)
        assert [r.nbytes for r in rows] == [1, 64, 4096, 65536]
        by_size = {r.nbytes: r for r in rows}
        # small messages: host (interrupt/app) dominated
        assert by_size[1].saturating == "host"
        # large messages: the TX DMA engine is the ceiling
        assert by_size[65536].saturating == "txdma"
        for row in rows:
            assert 0.0 < row.saturating_utilization <= 1.0
            assert row.window_ps > 0

    def test_saturating_by_decade(self, run):
        runner, _ = run
        rows = attribute_windows(runner.machine.metrics, runner.windows)
        verdicts = saturating_by_decade(rows)
        assert verdicts[0] == "host"
        assert verdicts[4] == "txdma"

    def test_reconciliation_within_tolerance(self, run):
        runner, _ = run
        rows = reconcile_with_spans(runner.machine, tolerance=0.05)
        assert rows, "reconciliation produced no rows"
        components = {r.component for r in rows}
        assert {"txdma", "rxdma", "fw", "wire"} <= components
        for row in rows:
            assert row.ok, f"{row.component} node {row.node}: {row.delta_frac:.2%}"

    def test_format_tables_render(self, run):
        runner, _ = run
        rows = attribute_windows(runner.machine.metrics, runner.windows)
        table = format_attribution(rows)
        assert "txdma" in table and "*" in table
        rec = format_reconciliation(reconcile_with_spans(runner.machine))
        assert "yes" in rec and "NO" not in rec

    def test_export_document(self, run):
        runner, _ = run
        machine = runner.machine
        rows = attribute_windows(machine.metrics, runner.windows)
        doc = metrics_document(
            machine.metrics,
            machine=machine,
            attribution=rows,
            reconciliation=reconcile_with_spans(machine),
            meta={"module": "put"},
        )
        assert doc["schema"] == EXPORT_SCHEMA
        assert doc["meta"] == {"module": "put"}
        # registry timelines and legacy component counters both present
        assert "node0.txdma.busy" in doc["timelines"]
        assert any(k.startswith("node0.host.") for k in doc["counters"])
        assert len(doc["attribution"]) == 4
        assert all(r["ok"] for r in doc["reconciliation"])
        # canonical JSON round-trips
        assert json.loads(canonical_json(doc)) == doc

    def test_prometheus_text(self, run):
        runner, _ = run
        doc = metrics_document(runner.machine.metrics, machine=runner.machine)
        text = to_prometheus_text(doc)
        assert "# TYPE repro_node0_txdma_busy_ps_total counter" in text
        assert "repro_node0_txdma_msg_bytes_bucket{le=" in text
        assert 'le="+Inf"' in text
        # every metric name is Prometheus-legal
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert name.replace("_", "a").isalnum(), name

    def test_machine_counters_namespacing(self, run):
        runner, _ = run
        flat = machine_counters(runner.machine)
        assert "link.packets_carried" in flat
        assert any(k.startswith("fabric.") for k in flat)
        assert any(k.startswith("node1.fw.") for k in flat)

    def test_attribution_requires_metrics(self):
        reg = MetricsRegistry(Simulator())
        with pytest.raises(ValueError, match="metrics enabled"):
            attribute_windows(reg, [(1, 0, 10)])


def _parse_prom_labels(block: str) -> dict:
    """Tiny exposition-format label parser: the inverse of the exporter's
    escaping, so a round-trip proves the escapes are correct."""
    labels = {}
    i = 0
    while i < len(block):
        eq = block.index("=", i)
        key = block[i:eq]
        assert block[eq + 1] == '"'
        j = eq + 2
        out = []
        while block[j] != '"':
            ch = block[j]
            if ch == "\\":
                esc = block[j + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[esc])
                j += 2
            else:
                out.append(ch)
                j += 1
        labels[key] = "".join(out)
        i = j + 1
        if i < len(block) and block[i] == ",":
            i += 1
    return labels


class TestPrometheusExposition:
    """The text exporter against hostile values: label escaping must
    round-trip, NaN must spell ``NaN``, and every histogram must close
    with a ``+Inf`` bucket equal to ``_count``."""

    def test_hostile_label_values_round_trip(self):
        hostile = {
            "path": 'C:\\temp\\"quoted"',
            "multiline": "line one\nline two",
            "trailing_backslash": "ends with \\",
            "literal_backslash_n": "not a newline: \\n",
            "plain": "ok",
        }
        doc = {"schema": EXPORT_SCHEMA, "meta": hostile}
        text = to_prometheus_text(doc)
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_meta_info{")
        )
        # one physical line: the newline inside a value must be escaped
        block = line[len("repro_meta_info{"): line.rindex("}")]
        assert _parse_prom_labels(block) == hostile

    def test_nan_and_inf_render_canonically(self):
        doc = {
            "schema": EXPORT_SCHEMA,
            "gauges": {
                "weird": {
                    "samples": 3,
                    "last": float("nan"),
                    "time_weighted_mean": float("inf"),
                },
            },
        }
        text = to_prometheus_text(doc)
        assert "repro_weird NaN" in text
        assert "repro_weird_time_weighted_mean +Inf" in text
        # Python float spellings are not legal exposition values
        assert "nan" not in text and "inf" not in text

    def test_histogram_closes_with_inf_bucket(self):
        doc = {
            "schema": EXPORT_SCHEMA,
            "histograms": {
                "lat": {
                    "edges": [1.0, 2.0],
                    "counts": [1, 2, 3],  # overflow slot included
                    "count": 6,
                    "sum": 11.5,
                },
            },
        }
        text = to_prometheus_text(doc)
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 6' in text
        assert "repro_lat_count 6" in text

    def test_explicit_inf_edge_not_duplicated(self):
        doc = {
            "schema": EXPORT_SCHEMA,
            "histograms": {
                "lat": {
                    "edges": [1.0, float("inf")],
                    "counts": [1, 2, 0],
                    "count": 3,
                    "sum": 2.5,
                },
            },
        }
        text = to_prometheus_text(doc)
        assert text.count('le="+Inf"') == 1
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
