"""Fabric transport: in-order delivery, backpressure, wire timing, CRC."""

import pytest

from repro.hw.config import SeaStarConfig
from repro.net import Fabric, LinkModel, Torus3D, chunk_message
from repro.sim import NS, Simulator


def make_fabric(sim, dims=(4, 1, 1), config=None, **kw):
    cfg = config or SeaStarConfig()
    fabric = Fabric(sim, Torus3D(dims, wrap=(False, False, False)), cfg, **kw)
    for node in range(fabric.topology.num_nodes):
        fabric.attach(node)
    return fabric, cfg


def msg_chunks(cfg, src, dst, body):
    return chunk_message(
        src=src,
        dst=dst,
        header=f"hdr:{src}->{dst}",
        body_bytes=body,
        payload=None,
        packet_bytes=cfg.packet_bytes,
        chunk_bytes=cfg.chunk_bytes,
    )


class TestDelivery:
    def test_single_chunk_arrives(self, sim):
        fabric, cfg = make_fabric(sim)
        chunk = msg_chunks(cfg, 0, 1, 0)[0]
        got = []

        def receiver():
            c = yield fabric.ports[1].rx.get()
            got.append((c.header, sim.now))

        def sender():
            yield fabric.send(chunk)

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got and got[0][0] == "hdr:0->1"
        # 1 hop: serialization (25.6ns) + hop latency (45ns)
        expected = cfg.link_packet_time() + cfg.hop_latency
        assert got[0][1] == expected

    def test_hop_count_scales_latency(self, sim):
        fabric, cfg = make_fabric(sim, dims=(4, 1, 1))
        arrival = {}

        def receiver(node):
            c = yield fabric.ports[node].rx.get()
            arrival[node] = sim.now

        def sender():
            yield fabric.send(msg_chunks(cfg, 0, 1, 0)[0])
            yield fabric.send(msg_chunks(cfg, 0, 3, 0)[0])

        sim.process(receiver(1))
        sim.process(receiver(3))
        sim.process(sender())
        sim.run()
        assert arrival[3] - arrival[1] >= 2 * cfg.hop_latency

    def test_in_order_per_pair(self, sim):
        fabric, cfg = make_fabric(sim)
        order = []

        def receiver():
            for _ in range(20):
                c = yield fabric.ports[1].rx.get()
                order.append(c.msg_id)

        def sender():
            for _ in range(20):
                yield fabric.send(msg_chunks(cfg, 0, 1, 0)[0])

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert order == sorted(order)

    def test_unattached_destination_rejected(self, sim):
        cfg = SeaStarConfig()
        fabric = Fabric(sim, Torus3D((4, 1, 1)), cfg)
        fabric.attach(0)
        with pytest.raises(KeyError):
            fabric.send(msg_chunks(cfg, 0, 2, 0)[0])

    def test_counters(self, sim):
        fabric, cfg = make_fabric(sim)

        def receiver():
            yield fabric.ports[1].rx.get()

        def sender():
            yield fabric.send(msg_chunks(cfg, 0, 1, 0)[0])

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert fabric.counters["chunks_sent"] == 1
        assert fabric.counters["chunks_delivered"] == 1
        assert fabric.ports[1].stats["packets_received"] == 1


class TestBackpressure:
    def test_window_blocks_sender(self, sim):
        fabric, cfg = make_fabric(sim, window_chunks=2, rx_buffer_chunks=1)
        send_times = []
        count = 12

        def sender():
            for _ in range(count):
                chunk = msg_chunks(cfg, 0, 1, 0)[0]
                yield fabric.send(chunk)
                send_times.append(sim.now)

        def slow_receiver():
            for _ in range(count):
                yield sim.timeout(1000 * NS)
                yield fabric.ports[1].rx.get()

        sim.process(sender())
        sim.process(slow_receiver())
        sim.run()
        # first sends are accepted instantly (they fit in the pipeline:
        # window 2 + in-flight 2 + rx store 1 + handoffs); later ones are
        # gated by the receiver's 1000ns consumption pace
        assert send_times[0] == 0
        assert send_times[-1] >= 4000 * NS

    def test_no_loss_under_backpressure(self, sim):
        fabric, cfg = make_fabric(sim, window_chunks=1, rx_buffer_chunks=1)
        received = []

        def sender():
            for i in range(30):
                yield fabric.send(msg_chunks(cfg, 0, 1, 0)[0])

        def receiver():
            for _ in range(30):
                yield sim.timeout(100 * NS)
                c = yield fabric.ports[1].rx.get()
                received.append(c.msg_id)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert len(received) == 30
        assert received == sorted(received)

    def test_bad_depths_rejected(self, sim):
        with pytest.raises(ValueError):
            Fabric(sim, Torus3D((2, 1, 1)), SeaStarConfig(), window_chunks=0)


class TestLinkModel:
    def test_serialization_time(self):
        cfg = SeaStarConfig()
        link = LinkModel(cfg)
        assert link.serialization_time(10) == 10 * cfg.link_packet_time()

    def test_no_retries_by_default(self):
        link = LinkModel(SeaStarConfig())
        assert link.retry_penalty(1000) == 0
        assert link.retries == 0

    def test_fault_injection_adds_latency(self):
        cfg = SeaStarConfig().replace(link_crc_retry_prob=1.0)
        link = LinkModel(cfg, seed=7)
        penalty = link.retry_penalty(10)
        assert penalty == 10 * cfg.link_retry_penalty
        assert link.retries == 10

    def test_fault_injection_deterministic_by_seed(self):
        cfg = SeaStarConfig().replace(link_crc_retry_prob=0.5)
        a = LinkModel(cfg, seed=3)
        b = LinkModel(cfg, seed=3)
        assert [a.retry_penalty(20) for _ in range(5)] == [
            b.retry_penalty(20) for _ in range(5)
        ]

    def test_packets_accounted(self):
        cfg = SeaStarConfig()
        link = LinkModel(cfg)
        link.chunk_wire_time(64, hops=3)
        assert link.packets_carried == 64

    def test_retried_traffic_still_delivered(self, sim):
        # reliability protocol is transparent above the link
        cfg = SeaStarConfig().replace(link_crc_retry_prob=0.3)
        fabric, _ = make_fabric(sim, config=cfg, dims=(2, 1, 1))
        got = []

        def receiver():
            for _ in range(10):
                c = yield fabric.ports[1].rx.get()
                got.append(c.msg_id)

        def sender():
            for _ in range(10):
                yield fabric.send(msg_chunks(cfg, 0, 1, 4096)[1])

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert len(got) == 10 and got == sorted(got)
