"""The self-healing worker pool: crash/hang tolerance, retry with
backoff, checkpoint/resume, and its integration with ``run_bench``.

Workers here are module-level so the spawn context can pickle them by
reference.  Subprocess tests are kept small: the container may have a
single core, so every spawned attempt pays a full interpreter start.
"""

import os
import signal

import pytest

from repro.benchrunner.pool import (
    INDEX_FILENAME,
    TEST_HANG_ENV,
    TEST_KILL_ENV,
    TEST_KILL_WRITE_ENV,
    PoolTask,
    run_pool,
    task_filename,
)


def _double(payload):
    return {"value": payload * 2}


def _boom(payload):
    raise RuntimeError(f"boom on {payload}")


def _suicide(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _tasks(n):
    return [PoolTask(task_id=f"t{i}", payload=i) for i in range(n)]


class TestValidation:
    def test_duplicate_task_ids_rejected(self):
        tasks = [PoolTask("a", 1), PoolTask("a", 2)]
        with pytest.raises(ValueError, match="duplicate task ids"):
            run_pool(tasks, _double)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            run_pool(_tasks(1), _double, timeout_s=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            run_pool(_tasks(1), _double, max_retries=-1)

    def test_task_filename_safe_and_distinct(self):
        a = task_filename("fig3/put/d2")
        b = task_filename("fig3/put/d3")
        assert "/" not in a and a != b
        # same id always maps to the same file (resume depends on it)
        assert a == task_filename("fig3/put/d2")


class TestInlineMode:
    def test_results_complete(self):
        outcome = run_pool(_tasks(4), _double, workers=1)
        assert outcome.results == {f"t{i}": {"value": i * 2} for i in range(4)}
        assert not outcome.degradations
        assert not outcome.failed

    def test_worker_exception_fails_permanently(self):
        outcome = run_pool(_tasks(2), _boom, workers=1)
        assert not outcome.results
        assert set(outcome.failed) == {"t0", "t1"}
        assert "boom" in outcome.failed["t0"]

    def test_checkpoint_then_resume_skips_execution(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = run_pool(_tasks(3), _double, workers=1, checkpoint_dir=ckpt)
        assert len(first.results) == 3 and not first.resumed
        # rerun with a worker that would fail: checkpointed results must
        # be served without running anything
        second = run_pool(_tasks(3), _boom, workers=1, checkpoint_dir=ckpt)
        assert second.results == first.results
        assert sorted(second.resumed) == ["t0", "t1", "t2"]
        assert not second.failed

    def test_failed_runs_are_not_resumed(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        bad = run_pool(_tasks(1), _boom, workers=1, checkpoint_dir=ckpt)
        assert "t0" in bad.failed
        good = run_pool(_tasks(1), _double, workers=1, checkpoint_dir=ckpt)
        assert good.results["t0"] == {"value": 0}
        assert not good.resumed


class TestSupervised:
    def test_sigkilled_worker_is_retried(self, monkeypatch):
        monkeypatch.setenv(TEST_KILL_ENV, "t1")
        outcome = run_pool(_tasks(3), _double, workers=2, timeout_s=60)
        assert outcome.results == {f"t{i}": {"value": i * 2} for i in range(3)}
        crashes = [d for d in outcome.degradations if d["event"] == "crash"]
        assert len(crashes) == 1 and crashes[0]["task"] == "t1"
        assert crashes[0]["retry_in_s"] > 0
        assert not outcome.failed

    def test_hung_worker_is_killed_by_watchdog(self, monkeypatch):
        monkeypatch.setenv(TEST_HANG_ENV, "t0")
        outcome = run_pool(_tasks(2), _double, workers=2, timeout_s=3)
        assert outcome.results == {"t0": {"value": 0}, "t1": {"value": 2}}
        timeouts = [d for d in outcome.degradations if d["event"] == "timeout"]
        assert len(timeouts) == 1 and timeouts[0]["task"] == "t0"

    def test_always_crashing_task_gives_up(self):
        outcome = run_pool(
            [PoolTask("doomed", 0)], _suicide, workers=2, max_retries=1,
            backoff_s=0.05,
        )
        assert "doomed" in outcome.failed
        assert "gave up" in outcome.failed["doomed"]
        crashes = [d for d in outcome.degradations if d["event"] == "crash"]
        assert len(crashes) == 2  # attempt 0 + 1 retry
        assert crashes[-1].get("gave_up") is True

    def test_worker_exception_not_retried(self):
        outcome = run_pool([PoolTask("t0", 7)], _boom, workers=2)
        assert "boom on 7" in outcome.failed["t0"]
        assert not outcome.degradations  # deterministic: no retry events

    def test_checkpoint_resume_across_pool_runs(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = run_pool(_tasks(2), _double, workers=2, checkpoint_dir=ckpt)
        assert len(first.results) == 2
        second = run_pool(_tasks(2), _double, workers=2, checkpoint_dir=ckpt)
        assert sorted(second.resumed) == ["t0", "t1"]
        assert second.results == first.results


class TestCheckpointIntegrity:
    """Resume must never double-run or silently skip: torn result files,
    index-less legacy dirs, payload drift under stable task ids, and
    differing ``workers`` counts all have to resolve to a re-run, while
    genuinely matching checkpoints keep being served."""

    def test_sigkill_during_result_write_is_retried(self, tmp_path, monkeypatch):
        # the torn-write hook bypasses the atomic rename and dies halfway
        # through writing the *final* result path; resume must treat the
        # torn file as absent (any unpickle error, not just a short read)
        # and the retry must overwrite it with a complete record
        ckpt = str(tmp_path / "ckpt")
        monkeypatch.setenv(TEST_KILL_WRITE_ENV, "t0")
        outcome = run_pool(
            _tasks(2), _double, workers=2, timeout_s=60, checkpoint_dir=ckpt
        )
        assert outcome.results == {"t0": {"value": 0}, "t1": {"value": 2}}
        crashes = [d for d in outcome.degradations if d["event"] == "crash"]
        assert len(crashes) == 1 and crashes[0]["task"] == "t0"
        assert not outcome.failed
        # and a fresh run resumes the healed checkpoint without executing
        monkeypatch.delenv(TEST_KILL_WRITE_ENV)
        again = run_pool(_tasks(2), _boom, workers=1, checkpoint_dir=ckpt)
        assert again.results == outcome.results
        assert sorted(again.resumed) == ["t0", "t1"]

    def test_torn_file_without_index_entry_is_not_resumed(self, tmp_path):
        # a killed-mid-write parent can leave a result file with no index:
        # the fingerprint check fails closed and the task re-runs
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / task_filename("t0")).write_bytes(b"\x80\x04 torn")
        outcome = run_pool(_tasks(1), _double, workers=1, checkpoint_dir=str(ckpt))
        assert outcome.results == {"t0": {"value": 0}}
        assert not outcome.resumed

    def test_payload_change_invalidates_checkpoint(self, tmp_path):
        # same task ids, different payloads (e.g. --fast vs full sweep):
        # resuming the old results would silently answer the wrong question
        ckpt = str(tmp_path / "ckpt")
        first = run_pool(
            [PoolTask("shard", 1)], _double, workers=1, checkpoint_dir=ckpt
        )
        assert first.results == {"shard": {"value": 2}}
        second = run_pool(
            [PoolTask("shard", 5)], _double, workers=1, checkpoint_dir=ckpt
        )
        assert second.results == {"shard": {"value": 10}}
        assert not second.resumed
        # and the refreshed checkpoint now serves the *new* payload
        third = run_pool(
            [PoolTask("shard", 5)], _boom, workers=1, checkpoint_dir=ckpt
        )
        assert third.results == {"shard": {"value": 10}}
        assert third.resumed == ["shard"]

    def test_resume_across_different_worker_counts(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = run_pool(_tasks(3), _double, workers=2, checkpoint_dir=ckpt)
        assert len(first.results) == 3
        # inline resume of a supervised run, and vice versa
        inline = run_pool(_tasks(3), _boom, workers=1, checkpoint_dir=ckpt)
        assert inline.results == first.results
        assert sorted(inline.resumed) == ["t0", "t1", "t2"]
        wide = run_pool(_tasks(3), _boom, workers=4, checkpoint_dir=ckpt)
        assert wide.results == first.results
        assert sorted(wide.resumed) == ["t0", "t1", "t2"]

    def test_index_file_is_atomic_json(self, tmp_path):
        # the index itself goes through tmp+rename: after any run the
        # directory holds a complete, parseable index and no tmp litter
        import json

        ckpt = tmp_path / "ckpt"
        run_pool(_tasks(2), _double, workers=1, checkpoint_dir=str(ckpt))
        doc = json.loads((ckpt / INDEX_FILENAME).read_text(encoding="utf-8"))
        assert doc["version"] == 1
        assert sorted(doc["tasks"]) == ["t0", "t1"]
        assert not list(ckpt.glob("*.tmp"))

    def test_corrupt_index_forces_rerun_not_crash(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = run_pool(_tasks(1), _double, workers=1, checkpoint_dir=str(ckpt))
        assert first.results == {"t0": {"value": 0}}
        (ckpt / INDEX_FILENAME).write_text("{not json", encoding="utf-8")
        second = run_pool(_tasks(1), _double, workers=1, checkpoint_dir=str(ckpt))
        assert second.results == first.results
        assert not second.resumed  # unverifiable checkpoint: fail closed


class TestBenchIntegration:
    """run_bench through the pool: byte-identical figures, annotated
    wallclock."""

    def test_pooled_bench_matches_serial_despite_worker_kill(self, monkeypatch):
        from repro.benchrunner import run_bench
        from repro.benchrunner.schema import simulated_json

        serial = run_bench(fast=True, workers=1, filter="fig4/put/d0")
        monkeypatch.setenv(TEST_KILL_ENV, "fig4/put/d0")
        pooled = run_bench(
            fast=True, workers=2, filter="fig4/put/d0", shard_timeout_s=120
        )
        assert simulated_json(serial) == simulated_json(pooled)
        degs = pooled["wallclock"]["degradations"]
        assert [d["event"] for d in degs] == ["crash"]

    def test_bench_checkpoint_resume(self, tmp_path):
        from repro.benchrunner import run_bench
        from repro.benchrunner.schema import simulated_json

        ckpt = str(tmp_path / "bench-ckpt")
        first = run_bench(
            fast=True, workers=1, filter="fig4/put/d0", checkpoint_dir=ckpt
        )
        second = run_bench(
            fast=True, workers=1, filter="fig4/put/d0", checkpoint_dir=ckpt
        )
        assert simulated_json(first) == simulated_json(second)
        assert second["wallclock"]["resumed_shards"]

    def test_degradations_surface_in_run_summary(self):
        from repro.benchrunner.report import format_run_summary

        doc = {
            "figures": {},
            "wallclock": {
                "workers": 2,
                "total_s": 1.0,
                "shards": {"s0": 0.5},
                "resumed_shards": ["s1"],
                "degradations": [
                    {"task": "s0", "event": "crash", "attempt": 0,
                     "retry_in_s": 0.25},
                    {"task": "s2", "event": "timeout", "attempt": 1,
                     "gave_up": True},
                ],
            },
        }
        text = format_run_summary(doc)
        assert "resumed from checkpoint: 1 shard(s)" in text
        assert "executor degradations survived: 2" in text
        assert "retried after 0.25s backoff" in text
        assert "gave up" in text
