"""3D mesh/torus topology: coordinates, neighbors, distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Coord, Torus3D

dims_strategy = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)
)
wrap_strategy = st.tuples(st.booleans(), st.booleans(), st.booleans())


class TestCoordinates:
    def test_id_coord_round_trip(self):
        topo = Torus3D((3, 4, 5))
        for node in range(topo.num_nodes):
            assert topo.node_id(topo.coord(node)) == node

    def test_x_fastest_varying(self):
        topo = Torus3D((3, 4, 5))
        assert topo.coord(0) == Coord(0, 0, 0)
        assert topo.coord(1) == Coord(1, 0, 0)
        assert topo.coord(3) == Coord(0, 1, 0)
        assert topo.coord(12) == Coord(0, 0, 1)

    def test_out_of_range_rejected(self):
        topo = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            topo.coord(8)
        with pytest.raises(ValueError):
            topo.node_id(Coord(2, 0, 0))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Torus3D((0, 1, 1))

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy)
    def test_round_trip_property(self, dims):
        topo = Torus3D(dims)
        for node in range(topo.num_nodes):
            assert topo.node_id(topo.coord(node)) == node


class TestNeighbors:
    def test_mesh_edge_has_no_neighbor(self):
        topo = Torus3D((3, 3, 3), wrap=(False, False, False))
        corner = topo.neighbors(0)
        assert set(corner) == {"x+", "y+", "z+"}

    def test_full_torus_has_six_neighbors(self):
        topo = Torus3D((3, 3, 3), wrap=(True, True, True))
        for node in range(topo.num_nodes):
            assert len(topo.neighbors(node)) == 6

    def test_redstorm_wrap_only_z(self):
        # Red Storm: mesh in x/y, torus in z (section 5.1)
        topo = Torus3D((3, 3, 3), wrap=(False, False, True))
        corner = topo.neighbors(0)
        assert "x-" not in corner and "y-" not in corner
        assert "z-" in corner  # wraps to z=2 plane

    def test_wrap_ignored_for_size_one_dim(self):
        topo = Torus3D((2, 1, 1), wrap=(True, True, True))
        nbrs = topo.neighbors(0)
        assert set(nbrs.values()) == {1}

    def test_neighbor_symmetry(self):
        topo = Torus3D((4, 3, 5), wrap=(False, True, True))
        for node in range(topo.num_nodes):
            for nbr in topo.neighbors(node).values():
                assert node in topo.neighbors(nbr).values()


class TestDistances:
    def test_mesh_distance_is_manhattan(self):
        topo = Torus3D((5, 5, 5), wrap=(False, False, False))
        a = topo.node_id(Coord(0, 0, 0))
        b = topo.node_id(Coord(4, 3, 2))
        assert topo.distance(a, b) == 9

    def test_torus_distance_wraps(self):
        topo = Torus3D((8, 1, 1), wrap=(True, False, False))
        assert topo.distance(0, 7) == 1
        assert topo.distance(0, 4) == 4

    def test_distance_zero_to_self(self):
        topo = Torus3D((3, 3, 3))
        assert topo.distance(5, 5) == 0

    def test_diameter_mesh(self):
        topo = Torus3D((4, 4, 4), wrap=(False, False, False))
        assert topo.diameter() == 9

    def test_diameter_redstorm_style(self):
        topo = Torus3D((4, 4, 4), wrap=(False, False, True))
        assert topo.diameter() == 3 + 3 + 2

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy, wrap=wrap_strategy)
    def test_distance_symmetric(self, dims, wrap):
        topo = Torus3D(dims, wrap=wrap)
        nodes = list(range(min(topo.num_nodes, 10)))
        for a in nodes:
            for b in nodes:
                assert topo.distance(a, b) == topo.distance(b, a)

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy, wrap=wrap_strategy)
    def test_distance_bounded_by_diameter(self, dims, wrap):
        topo = Torus3D(dims, wrap=wrap)
        diameter = topo.diameter()
        last = topo.num_nodes - 1
        assert topo.distance(0, last) <= diameter

    def test_redstorm_scale(self):
        # the full 27x16x24 Red Storm arrangement
        topo = Torus3D((27, 16, 24), wrap=(False, False, True))
        assert topo.num_nodes == 10368


class TestRedStormGeometry:
    """Full-plane Red Storm geometry the partition-cut logic rests on.

    Two shapes matter: the repo's calibrated 27x16x24 arrangement and
    the 27x20x24 full-machine build-out — both mesh in x/y, torus only
    in z (section 5.1).  The parallel DES driver's lookahead is derived
    from per-axis coordinate distance, so the wraparound asymmetry must
    hold exactly at scale.
    """

    DIMS = [(27, 16, 24), (27, 20, 24)]

    @pytest.mark.parametrize("dims", DIMS)
    def test_node_count_and_diameter(self, dims):
        topo = Torus3D(dims, wrap=(False, False, True))
        assert topo.num_nodes == dims[0] * dims[1] * dims[2]
        # mesh axes contribute extent-1, the z torus only extent/2
        assert topo.diameter() == (dims[0] - 1) + (dims[1] - 1) + dims[2] // 2

    @pytest.mark.parametrize("dims", DIMS)
    def test_z_wraparound_edges_exist(self, dims):
        topo = Torus3D(dims, wrap=(False, False, True))
        lo = topo.node_id(Coord(5, 5, 0))
        hi = topo.node_id(Coord(5, 5, dims[2] - 1))
        # one hop through the z wraparound link, both directions
        assert topo.distance(lo, hi) == 1
        assert topo.neighbors(lo)["z-"] == hi
        assert topo.neighbors(hi)["z+"] == lo

    @pytest.mark.parametrize("dims", DIMS)
    def test_xy_mesh_edges_do_not_wrap(self, dims):
        topo = Torus3D(dims, wrap=(False, False, True))
        x_lo = topo.node_id(Coord(0, 5, 5))
        x_hi = topo.node_id(Coord(dims[0] - 1, 5, 5))
        y_lo = topo.node_id(Coord(5, 0, 5))
        y_hi = topo.node_id(Coord(5, dims[1] - 1, 5))
        assert topo.distance(x_lo, x_hi) == dims[0] - 1
        assert topo.distance(y_lo, y_hi) == dims[1] - 1
        assert "x-" not in topo.neighbors(x_lo)
        assert "x+" not in topo.neighbors(x_hi)
        assert "y-" not in topo.neighbors(y_lo)
        assert "y+" not in topo.neighbors(y_hi)

    def test_z_torus_halves_z_distance(self):
        # the asymmetry the slab-cut math must honor: along z, extreme
        # planes are 1 apart; along x/y they are extent-1 apart
        topo = Torus3D((27, 20, 24), wrap=(False, False, True))
        a = topo.node_id(Coord(0, 0, 0))
        assert topo.distance(a, topo.node_id(Coord(0, 0, 23))) == 1
        assert topo.distance(a, topo.node_id(Coord(0, 0, 12))) == 12
        assert topo.distance(a, topo.node_id(Coord(26, 0, 0))) == 26
