"""3D mesh/torus topology: coordinates, neighbors, distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Coord, Torus3D

dims_strategy = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)
)
wrap_strategy = st.tuples(st.booleans(), st.booleans(), st.booleans())


class TestCoordinates:
    def test_id_coord_round_trip(self):
        topo = Torus3D((3, 4, 5))
        for node in range(topo.num_nodes):
            assert topo.node_id(topo.coord(node)) == node

    def test_x_fastest_varying(self):
        topo = Torus3D((3, 4, 5))
        assert topo.coord(0) == Coord(0, 0, 0)
        assert topo.coord(1) == Coord(1, 0, 0)
        assert topo.coord(3) == Coord(0, 1, 0)
        assert topo.coord(12) == Coord(0, 0, 1)

    def test_out_of_range_rejected(self):
        topo = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            topo.coord(8)
        with pytest.raises(ValueError):
            topo.node_id(Coord(2, 0, 0))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Torus3D((0, 1, 1))

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy)
    def test_round_trip_property(self, dims):
        topo = Torus3D(dims)
        for node in range(topo.num_nodes):
            assert topo.node_id(topo.coord(node)) == node


class TestNeighbors:
    def test_mesh_edge_has_no_neighbor(self):
        topo = Torus3D((3, 3, 3), wrap=(False, False, False))
        corner = topo.neighbors(0)
        assert set(corner) == {"x+", "y+", "z+"}

    def test_full_torus_has_six_neighbors(self):
        topo = Torus3D((3, 3, 3), wrap=(True, True, True))
        for node in range(topo.num_nodes):
            assert len(topo.neighbors(node)) == 6

    def test_redstorm_wrap_only_z(self):
        # Red Storm: mesh in x/y, torus in z (section 5.1)
        topo = Torus3D((3, 3, 3), wrap=(False, False, True))
        corner = topo.neighbors(0)
        assert "x-" not in corner and "y-" not in corner
        assert "z-" in corner  # wraps to z=2 plane

    def test_wrap_ignored_for_size_one_dim(self):
        topo = Torus3D((2, 1, 1), wrap=(True, True, True))
        nbrs = topo.neighbors(0)
        assert set(nbrs.values()) == {1}

    def test_neighbor_symmetry(self):
        topo = Torus3D((4, 3, 5), wrap=(False, True, True))
        for node in range(topo.num_nodes):
            for nbr in topo.neighbors(node).values():
                assert node in topo.neighbors(nbr).values()


class TestDistances:
    def test_mesh_distance_is_manhattan(self):
        topo = Torus3D((5, 5, 5), wrap=(False, False, False))
        a = topo.node_id(Coord(0, 0, 0))
        b = topo.node_id(Coord(4, 3, 2))
        assert topo.distance(a, b) == 9

    def test_torus_distance_wraps(self):
        topo = Torus3D((8, 1, 1), wrap=(True, False, False))
        assert topo.distance(0, 7) == 1
        assert topo.distance(0, 4) == 4

    def test_distance_zero_to_self(self):
        topo = Torus3D((3, 3, 3))
        assert topo.distance(5, 5) == 0

    def test_diameter_mesh(self):
        topo = Torus3D((4, 4, 4), wrap=(False, False, False))
        assert topo.diameter() == 9

    def test_diameter_redstorm_style(self):
        topo = Torus3D((4, 4, 4), wrap=(False, False, True))
        assert topo.diameter() == 3 + 3 + 2

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy, wrap=wrap_strategy)
    def test_distance_symmetric(self, dims, wrap):
        topo = Torus3D(dims, wrap=wrap)
        nodes = list(range(min(topo.num_nodes, 10)))
        for a in nodes:
            for b in nodes:
                assert topo.distance(a, b) == topo.distance(b, a)

    @settings(max_examples=30, deadline=None)
    @given(dims=dims_strategy, wrap=wrap_strategy)
    def test_distance_bounded_by_diameter(self, dims, wrap):
        topo = Torus3D(dims, wrap=wrap)
        diameter = topo.diameter()
        last = topo.num_nodes - 1
        assert topo.distance(0, last) <= diameter

    def test_redstorm_scale(self):
        # the full 27x16x24 Red Storm arrangement
        topo = Torus3D((27, 16, 24), wrap=(False, False, True))
        assert topo.num_nodes == 10368
