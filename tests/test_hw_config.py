"""Configuration: validation, derived values, paper-anchored constants."""

import pytest

from repro.hw.config import DEFAULT_CONFIG, SeaStarConfig
from repro.sim import GB, KB, NS, US


class TestValidation:
    def test_defaults_valid(self):
        SeaStarConfig()

    def test_small_msg_must_fit_packet(self):
        with pytest.raises(ValueError):
            SeaStarConfig(small_msg_bytes=64)

    def test_chunk_multiple_of_packet(self):
        with pytest.raises(ValueError):
            SeaStarConfig(chunk_bytes=100)

    def test_chunk_at_least_one_packet(self):
        with pytest.raises(ValueError):
            SeaStarConfig(chunk_bytes=0)

    def test_exact_packet_chunking_allowed(self):
        cfg = SeaStarConfig(chunk_bytes=64)
        assert cfg.chunk_bytes == 64


class TestPaperConstants:
    """Constants the paper states directly."""

    def test_interrupt_at_least_2us(self):
        assert DEFAULT_CONFIG.interrupt_overhead >= 2 * US

    def test_trap_75ns(self):
        assert DEFAULT_CONFIG.trap_overhead == 75 * NS

    def test_link_rate(self):
        assert DEFAULT_CONFIG.link_bytes_per_s == 2.5 * GB

    def test_ht_rate(self):
        assert DEFAULT_CONFIG.ht_bytes_per_s == 2.8 * GB

    def test_packet_and_header_sizes(self):
        assert DEFAULT_CONFIG.packet_bytes == 64
        assert DEFAULT_CONFIG.header_bytes == 64
        assert DEFAULT_CONFIG.small_msg_bytes == 12

    def test_sram_384kb(self):
        assert DEFAULT_CONFIG.sram_bytes == 384 * KB

    def test_firmware_structure_counts(self):
        assert DEFAULT_CONFIG.num_sources == 1024
        assert DEFAULT_CONFIG.num_generic_pendings == 1274
        assert (
            DEFAULT_CONFIG.generic_tx_pendings + DEFAULT_CONFIG.generic_rx_pendings
            == 1274
        )

    def test_clock_rates(self):
        assert DEFAULT_CONFIG.host_clock_hz == 2.0e9
        assert DEFAULT_CONFIG.ppc_clock_hz == 0.5e9


class TestDerived:
    def test_packets_for_small_message_is_zero(self):
        cfg = DEFAULT_CONFIG
        assert cfg.packets_for(0) == 0
        assert cfg.packets_for(12) == 0

    def test_packets_for_rounds_up(self):
        cfg = DEFAULT_CONFIG
        assert cfg.packets_for(13) == 1
        assert cfg.packets_for(64) == 1
        assert cfg.packets_for(65) == 2
        assert cfg.packets_for(8 * 1024 * 1024) == 131072

    def test_link_packet_time(self):
        cfg = DEFAULT_CONFIG
        # 64 B at 2.5 GiB/s = 23.8 ns
        assert cfg.link_packet_time() == pytest.approx(
            64 / (2.5 * 1024**3) * 1e12, rel=0.01
        )

    def test_ht_packet_time_faster_than_tx(self):
        cfg = DEFAULT_CONFIG
        assert cfg.ht_packet_time() < cfg.tx_dma_per_packet

    def test_bottleneck_is_tx_engine(self):
        cfg = DEFAULT_CONFIG
        assert cfg.bottleneck_per_packet() == cfg.tx_dma_per_packet

    def test_peak_bandwidth_matches_paper(self):
        # 64 B / 55.05 ns should give the paper's 1108.76 MB/s peak
        assert DEFAULT_CONFIG.peak_bandwidth_mb_s() == pytest.approx(1108.76, rel=0.01)

    def test_replace_creates_variant(self):
        cfg = DEFAULT_CONFIG.replace(small_msg_bytes=0)
        assert cfg.small_msg_bytes == 0
        assert DEFAULT_CONFIG.small_msg_bytes == 12

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.packet_bytes = 128  # type: ignore[misc]
