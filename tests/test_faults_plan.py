"""FaultPlan declaration, validation, named plans, and builder wiring."""

import pytest

from repro.faults import (
    ChunkAction,
    FaultInjector,
    FaultPlan,
    FirmwareCrash,
    LinkOutage,
    NodeDeath,
    OutageMode,
    ScriptedFault,
    named_plan,
    plan_names,
)
from repro.faults.plan import DEFAULT_PEER_TIMEOUT
from repro.machine.builder import build_pair
from repro.sim import Simulator, us


class TestPlanValidation:
    def test_none_is_noop(self):
        assert FaultPlan.none().is_noop()
        assert FaultPlan().is_noop()

    def test_any_knob_defeats_noop(self):
        assert not FaultPlan(drop_prob=0.1).is_noop()
        assert not FaultPlan(corrupt_prob=0.1).is_noop()
        assert not FaultPlan(outages=(LinkOutage(start=0),)).is_noop()
        assert not FaultPlan(script=(ScriptedFault(0),)).is_noop()
        assert not FaultPlan(control_pool_steal=1).is_noop()

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_prob=-0.1)

    def test_outage_window_ordering(self):
        with pytest.raises(ValueError):
            LinkOutage(start=us(10), end=us(5))
        with pytest.raises(ValueError):
            LinkOutage(start=-1)
        # end=None is a kill, always legal
        LinkOutage(start=us(10), end=None)

    def test_steal_window_ordering(self):
        with pytest.raises(ValueError):
            FaultPlan(control_pool_steal=1, steal_start=us(5), steal_end=us(5))

    def test_lists_normalized_to_tuples(self):
        plan = FaultPlan(
            outages=[LinkOutage(start=0)], script=[ScriptedFault(3)]
        )
        assert isinstance(plan.outages, tuple)
        assert isinstance(plan.script, tuple)

    def test_scripted_fault_index_validated(self):
        with pytest.raises(ValueError):
            ScriptedFault(-1)
        assert ScriptedFault(0).action is ChunkAction.DROP

    def test_duplicate_script_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate chunk indices"):
            FaultPlan(
                script=(
                    ScriptedFault(3, ChunkAction.DROP),
                    ScriptedFault(3, ChunkAction.CORRUPT),
                )
            )

    def test_node_death_validated(self):
        with pytest.raises(ValueError):
            NodeDeath(node=-1, at=0)
        with pytest.raises(ValueError):
            NodeDeath(node=0, at=-1)
        assert NodeDeath(node=1, at=us(5)).at == us(5)

    def test_firmware_crash_validated(self):
        with pytest.raises(ValueError):
            FirmwareCrash(node=-1, at=0)
        with pytest.raises(ValueError):
            FirmwareCrash(node=0, at=-1)
        with pytest.raises(ValueError):
            FirmwareCrash(node=0, at=0, restart_after=0)
        assert FirmwareCrash(node=0, at=0).permanent
        assert not FirmwareCrash(node=0, at=0, restart_after=us(1)).permanent

    def test_peer_timeout_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(peer_timeout=0)
        with pytest.raises(ValueError):
            FaultPlan(peer_timeout=-5)

    def test_death_knobs_defeat_noop(self):
        assert not FaultPlan(node_deaths=(NodeDeath(0, 0),)).is_noop()
        assert not FaultPlan(fw_crashes=(FirmwareCrash(0, 0),)).is_noop()

    def test_death_lists_normalized_to_tuples(self):
        plan = FaultPlan(
            node_deaths=[NodeDeath(0, 0)], fw_crashes=[FirmwareCrash(1, 0)]
        )
        assert isinstance(plan.node_deaths, tuple)
        assert isinstance(plan.fw_crashes, tuple)

    def test_permanent_death_nodes(self):
        plan = FaultPlan(
            node_deaths=(NodeDeath(0, 0),),
            fw_crashes=(
                FirmwareCrash(1, 0),  # permanent: no restart
                FirmwareCrash(2, 0, restart_after=us(1)),  # recovers
            ),
        )
        assert plan.permanent_death_nodes() == frozenset({0, 1})

    def test_effective_peer_timeout(self):
        # explicit timeout wins
        explicit = FaultPlan(
            node_deaths=(NodeDeath(0, 0),), peer_timeout=us(77)
        )
        assert explicit.effective_peer_timeout() == us(77)
        # permanent death defaults the monitor on
        implicit = FaultPlan(node_deaths=(NodeDeath(0, 0),))
        assert implicit.effective_peer_timeout() == DEFAULT_PEER_TIMEOUT
        # a recovering crash needs no monitor
        recovering = FaultPlan(
            fw_crashes=(FirmwareCrash(0, 0, restart_after=us(1)),)
        )
        assert recovering.effective_peer_timeout() is None
        assert FaultPlan(drop_prob=0.1).effective_peer_timeout() is None


class TestOutageCoverage:
    def test_wildcards_match_any_link(self):
        o = LinkOutage(start=us(1), end=us(2))
        assert o.covers(0, 1, us(1))
        assert o.covers(7, 3, us(1))

    def test_directed_outage_matches_one_link(self):
        o = LinkOutage(start=0, end=us(1), src=0, dst=1)
        assert o.covers(0, 1, 0)
        assert not o.covers(1, 0, 0)

    def test_window_boundaries_are_half_open(self):
        o = LinkOutage(start=us(1), end=us(2))
        assert not o.covers(0, 1, us(1) - 1)
        assert o.covers(0, 1, us(1))
        assert not o.covers(0, 1, us(2))

    def test_kill_never_ends(self):
        o = LinkOutage(start=us(1), end=None, mode=OutageMode.DROP)
        assert o.covers(0, 1, us(10_000_000))


class TestNamedPlans:
    def test_all_names_resolve(self):
        for name in plan_names():
            plan = named_plan(name, seed=7)
            assert plan.seed == 7

    def test_acceptance_plan_shape(self):
        plan = named_plan("drop-1pct")
        assert plan.drop_prob == 0.01
        assert plan.corrupt_prob == 0.001

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            named_plan("meteor-strike")

    def test_none_plan_is_noop(self):
        assert named_plan("none").is_noop()


class TestWiring:
    def test_injector_refuses_noop_plan(self):
        with pytest.raises(ValueError, match="no-op plan"):
            FaultInjector(Simulator(), FaultPlan.none())

    def test_builder_skips_injector_for_noop_plan(self):
        machine, _, _ = build_pair(fault_plan=FaultPlan.none())
        assert machine.injector is None
        assert machine.fabric.injector is None

    def test_builder_defaults_to_no_injector(self):
        machine, _, _ = build_pair()
        assert machine.injector is None

    def test_builder_attaches_injector_for_real_plan(self):
        plan = named_plan("drop-1pct")
        machine, _, _ = build_pair(fault_plan=plan)
        assert machine.injector is not None
        assert machine.fabric.injector is machine.injector
        assert machine.injector.plan is plan
