#!/usr/bin/env python
"""Where does 5.39 us go?  The put path, stage by stage.

The paper's section 6 narrative in table form: the analytic one-way
budget for a generic-mode put (1 B and 1 KB), cross-checked against the
simulated stack, plus the same budget after accelerated-mode offload.

Run:  python examples/latency_breakdown.py
"""

from repro.analysis import breakdown_total_us, format_breakdown, latency_at
from repro.netpipe import PortalsPutModule, run_series


def main():
    for nbytes in (1, 1024):
        print(format_breakdown(nbytes=nbytes))
        print()

    sim = run_series(PortalsPutModule(), "pingpong", [1, 1024])
    print("cross-check against the simulated stack:")
    for nbytes in (1, 1024):
        analytic = breakdown_total_us(nbytes=nbytes)
        measured = latency_at(sim, nbytes)
        print(f"  {nbytes:>5} B: analytic {analytic:6.3f} us, "
              f"simulated {measured:6.3f} us "
              f"({abs(analytic - measured) / measured:.1%} apart)")

    accel = run_series(PortalsPutModule(accelerated=True), "pingpong", [1])
    print(f"\nwith offload (accelerated mode): "
          f"{latency_at(accel, 1):.2f} us — the two host interrupts and the "
          f"kernel matching drop out of the 1 B budget entirely.")


if __name__ == "__main__":
    main()
