#!/usr/bin/env python
"""NIC resource exhaustion: panic vs the go-back-N recovery protocol.

Section 4.3 of the paper: firmware structures are fixed pools; on Red
Storm "the current approach is to panic the node, which results in
application failure", with "a simple go-back-n protocol" under
development.  This example shrinks the pending pools, fires an inline
message burst, and shows both behaviours — plus the sequence-number
discipline that keeps per-source ordering intact across retransmission.

Run:  python examples/exhaustion_recovery.py
"""

from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import SeaStarConfig
from repro.machine.builder import build_pair
from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    NicPanic,
    ProcessId,
)
from repro.sim import US, SimulationError, to_us

TINY = SeaStarConfig(
    generic_rx_pendings=2,
    generic_tx_pendings=32,
    num_generic_pendings=34,
    gobackn_backoff=5 * US,
)
BURST = 30


def run(policy):
    machine, na, nb = build_pair(TINY, policy=policy)
    pa, pb = na.create_process(), nb.create_process()
    order = []

    def receiver(proc):
        api = proc.api
        eq = yield from api.PtlEQAlloc(512)
        me = yield from api.PtlMEAttach(
            4, ProcessId(PTL_NID_ANY, PTL_PID_ANY), 0xFEED
        )
        buf = proc.alloc(64)
        yield from api.PtlMDAttach(
            me, buf,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            eq=eq,
        )
        got = 0
        while got < BURST:
            ev = yield from api.PtlEQWait(eq)
            if ev.kind is EventKind.PUT_END:
                order.append(ev.hdr_data)
                got += 1
        return True

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(512)
        md = yield from api.PtlMDBind(proc.alloc(8), eq=eq)
        for i in range(BURST):
            yield from api.PtlPut(md, target, 4, 0xFEED, hdr_data=i, length=8)
        ends = 0
        while ends < BURST:
            ev = yield from api.PtlEQWait(eq)
            if ev.kind is EventKind.SEND_END:
                ends += 1
        return True

    pb.spawn(receiver)
    pa.spawn(sender, pb.id)
    outcome = {"order": order}
    try:
        machine.run()
        outcome["status"] = "completed"
    except SimulationError as err:
        if isinstance(err.__cause__, NicPanic):
            outcome["status"] = f"NODE PANIC: {err.__cause__}"
        else:
            raise
    outcome["delivered"] = len(order)
    outcome["naks"] = nb.firmware.counters["naks_sent"]
    outcome["retransmits"] = na.firmware.counters["retransmits"]
    outcome["time_us"] = to_us(machine.now)
    return outcome


def main():
    print(f"Bursting {BURST} inline puts at a receiver with only "
          f"{TINY.generic_rx_pendings} RX pendings\n")

    print("--- policy: PANIC (the paper's current behaviour) ---")
    panic = run(ExhaustionPolicy.PANIC)
    print(f"  status    : {panic['status']}")
    print(f"  delivered : {panic['delivered']}/{BURST}\n")

    print("--- policy: GO_BACK_N (the protocol under development) ---")
    gbn = run(ExhaustionPolicy.GO_BACK_N)
    print(f"  status        : {gbn['status']}")
    print(f"  delivered     : {gbn['delivered']}/{BURST}")
    print(f"  NAKs sent     : {gbn['naks']}")
    print(f"  retransmits   : {gbn['retransmits']}")
    print(f"  completion    : {gbn['time_us']:.0f} us")
    in_order = gbn["order"] == sorted(gbn["order"])
    print(f"  order intact  : {in_order} "
          f"(per-source sequence numbers enforce send order)")
    assert in_order and gbn["delivered"] == BURST


if __name__ == "__main__":
    main()
