#!/usr/bin/env python
"""Generic vs accelerated mode: what offloading Portals to the NIC buys.

The paper measures generic mode (host-side matching, two interrupts per
large message) and projects that the in-development accelerated mode —
firmware-side matching, completions written directly into process space
— "will eliminate both interrupts".  This example runs the same
ping-pong in both modes and shows the latency cut and interrupt counts,
plus where each mode stands against the XT3's 2 us nearest-neighbor MPI
latency requirement.

Run:  python examples/accelerated_mode.py
"""

from repro import build_pair
from repro.netpipe import PortalsPutModule, run_series
from repro.sim import to_us

SIZES = [1, 8, 12, 13, 64, 256, 1024, 4096]


def measure(accelerated):
    module = PortalsPutModule(accelerated=accelerated)
    series = run_series(module, "pingpong", SIZES)
    return series


def interrupt_counts(accelerated):
    machine, na, nb = build_pair()
    module = PortalsPutModule(accelerated=accelerated)
    ep_a, ep_b = module.make_endpoints(machine, na, nb, 4096)

    def side_a():
        yield from ep_a.setup()
        yield from ep_a.begin_round(4096)
        for _ in range(10):
            yield from ep_a.send(4096)
            yield from ep_a.recv(4096)
        yield from ep_a.end_round()

    def side_b():
        yield from ep_b.setup()
        yield from ep_b.begin_round(4096)
        for _ in range(10):
            yield from ep_b.recv(4096)
            yield from ep_b.send(4096)
        yield from ep_b.end_round()

    machine.sim.process(side_a())
    machine.sim.process(side_b())
    machine.run()
    return na.opteron.counters["interrupts"] + nb.opteron.counters["interrupts"]


def main():
    generic = measure(accelerated=False)
    accel = measure(accelerated=True)

    print("Portals put ping-pong latency (us): generic vs accelerated")
    print(f"{'bytes':>8} | {'generic':>9} | {'accel':>9} | {'saved':>7}")
    for g, a in zip(generic.points, accel.points):
        print(
            f"{g.nbytes:>8} | {g.latency_us:9.2f} | {a.latency_us:9.2f}"
            f" | {g.latency_us - a.latency_us:6.2f}"
        )

    irq_g = interrupt_counts(False)
    irq_a = interrupt_counts(True)
    print(f"\nhost interrupts for 10 x 4 KB ping-pongs: "
          f"generic {irq_g}, accelerated {irq_a}")
    a1 = accel.points[0].latency_us
    print(f"\naccelerated 1-byte latency: {a1:.2f} us — the XT3 "
          f"requirement was 2 us MPI nearest-neighbor;")
    print("the paper: 'it will be necessary to eliminate all interrupts "
          "from the data path in order to meet the performance "
          "requirements of the XT3.'")


if __name__ == "__main__":
    main()
