#!/usr/bin/env python
"""Regenerate the paper's Figures 4-7 as NetPIPE-style tables.

Sweeps all four transports (Portals put/get, MPICH-1.2.6, MPICH2)
through the three NetPIPE patterns and prints the curves with the
paper's published anchor values alongside.

Run:  python examples/netpipe_sweep.py [--fast]
"""

import argparse

from repro.analysis import PAPER, half_bandwidth_point, latency_at, peak_bandwidth
from repro.mpi import MPICH1, MPICH2
from repro.netpipe import (
    MPIModule,
    PortalsGetModule,
    PortalsPutModule,
    decade_sizes,
    netpipe_sizes,
    run_series,
)


def modules():
    return [
        PortalsPutModule(),
        PortalsGetModule(),
        MPIModule(MPICH1),
        MPIModule(MPICH2),
    ]


def table(series_list, latency):
    names = [s.module for s in series_list]
    print(f"{'bytes':>10} | " + " | ".join(f"{n:>12}" for n in names))
    for i, nbytes in enumerate(series_list[0].sizes()):
        row = []
        for s in series_list:
            p = s.points[i]
            row.append(f"{(p.latency_us if latency else p.bandwidth_mb_s):12.2f}")
        print(f"{nbytes:>10} | " + " | ".join(row))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="power-of-two sizes only (quick run)",
    )
    args = parser.parse_args()

    lat_sizes = (
        decade_sizes(1, 1024) if args.fast else netpipe_sizes(1, 1024)
    )
    bw_sizes = (
        decade_sizes(1, 8 << 20)
        if args.fast
        else netpipe_sizes(1, 8 << 20, perturbation=0)
    )

    print("=" * 70)
    print("Figure 4: one-way latency (us), 2 nodes, generic mode")
    print("=" * 70)
    lat = [run_series(m, "pingpong", lat_sizes) for m in modules()]
    table(lat, latency=True)
    print("\n  paper 1-byte anchors: put 5.39, get 6.60, "
          "mpich-1.2.6 7.97, mpich2 8.40")
    print("  measured            : " + ", ".join(
        f"{s.module} {latency_at(s, 1):.2f}" for s in lat))

    print("\n" + "=" * 70)
    print("Figure 5: uni-directional (ping-pong) bandwidth (MB/s)")
    print("=" * 70)
    uni = [run_series(m, "pingpong", bw_sizes) for m in modules()]
    table(uni, latency=False)
    put = uni[0]
    print(f"\n  put peak: {peak_bandwidth(put):.2f} MB/s "
          f"(paper {PAPER.put_peak_mb_s}); half-bandwidth at "
          f"{half_bandwidth_point(put)} B (paper ~{PAPER.half_bw_pingpong_bytes})")

    print("\n" + "=" * 70)
    print("Figure 6: streaming bandwidth (MB/s)")
    print("=" * 70)
    stream = [run_series(m, "stream", bw_sizes) for m in modules()]
    table(stream, latency=False)
    print(f"\n  put stream half-bandwidth at "
          f"{half_bandwidth_point(stream[0])} B (paper ~{PAPER.half_bw_stream_bytes}); "
          f"get cannot pipeline: half-bandwidth at "
          f"{half_bandwidth_point(stream[1])} B")

    print("\n" + "=" * 70)
    print("Figure 7: bi-directional bandwidth (MB/s)")
    print("=" * 70)
    bidir = [run_series(m, "bidir", bw_sizes) for m in modules()]
    table(bidir, latency=False)
    print(f"\n  put bi-dir peak: {peak_bandwidth(bidir[0]):.2f} MB/s "
          f"(paper {PAPER.put_bidir_peak_mb_s})")


if __name__ == "__main__":
    main()
