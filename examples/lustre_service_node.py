#!/usr/bin/env python
"""A Linux service node running a Lustre-style kernel-level service.

Reproduces the deployment case the bridge architecture exists for
(paper section 3.1/3.2): a Linux service node where a *kernel-level*
Portals client (Lustre's transport used exactly this path, via kbridge)
and an ordinary *user-level* process (ukbridge) share one SeaStar, while
Catamount compute nodes stream file I/O at the service.

The "object server" exposes a storage region via Portals: compute nodes
WRITE by putting to the data portal and READ by getting from it —
one-sided semantics, no server thread per client.

Run:  python examples/lustre_service_node.py
"""

import numpy as np

from repro.machine.builder import Machine
from repro.net import Torus3D
from repro.oskern import OSType
from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    ProcessId,
)
from repro.sim import MB, to_us

DATA_PORTAL = 6
WRITE_BITS = 0x0057_5249  # "WRI"
OBJECT_SIZE = 256 * 1024
CLIENTS = 4


def object_server(proc, served):
    """Kernel-level service: expose an object store region."""
    api = proc.api
    eq = yield from api.PtlEQAlloc(256)
    store = proc.alloc(CLIENTS * OBJECT_SIZE)
    me = yield from api.PtlMEAttach(
        DATA_PORTAL, ProcessId(PTL_NID_ANY, PTL_PID_ANY), WRITE_BITS
    )
    yield from api.PtlMDAttach(
        me,
        store,
        options=(
            MDOptions.OP_PUT
            | MDOptions.OP_GET
            | MDOptions.TRUNCATE
            | MDOptions.MANAGE_REMOTE
        ),
        eq=eq,
    )
    writes = 0
    while writes < CLIENTS:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.PUT_END:
            writes += 1
            served.append(
                dict(
                    initiator=str(ev.initiator),
                    offset=ev.offset,
                    nbytes=ev.mlength,
                    at_us=to_us(proc.sim.now),
                )
            )
    # stay alive while clients read back
    gets = 0
    while gets < CLIENTS:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.GET_END:
            gets += 1
    return store


def compute_client(proc, server_id, index):
    """Catamount compute node: write an object, then read it back."""
    api = proc.api
    eq = yield from api.PtlEQAlloc(64)
    payload = proc.alloc(OBJECT_SIZE)
    payload[:] = index + 1
    md = yield from api.PtlMDBind(payload, eq=eq)

    # WRITE: one-sided put into our slice of the object store
    yield from api.PtlPut(
        md, server_id, DATA_PORTAL, WRITE_BITS, remote_offset=index * OBJECT_SIZE
    )
    while True:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.SEND_END:
            break

    # READ BACK: one-sided get of the same region
    readback = proc.alloc(OBJECT_SIZE)
    rmd = yield from api.PtlMDBind(readback, eq=eq)
    yield from api.PtlGet(
        rmd, server_id, DATA_PORTAL, WRITE_BITS, remote_offset=index * OBJECT_SIZE
    )
    while True:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.REPLY_END:
            break
    assert np.array_equal(readback, payload), "readback mismatch"
    return to_us(proc.sim.now)


def main():
    # one Linux service node + CLIENTS Catamount compute nodes on a line
    machine = Machine(Torus3D((CLIENTS + 1, 1, 1), wrap=(False, False, False)))
    service = machine.node(0, os_type=OSType.LINUX)
    computes = [machine.node(i + 1) for i in range(CLIENTS)]

    lustre = service.create_kernel_client()        # kbridge
    user_tool = service.create_process()           # ukbridge, same SSNAL
    served: list[dict] = []

    server_handle = lustre.spawn(object_server, served)
    client_handles = [
        node.create_process().spawn(compute_client, lustre.id, i)
        for i, node in enumerate(computes)
    ]
    machine.run()

    print("Linux service node (kbridge Lustre service + ukbridge user proc)")
    print(f"  kernel client crossing cost : "
          f"{lustre.bridge.crossing_cost()} ps (direct call)")
    print(f"  user process crossing cost  : "
          f"{user_tool.bridge.crossing_cost()} ps (syscall)")
    print(f"  objects written then read back: {len(served)} x "
          f"{OBJECT_SIZE // 1024} KiB")
    for entry in served:
        print(f"    from {entry['initiator']:>6} at offset {entry['offset']:>8}"
              f" ({entry['nbytes']} B) t={entry['at_us']:.1f} us")
    finish = max(h.value for h in client_handles)
    total = 2 * CLIENTS * OBJECT_SIZE / MB
    print(f"  {total:.0f} MiB moved in {finish:.0f} us "
          f"({total / (finish / 1e6):.0f} MB/s aggregate)")


if __name__ == "__main__":
    main()
