#!/usr/bin/env python
"""Fault injection and end-to-end recovery: the wire turns hostile.

The paper's stack carries two reliability layers: a 16-bit CRC with
retry on every link, and an end-to-end 32-bit CRC checked by the
receiving NIC's firmware.  This example turns those from accounting
into exercised code paths.  A seeded :class:`repro.faults.FaultPlan`
drops and corrupts chunks on the wire; the firmware detects the damage
(CRC failure or a sequence gap), NAKs the sender, and the go-back-N
engine retransmits — with timeout-driven exponential backoff covering
the case where the NAK itself was lost.  When a link dies outright the
retry budget exhausts and the application sees a Portals failure event
(`PTL_NI_FAIL`) instead of a hang.

Three acts:

1. a lossy wire (1% drop + 0.1% corruption) where every payload still
   arrives byte-identical;
2. the same plan replayed — identical faults, identical picosecond
   timings (determinism is the debugging story);
3. a dead link, where recovery gives up gracefully.

Run:  python examples/chaos_recovery.py
"""

from repro.faults import (
    FaultPlan,
    LinkOutage,
    OutageMode,
    named_plan,
    verify_payload_integrity,
)
from repro.fw.firmware import ExhaustionPolicy
from repro.hw.config import DEFAULT_CONFIG
from repro.machine.builder import build_pair
from repro.portals import EventKind, NIFailType
from repro.sim import to_us, us

SIZES = [1, 13, 1024, 4096, 65536]


def act_one_lossy_wire():
    print("--- act 1: 1% chunk loss + 0.1% corruption ---")
    result = verify_payload_integrity(named_plan("drop-1pct"), SIZES)
    report = result["report"]
    print(f"  payloads intact : {result['ok']} "
          f"({result['checked']} sizes checked)")
    print(f"  injected        : {report['injected']}")
    print(f"  recovery        : {report['recovery']}")
    assert result["ok"]
    return result["machine"].now


def act_two_determinism(first_now):
    print("\n--- act 2: same plan, same seed, replayed ---")
    result = verify_payload_integrity(named_plan("drop-1pct"), SIZES)
    same = result["machine"].now == first_now
    print(f"  finish time     : {to_us(result['machine'].now):.3f} us "
          f"(replay identical: {same})")
    assert same


def act_three_dead_link():
    print("\n--- act 3: the link dies; recovery degrades gracefully ---")
    plan = FaultPlan(
        outages=(LinkOutage(start=0, end=None, mode=OutageMode.DROP),)
    )
    cfg = DEFAULT_CONFIG.replace(
        reliable_transport=True,
        gobackn_max_retries=3,
        gobackn_backoff=us(5),
        retransmit_timeout=us(20),
    )
    machine, na, nb = build_pair(
        cfg, policy=ExhaustionPolicy.GO_BACK_N, fault_plan=plan
    )
    pa, pb = na.create_process(), nb.create_process()

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(64)
        md = yield from api.PtlMDBind(proc.alloc(4096), eq=eq)
        yield from api.PtlPut(md, target, 4, 0x1234, length=4096)
        while True:
            ev = yield from api.PtlEQWait(eq)
            if (ev.kind is EventKind.SEND_END
                    and ev.ni_fail_type is NIFailType.FAIL):
                return "PTL_NI_FAIL"

    hs = pa.spawn(sender, pb.id)
    machine.run()
    print(f"  application saw : {hs.value} (no hang, no exception)")
    print(f"  retries spent   : {na.firmware.counters['retransmits']}")
    print(f"  failures        : {na.firmware.counters['gobackn_failures']}")
    assert hs.triggered and hs.value == "PTL_NI_FAIL"


def main():
    first_now = act_one_lossy_wire()
    act_two_determinism(first_now)
    act_three_dead_link()
    print("\nAll payloads intact under loss; dead links fail cleanly.")


if __name__ == "__main__":
    main()
