#!/usr/bin/env python
"""Quickstart: a one-byte Portals put between two XT3 nodes.

Builds the NetPIPE two-node configuration, attaches a match entry +
memory descriptor on the receiver, puts one byte from the sender, and
prints the one-way latency — which lands at the paper's Figure 4 value
of ~5.39 us for generic mode.

Run:  python examples/quickstart.py
"""

from repro import build_pair
from repro.portals import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    ProcessId,
)
from repro.sim import to_us

PORTAL = 4
MATCH_BITS = 0xC0FFEE

timeline = {}


def receiver(proc):
    """Post a receive target, wait for the message."""
    api = proc.api
    eq = yield from api.PtlEQAlloc(32)
    me = yield from api.PtlMEAttach(
        PORTAL, ProcessId(PTL_NID_ANY, PTL_PID_ANY), MATCH_BITS
    )
    buf = proc.alloc(64)
    yield from api.PtlMDAttach(
        me,
        buf,
        options=MDOptions.OP_PUT | MDOptions.TRUNCATE,
        eq=eq,
    )
    timeline["posted"] = proc.sim.now

    while True:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.PUT_END:
            timeline["delivered"] = proc.sim.now
            return bytes(buf[: ev.mlength])


def sender(proc, target):
    """Put one byte at the receiver's portal."""
    api = proc.api
    eq = yield from api.PtlEQAlloc(32)
    buf = proc.alloc(64)
    buf[0] = 42
    md = yield from api.PtlMDBind(buf, eq=eq)
    timeline["sent"] = proc.sim.now
    yield from api.PtlPut(md, target, PORTAL, MATCH_BITS, length=1)
    while True:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind is EventKind.SEND_END:
            return "send complete"


def main():
    machine, node_a, node_b = build_pair()
    proc_a = node_a.create_process()
    proc_b = node_b.create_process()

    recv_handle = proc_b.spawn(receiver)
    send_handle = proc_a.spawn(sender, proc_b.id)
    machine.run()

    data = recv_handle.value
    one_way = timeline["delivered"] - timeline["sent"]
    print("Portals 3.3 on simulated SeaStar / XT3")
    print(f"  delivered payload : {data!r}")
    print(f"  one-way latency   : {to_us(one_way):.2f} us "
          f"(paper Figure 4: 5.39 us)")
    print(f"  receiver interrupts taken: "
          f"{node_b.opteron.counters['interrupts']} "
          f"(small messages ride the header packet -> one interrupt)")


if __name__ == "__main__":
    main()
