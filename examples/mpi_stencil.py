#!/usr/bin/env python
"""A 1-D Jacobi heat-diffusion stencil over MPI on eight XT3 nodes.

This is the workload shape Red Storm was built for: each rank owns a
slab of the domain, exchanges one-cell halos with its neighbors every
iteration (MPI sendrecv over Portals), and the whole machine advances in
lock step.  The example reports per-iteration communication time and the
converging residual, demonstrating the MPI layer + collectives over the
simulated interconnect.

Run:  python examples/mpi_stencil.py
"""

import numpy as np

from repro.machine.builder import Machine
from repro.mpi import allreduce, barrier, create_world, run_world
from repro.net import Torus3D
from repro.sim import to_us

RANKS = 8
CELLS_PER_RANK = 512
ITERATIONS = 25
HALO_TAG = 7


def stencil(mpi, rank):
    """One rank's share of the Jacobi iteration."""
    size = mpi.size
    # float64 domain viewed as bytes for the wire
    local = np.zeros(CELLS_PER_RANK + 2)  # plus two halo cells
    if rank == 0:
        local[1] = 1000.0  # hot boundary
    halo_tx = np.zeros(8, dtype=np.uint8)
    halo_rx_lo = np.zeros(8, dtype=np.uint8)
    halo_rx_hi = np.zeros(8, dtype=np.uint8)
    comm_time = 0

    residuals = []
    for _ in range(ITERATIONS):
        t0 = mpi.sim.now
        # exchange halos with lower neighbor
        if rank > 0:
            halo_tx[:] = np.frombuffer(local[1].tobytes(), dtype=np.uint8)
            yield from mpi.sendrecv(
                halo_tx, rank - 1, halo_rx_lo, source=rank - 1, tag=HALO_TAG
            )
            local[0] = np.frombuffer(bytes(halo_rx_lo))[0]
        # exchange halos with upper neighbor
        if rank < size - 1:
            halo_tx[:] = np.frombuffer(local[-2].tobytes(), dtype=np.uint8)
            yield from mpi.sendrecv(
                halo_tx, rank + 1, halo_rx_hi, source=rank + 1, tag=HALO_TAG
            )
            local[-1] = np.frombuffer(bytes(halo_rx_hi))[0]
        comm_time += mpi.sim.now - t0

        # Jacobi update
        new = local.copy()
        new[1:-1] = 0.5 * (local[:-2] + local[2:])
        if rank == 0:
            new[1] = 1000.0  # Dirichlet boundary stays hot
        delta = float(np.abs(new - local).max())
        local = new

        # global residual via allreduce (max)
        contrib = np.frombuffer(np.float64(delta).tobytes(), dtype=np.uint8).copy()
        out = np.zeros(8, dtype=np.uint8)
        yield from allreduce(mpi, contrib, out, _f64_max)
        residuals.append(float(np.frombuffer(bytes(out))[0]))

    yield from barrier(mpi)
    return {
        "rank": rank,
        "comm_us": to_us(comm_time),
        "residuals": residuals,
        "center_value": float(local[len(local) // 2]),
    }


def _f64_max(a, b):
    """Byte-wise carrier for a float64 max reduction."""
    fa = np.frombuffer(bytes(a))[0]
    fb = np.frombuffer(bytes(b))[0]
    return np.frombuffer(np.float64(max(fa, fb)).tobytes(), dtype=np.uint8).copy()


def main():
    machine = Machine(Torus3D((RANKS, 1, 1), wrap=(False, False, False)))
    nodes = [machine.node(i) for i in range(RANKS)]
    world = create_world(machine, nodes)
    results = run_world(machine, world, stencil)

    print(f"1-D Jacobi stencil: {RANKS} ranks x {CELLS_PER_RANK} cells, "
          f"{ITERATIONS} iterations")
    print(f"  simulated wall time : {to_us(machine.now):.1f} us")
    residuals = results[0]["residuals"]
    print(f"  residual first/last : {residuals[0]:.3f} -> {residuals[-1]:.3f}")
    assert residuals[-1] < residuals[0], "Jacobi must converge"
    print("  per-rank halo-exchange time (us):")
    for r in results:
        print(f"    rank {r['rank']}: {r['comm_us']:8.1f}")
    print("  (edge ranks exchange one halo, interior ranks two)")


if __name__ == "__main__":
    main()
