#!/usr/bin/env python
"""A 4x4x4 block of Red Storm running a 3-D nearest-neighbor exchange.

Boots 64 nodes of the Red Storm arrangement (mesh in x/y, torus in z),
runs an MPI rank on each, performs a 3-D halo exchange along all six
directions plus a global allreduce, and prints the machine report —
showing the full stack operating beyond the two-node micro-benchmarks:
dimension-ordered routing across real distances, 64 firmware instances,
and per-node interrupt/DMA accounting.

Run:  python examples/redstorm_block.py
"""

import numpy as np

from repro.analysis import format_machine_report
from repro.machine.builder import Machine
from repro.mpi import allreduce, barrier, create_world, run_world
from repro.net import Torus3D
from repro.sim import to_us

DIMS = (4, 4, 4)
HALO_BYTES = 2048
TAG = 31


def neighbors(topo, rank):
    """The up-to-six face neighbors of ``rank`` in the block."""
    return sorted(set(topo.neighbors(rank).values()))


def exchange(mpi, topo, rank):
    """One round of halo exchange with every face neighbor."""
    peers = neighbors(topo, rank)
    sendbuf = np.full(HALO_BYTES, rank % 251, np.uint8)
    recvbufs = {p: np.zeros(HALO_BYTES, np.uint8) for p in peers}
    reqs = []
    for p in peers:
        reqs.append(mpi.irecv(recvbufs[p], source=p, tag=TAG))
    for p in peers:
        yield from mpi.send(sendbuf, p, tag=TAG)
    for req in reqs:
        yield from req.wait()
    for p, buf in recvbufs.items():
        assert int(buf[0]) == p % 251, f"halo from {p} corrupted"
    return len(peers)


def main():
    topo = Torus3D(DIMS, wrap=(False, False, True))
    machine = Machine(topo)
    nodes = [machine.node(i) for i in range(topo.num_nodes)]
    world = create_world(machine, nodes)

    def body(mpi, rank):
        yield from barrier(mpi)
        t0 = mpi.sim.now
        npeers = yield from exchange(mpi, topo, rank)
        # global checksum across the block
        out = np.zeros(8, np.uint8)
        yield from allreduce(mpi, np.full(8, 1, np.uint8), out)
        yield from barrier(mpi)
        return {"rank": rank, "peers": npeers, "sum": int(out[0]),
                "round_us": to_us(mpi.sim.now - t0)}

    results = run_world(machine, world, body)
    total = sum(r["peers"] for r in results)
    print(f"Red Storm block {DIMS}: {topo.num_nodes} nodes, torus in z")
    print(f"  halo exchange: {total} point-to-point transfers of "
          f"{HALO_BYTES} B, all verified")
    print(f"  allreduce result on every rank: {results[0]['sum']} "
          f"(= 64 mod 256 ranks contributing 1)")
    print(f"  slowest rank round time: "
          f"{max(r['round_us'] for r in results):.1f} us")
    print()
    report = format_machine_report(machine)
    # print the summary lines plus the two most interrupted nodes
    lines = report.splitlines()
    print("\n".join(lines[:2]))
    per_node = [
        (line, int(line.split("irq=")[1].split()[0]))
        for line in lines
        if line.startswith("node ")
    ]
    per_node.sort(key=lambda kv: -kv[1])
    print("  busiest nodes by interrupts:")
    for line, _ in per_node[:3]:
        print("   ", line.strip())


if __name__ == "__main__":
    main()
