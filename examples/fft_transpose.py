#!/usr/bin/env python
"""Parallel FFT-style matrix transpose: the alltoall workload.

Distributed FFTs — a flagship Red Storm workload — spend their
communication time in personalized all-to-all exchanges (the global
transpose between the two 1-D FFT passes).  This example distributes a
matrix by rows over 8 ranks, transposes it with `alltoall`, verifies the
math, and reports the achieved exchange bandwidth — the collective
stressing every (src, dst) pair of the fabric simultaneously.

Run:  python examples/fft_transpose.py
"""

import numpy as np

from repro.machine.builder import Machine
from repro.mpi import alltoall, barrier, create_world, run_world
from repro.net import Torus3D
from repro.sim import to_us

RANKS = 8
N = 256  # matrix is N x N bytes, N divisible by RANKS
ROWS = N // RANKS


def transpose_block_layout(local: np.ndarray, rank: int) -> np.ndarray:
    """Prepare the alltoall send buffer: block j = my rows' columns that
    belong to rank j after the transpose."""
    blocks = []
    for j in range(RANKS):
        # my local rows, columns [j*ROWS, (j+1)*ROWS), transposed
        sub = local[:, j * ROWS : (j + 1) * ROWS].T.copy()
        blocks.append(sub.reshape(-1))
    return np.concatenate(blocks)


def main():
    machine = Machine(Torus3D((RANKS, 1, 1), wrap=(True, False, False)))
    nodes = [machine.node(i) for i in range(RANKS)]
    world = create_world(machine, nodes)

    # the full matrix, for verification
    full = (np.arange(N * N, dtype=np.uint64) * 7919 % 251).astype(np.uint8)
    full = full.reshape(N, N)

    def body(mpi, rank):
        local = full[rank * ROWS : (rank + 1) * ROWS].copy()
        send = transpose_block_layout(local, rank)
        recv = np.zeros_like(send)
        yield from barrier(mpi)
        t0 = mpi.sim.now
        yield from alltoall(mpi, send, recv)
        elapsed = mpi.sim.now - t0
        yield from barrier(mpi)
        # reassemble my rows of the transposed matrix
        mine = np.zeros((ROWS, N), dtype=np.uint8)
        for j in range(RANKS):
            block = recv[j * ROWS * ROWS : (j + 1) * ROWS * ROWS]
            mine[:, j * ROWS : (j + 1) * ROWS] = block.reshape(ROWS, ROWS)
        expected = full.T[rank * ROWS : (rank + 1) * ROWS]
        assert np.array_equal(mine, expected), f"rank {rank} transpose wrong"
        return to_us(elapsed)

    times = run_world(machine, world, body)
    moved = N * N * (RANKS - 1) / RANKS  # bytes crossing rank boundaries
    slowest = max(times)
    print(f"FFT transpose: {N}x{N} matrix over {RANKS} ranks")
    print(f"  alltoall verified on every rank")
    print(f"  slowest rank: {slowest:.1f} us for its "
          f"{moved / RANKS / 1024:.1f} KiB share")
    print(f"  aggregate exchange rate: "
          f"{moved / (slowest / 1e6) / (1 << 20):.0f} MB/s across the fabric")


if __name__ == "__main__":
    main()
