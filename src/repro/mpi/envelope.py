"""MPI envelope encoding over Portals match bits and header data.

The MPI envelope (context, source rank, tag) is packed into the 64 match
bits, exactly how the real Portals MPI implementations avoid sending a
separate envelope — which is also why a 1-byte MPI message still fits the
SeaStar's 12-byte header-piggyback optimization and lands near the put
latency in Figure 4.

Layout (64 bits)::

    [63]      protocol bit (0 = eager data, 1 = rendezvous RTS)
    [62:48]   context id        (15 bits)
    [47:32]   source rank       (16 bits)
    [31:0]    tag               (32 bits)

Wildcard receives (MPI_ANY_SOURCE / MPI_ANY_TAG) become ignore bits over
the corresponding field.  Rendezvous RTS messages carry
``(cookie, length)`` in the 64-bit ``hdr_data``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MPI_ANY_SOURCE",
    "MPI_ANY_TAG",
    "PT_P2P",
    "PT_RNDV",
    "RNDV_FLAG",
    "encode_envelope",
    "recv_match",
    "decode_envelope",
    "encode_rts",
    "decode_rts",
    "Envelope",
]

MPI_ANY_SOURCE: int = -1
MPI_ANY_TAG: int = -1

#: Portal-table index used for point-to-point traffic.
PT_P2P: int = 1
#: Portal-table index where senders expose rendezvous source buffers.
PT_RNDV: int = 2

RNDV_FLAG: int = 1 << 63

_CONTEXT_SHIFT = 48
_RANK_SHIFT = 32
_CONTEXT_MASK = 0x7FFF
_RANK_MASK = 0xFFFF
_TAG_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Envelope:
    """A decoded MPI message envelope."""

    context: int
    src_rank: int
    tag: int
    rendezvous: bool = False


def encode_envelope(
    context: int, src_rank: int, tag: int, *, rendezvous: bool = False
) -> int:
    """Pack an envelope into match bits."""
    if not 0 <= context <= _CONTEXT_MASK:
        raise ValueError(f"context {context} out of range")
    if not 0 <= src_rank <= _RANK_MASK:
        raise ValueError(f"source rank {src_rank} out of range")
    if not 0 <= tag <= _TAG_MASK:
        raise ValueError(f"tag {tag} out of range")
    bits = (
        (context << _CONTEXT_SHIFT) | (src_rank << _RANK_SHIFT) | tag
    )
    if rendezvous:
        bits |= RNDV_FLAG
    return bits


def recv_match(context: int, src_rank: int, tag: int) -> tuple[int, int]:
    """(match_bits, ignore_bits) for a posted receive.

    ``src_rank=MPI_ANY_SOURCE`` and/or ``tag=MPI_ANY_TAG`` widen the
    ignore bits.  The protocol bit is always ignored: a posted receive
    matches both the eager data message and the rendezvous RTS for its
    envelope.
    """
    ignore = RNDV_FLAG
    match_rank = 0 if src_rank == MPI_ANY_SOURCE else src_rank
    match_tag = 0 if tag == MPI_ANY_TAG else tag
    if src_rank == MPI_ANY_SOURCE:
        ignore |= _RANK_MASK << _RANK_SHIFT
    if tag == MPI_ANY_TAG:
        ignore |= _TAG_MASK
    bits = encode_envelope(context, match_rank, match_tag)
    return bits, ignore


def decode_envelope(match_bits: int) -> Envelope:
    """Unpack match bits into an :class:`Envelope`."""
    return Envelope(
        context=(match_bits >> _CONTEXT_SHIFT) & _CONTEXT_MASK,
        src_rank=(match_bits >> _RANK_SHIFT) & _RANK_MASK,
        tag=match_bits & _TAG_MASK,
        rendezvous=bool(match_bits & RNDV_FLAG),
    )


_RTS_COOKIE_SHIFT = 40
_RTS_LEN_MASK = (1 << 40) - 1
_RTS_COOKIE_MASK = (1 << 23) - 1


def encode_rts(cookie: int, length: int) -> int:
    """Pack a rendezvous RTS payload descriptor into hdr_data.

    Bit 63 marks RTS (so a plain eager message, which sends hdr_data=0,
    can never be confused with one); 23 bits of cookie identify the
    exposed source MD; 40 bits carry the message length.
    """
    if not 0 <= cookie <= _RTS_COOKIE_MASK:
        raise ValueError(f"rendezvous cookie {cookie} out of range")
    if not 0 <= length <= _RTS_LEN_MASK:
        raise ValueError(f"length {length} out of range")
    return (1 << 63) | (cookie << _RTS_COOKIE_SHIFT) | length


def decode_rts(hdr_data: int) -> tuple[int, int]:
    """Unpack ``(cookie, length)``; raises if hdr_data is not an RTS."""
    if not hdr_data & (1 << 63):
        raise ValueError("hdr_data does not describe a rendezvous RTS")
    return (hdr_data >> _RTS_COOKIE_SHIFT) & _RTS_COOKIE_MASK, hdr_data & _RTS_LEN_MASK
