"""Collective operations built on the point-to-point layer.

Small, classical algorithms (the kind the era's MPICH used):

* barrier — dissemination;
* bcast — binomial tree;
* reduce / allreduce — binomial tree combine + bcast;
* gather — linear to root.

All are coroutines over :class:`~repro.mpi.pt2pt.MPIProcess` and use a
reserved high tag space so they never collide with application traffic.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from .pt2pt import MPIProcess

__all__ = ["barrier", "bcast", "reduce", "allreduce", "gather"]

_COLL_TAG_BASE = 0x7FFF0000


def barrier(mpi: MPIProcess, *, tag: int = _COLL_TAG_BASE) -> Generator:
    """Dissemination barrier: ceil(log2(n)) rounds of exchanges."""
    size = mpi.size
    if size == 1:
        return
    rank = mpi.rank
    token = np.zeros(1, dtype=np.uint8)
    scratch = np.zeros(1, dtype=np.uint8)
    round_no = 0
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        src = (rank - distance) % size
        status = yield from mpi.sendrecv(
            token, dest, scratch, source=src, tag=tag + round_no
        )
        assert status.count == 1
        distance *= 2
        round_no += 1


def bcast(
    mpi: MPIProcess, buf: np.ndarray, root: int = 0, *, tag: int = _COLL_TAG_BASE + 64
) -> Generator:
    """Binomial-tree broadcast of ``buf`` from ``root``."""
    size = mpi.size
    if size == 1:
        return
    vrank = (mpi.rank - root) % size
    # Receive phase: find our parent.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from mpi.recv(buf, source=parent, tag=tag)
            break
        mask <<= 1
    # Send phase: forward to children below our bit.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = ((vrank + mask) + root) % size
            yield from mpi.send(buf, child, tag=tag)
        mask >>= 1


def reduce(
    mpi: MPIProcess,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    root: int = 0,
    *,
    tag: int = _COLL_TAG_BASE + 128,
) -> Generator:
    """Binomial-tree reduction to ``root``.

    ``op`` combines two byte arrays elementwise (e.g. ``np.add``,
    ``np.maximum``).  Buffers are uint8 views of whatever the caller is
    reducing; for numeric reductions, view your data as bytes.
    """
    size = mpi.size
    rank = mpi.rank
    acc = np.array(sendbuf, copy=True)
    scratch = np.empty_like(acc)
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from mpi.send(acc, parent, tag=tag)
            break
        peer_v = vrank + mask
        if peer_v < size:
            peer = (peer_v + root) % size
            yield from mpi.recv(scratch, source=peer, tag=tag)
            acc = op(acc, scratch)
        mask <<= 1
    if rank == root and recvbuf is not None:
        recvbuf[:] = acc
    return acc if rank == root else None


def allreduce(
    mpi: MPIProcess,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    *,
    tag: int = _COLL_TAG_BASE + 192,
) -> Generator:
    """Reduce to rank 0 then broadcast (simple two-phase allreduce)."""
    yield from reduce(mpi, sendbuf, recvbuf, op, root=0, tag=tag)
    yield from bcast(mpi, recvbuf, root=0, tag=tag + 32)


def gather(
    mpi: MPIProcess,
    sendbuf: np.ndarray,
    recvbuf: Optional[np.ndarray],
    root: int = 0,
    *,
    tag: int = _COLL_TAG_BASE + 256,
) -> Generator:
    """Linear gather of equal-sized contributions to ``root``."""
    n = len(sendbuf)
    if mpi.rank == root:
        if recvbuf is None or len(recvbuf) < n * mpi.size:
            raise ValueError("root needs recvbuf of size n * comm size")
        recvbuf[root * n : (root + 1) * n] = sendbuf
        for src in range(mpi.size):
            if src == root:
                continue
            status = yield from mpi.recv(
                recvbuf[src * n : (src + 1) * n], source=src, tag=tag
            )
            assert status.count == n
    else:
        yield from mpi.send(sendbuf, root, tag=tag)
