"""MPI over Portals: MPICH-1.2.6 and MPICH2 models (paper section 5.1)."""

from .collectives import allreduce, barrier, bcast, gather, reduce
from .collectives2 import allgather, alltoall, scatter
from .envelope import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    PT_P2P,
    PT_RNDV,
    Envelope,
    decode_envelope,
    decode_rts,
    encode_envelope,
    encode_rts,
    recv_match,
)
from .pt2pt import MPICH1, MPICH2, MPIFlavor, MPIProcess, Request, Status
from .world import create_world, run_world

__all__ = [
    "MPIProcess",
    "MPIFlavor",
    "MPICH1",
    "MPICH2",
    "Request",
    "Status",
    "MPI_ANY_SOURCE",
    "MPI_ANY_TAG",
    "PT_P2P",
    "PT_RNDV",
    "Envelope",
    "encode_envelope",
    "decode_envelope",
    "encode_rts",
    "decode_rts",
    "recv_match",
    "create_world",
    "run_world",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]
