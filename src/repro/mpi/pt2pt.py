"""MPI point-to-point over Portals.

Two implementations are modeled, matching the paper's section 5.1:

* **MPICH-1.2.6** — Sandia's port for Portals 3.3;
* **MPICH2** — the Cray-supported implementation.

Both use the same protocol structure (the structure is dictated by
Portals); they differ in per-operation library overhead and are selected
by :class:`MPIFlavor`.

Protocol
--------
*Eager* (length <= eager limit): one ``PtlPut`` to the receiver's
point-to-point portal.  Posted receives are match entries inserted ahead
of the *unexpected* entries; anything unmatched lands in a rotating set
of unexpected buffers and is copied out when the receive is posted.

*Rendezvous* (long messages): the sender exposes its buffer under a
cookie on the rendezvous portal and sends a zero-byte RTS put carrying
``(cookie, length)`` in hdr_data; the receiver ``PtlGet``s the data
straight into the posted buffer (zero intermediate copies) and the
sender's ``GET_END`` completes the send.

The posted-receive race (message arriving while the receive is being
posted) is closed the way the real implementations do: post first, then
drain the event queue and prefer any matching unexpected message that
*arrived before the post* — swapping out an early posted-match if
necessary — so envelope ordering is preserved.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

from ..hw.config import SeaStarConfig
from ..oskern.process import HostProcess
from ..portals.constants import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
)
from ..portals.events import PortalsEvent
from ..portals.header import ProcessId
from ..sim import transfer_time
from .envelope import (
    MPI_ANY_SOURCE,
    MPI_ANY_TAG,
    PT_P2P,
    PT_RNDV,
    Envelope,
    decode_envelope,
    decode_rts,
    encode_envelope,
    encode_rts,
    recv_match,
)

__all__ = ["MPIFlavor", "MPICH1", "MPICH2", "MPIProcess", "Request", "Status"]


@dataclass(frozen=True)
class MPIFlavor:
    """Distinguishes the two measured MPI implementations."""

    name: str
    overhead_attr: str
    """SeaStarConfig attribute holding the per-op library overhead."""

    def overhead(self, config: SeaStarConfig) -> int:
        """Per-operation overhead in ps."""
        return getattr(config, self.overhead_attr)


MPICH1 = MPIFlavor(name="mpich-1.2.6", overhead_attr="mpich1_overhead")
MPICH2 = MPIFlavor(name="mpich2", overhead_attr="mpich2_overhead")


@dataclass(frozen=True)
class Status:
    """Result of a completed receive."""

    source: int
    tag: int
    count: int


@dataclass(eq=False)
class Request:
    """Handle for a non-blocking operation."""

    process: object  # sim Process
    result: Optional[Status] = None

    def wait(self) -> Generator:
        """Block until the operation completes; returns its Status (for
        receives) or None (for sends).  Re-raises the operation's failure
        if it crashed."""
        if not self.process.triggered:
            yield self.process
        if not self.process.ok:
            raise self.process.value
        value = self.process.value
        self.result = value
        return value

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self.process.triggered


@dataclass(eq=False)
class _Unexpected:
    """One message sitting in the unexpected queue.

    Records are created at PUT_START (Portals *match* order — the order
    MPI must respect) and marked ``complete`` at PUT_END when the data
    has actually landed; a receive that selects an incomplete record
    waits for its completion.  Ordering by completion instead would let
    a small inline message overtake a larger one still being deposited.
    """

    envelope: Envelope
    match_bits: int
    hdr_data: int
    buffer: Optional[np.ndarray]
    offset: int
    mlength: int
    arrived_at: int
    src: ProcessId
    consumed: bool = False
    complete: bool = True


@dataclass(eq=False)
class _PostedRecv:
    """Library record of one posted receive."""

    me: object
    md: object
    buf: np.ndarray
    completed: bool = False
    event: Optional[PortalsEvent] = None
    started: bool = False
    """A message has *matched* this entry (PUT_START seen); its deposit
    may still be in flight."""

    matched_at: int = 0
    """Simulation time of the match (for ordering against unexpected
    arrivals of the same envelope)."""

    orphaned: bool = False
    """The receive was satisfied from the unexpected queue instead; if a
    message lands in this entry anyway (it was mid-deposit during the
    swap), stash it back as an unexpected arrival."""


class MPIProcess:
    """One MPI rank, layered over a :class:`HostProcess`'s Portals API.

    Construct, then run :meth:`init` inside the simulation before any
    communication.  All communication methods are coroutines.
    """

    #: unexpected buffers: count and per-op threshold.  Sized so a burst
    #: of back-to-back eager messages (e.g. a NetPIPE stream window)
    #: never runs out of coverage between unlink and repost.
    UNEXPECTED_MES = 4
    UNEXPECTED_OPS = 32

    def __init__(
        self,
        proc: HostProcess,
        rank: int,
        ranks: list[ProcessId],
        *,
        flavor: MPIFlavor = MPICH1,
        config: SeaStarConfig,
        context: int = 1,
        eager_limit: Optional[int] = None,
    ):
        self.proc = proc
        self.api = proc.api
        self.sim = proc.sim
        self.rank = rank
        self.ranks = ranks
        self.flavor = flavor
        self.config = config
        self.context = context
        self.eager_limit = (
            config.mpi_eager_limit if eager_limit is None else eager_limit
        )
        self._overhead = flavor.overhead(config)
        self._cookie = itertools.count(1)
        self.rx_eq = None
        self.tx_eq = None
        self._unexpected: list[_Unexpected] = []
        self._pending_unexpected: dict = {}  # (md id, offset) -> record
        self._unexpected_mes: list = []
        self._unexpected_mds: dict = {}  # md -> me
        self._posted: dict = {}  # md -> _PostedRecv
        self._tx_state: dict = {}  # md -> set of EventKind seen
        self.initialized = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Communicator size."""
        return len(self.ranks)

    def target(self, rank: int) -> ProcessId:
        """Portals identity of ``rank``."""
        return self.ranks[rank]

    def init(self) -> Generator:
        """Allocate EQs and the unexpected-message machinery."""
        if self.initialized:
            return
        api = self.api
        self.rx_eq = yield from api.PtlEQAlloc(256)
        self.tx_eq = yield from api.PtlEQAlloc(256)
        for _ in range(self.UNEXPECTED_MES):
            yield from self._post_unexpected()
        self.initialized = True

    def _post_unexpected(self) -> Generator:
        api = self.api
        me = yield from api.PtlMEAttach(
            PT_P2P, ProcessId(PTL_NID_ANY, PTL_PID_ANY), 0, (1 << 64) - 1
        )
        buf = self.proc.alloc(self.UNEXPECTED_OPS * self.eager_limit)
        md = yield from api.PtlMDAttach(
            me,
            buf,
            threshold=self.UNEXPECTED_OPS,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE,
            eq=self.rx_eq,
            unlink=True,
            user_ptr="unexpected",
        )
        self._unexpected_mes.append(me)
        self._unexpected_mds[md] = me

    def _anchor_me(self):
        for me in self._unexpected_mes:
            if me.linked:
                return me
        raise RuntimeError("no unexpected match entry is linked")

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------
    def _drain(self) -> Generator:
        """Consume every pending event on both EQs into library state."""
        yield from self.proc.bridge.eq_poll()
        for eq in (self.rx_eq, self.tx_eq):
            while True:
                ev = eq.try_get()
                if ev is None:
                    break
                self._consume_event(ev)

    def _consume_event(self, ev: PortalsEvent) -> None:
        md = ev.md_handle
        if ev.kind is EventKind.PUT_START:
            if md in self._posted:
                rec = self._posted[md]
                rec.started = True
                rec.matched_at = ev.sim_time
                return
            if md in self._unexpected_mds:
                # record at match time (envelope order); data lands later
                rec = _Unexpected(
                    envelope=decode_envelope(ev.match_bits),
                    match_bits=ev.match_bits,
                    hdr_data=ev.hdr_data,
                    buffer=md.buffer,
                    offset=ev.offset,
                    mlength=ev.mlength,
                    arrived_at=ev.sim_time,
                    src=ev.initiator,
                    complete=False,
                )
                self._unexpected.append(rec)
                self._pending_unexpected[(id(md), ev.offset)] = rec
            return
        if ev.kind is EventKind.PUT_END:
            if md in self._unexpected_mds or (id(md), ev.offset) in self._pending_unexpected:
                rec = self._pending_unexpected.pop((id(md), ev.offset), None)
                if rec is not None:
                    rec.mlength = ev.mlength
                    rec.complete = True
                else:
                    # START was not observed (e.g. events disabled):
                    # fall back to completion-order recording
                    self._unexpected.append(
                        _Unexpected(
                            envelope=decode_envelope(ev.match_bits),
                            match_bits=ev.match_bits,
                            hdr_data=ev.hdr_data,
                            buffer=md.buffer,
                            offset=ev.offset,
                            mlength=ev.mlength,
                            arrived_at=ev.sim_time,
                            src=ev.initiator,
                        )
                    )
            elif md in self._posted:
                rec = self._posted[md]
                rec.completed = True
                rec.event = ev
                if rec.orphaned:
                    self._stash_posted_as_unexpected(rec)
                    del self._posted[md]
        elif ev.kind is EventKind.UNLINK:
            me = self._unexpected_mds.pop(md, None)
            if me is not None and me in self._unexpected_mes:
                self._unexpected_mes.remove(me)
                # Repost immediately (not at the next drain): coverage
                # gaps here turn into dropped eager messages.
                self.sim.process(
                    self._post_unexpected(), name=f"repost:{self.rank}"
                )
        elif ev.kind in (
            EventKind.SEND_END,
            EventKind.GET_END,
            EventKind.REPLY_END,
            EventKind.ACK,
        ):
            self._tx_state.setdefault(md, []).append(ev)
        # START events are informational; the library ignores them.

    def _wait_for(self, cond: Callable[[], bool]) -> Generator:
        """Drive progress until ``cond()`` holds."""
        while True:
            yield from self._drain()
            if cond():
                return
            signals = [self.rx_eq.wait_signal(), self.tx_eq.wait_signal()]
            yield self.sim.any_of(signals)

    def _take_tx_event(self, md, kinds) -> Optional[PortalsEvent]:
        events = self._tx_state.get(md)
        if not events:
            return None
        for i, ev in enumerate(events):
            if ev.kind in kinds:
                return events.pop(i)
        return None

    # ------------------------------------------------------------------
    # Send
    # ------------------------------------------------------------------
    def send(self, buf: np.ndarray, dest: int, tag: int = 0) -> Generator:
        """Blocking standard send (returns when the buffer is reusable)."""
        yield from self._send_body(buf, dest, tag)

    def isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes via :meth:`Request.wait`."""
        return Request(self.sim.process(self._send_body(buf, dest, tag)))

    def _send_body(self, buf: np.ndarray, dest: int, tag: int) -> Generator:
        if not self.initialized:
            raise RuntimeError("MPIProcess.init() has not run")
        cpu = self.proc.bridge.cpu
        yield from cpu.execute(self._overhead // 2)
        nbytes = len(buf)
        if nbytes <= self.eager_limit:
            yield from self._send_eager(buf, dest, tag, nbytes)
        else:
            yield from self._send_rendezvous(buf, dest, tag, nbytes)
        yield from cpu.execute(self._overhead - self._overhead // 2)

    def _send_eager(self, buf, dest, tag, nbytes) -> Generator:
        api = self.api
        bits = encode_envelope(self.context, self.rank, tag)
        md = yield from api.PtlMDBind(buf, eq=self.tx_eq)
        yield from api.PtlPut(
            md, self.target(dest), PT_P2P, bits, length=nbytes
        )
        result: dict = {}

        def done() -> bool:
            ev = self._take_tx_event(md, (EventKind.SEND_END,))
            if ev is not None:
                result["ev"] = ev
                return True
            return False

        yield from self._wait_for(done)
        yield from api.PtlMDUnlink(md)

    def _send_rendezvous(self, buf, dest, tag, nbytes) -> Generator:
        api = self.api
        cookie = next(self._cookie) & ((1 << 23) - 1)
        me = yield from api.PtlMEAttach(
            PT_RNDV, self.target(dest), cookie, 0, unlink=True, position_head=True
        )
        src_md = yield from api.PtlMDAttach(
            me,
            buf,
            threshold=1,
            options=MDOptions.OP_GET,
            eq=self.tx_eq,
            unlink=True,
            user_ptr="rndv-src",
        )
        bits = encode_envelope(self.context, self.rank, tag, rendezvous=True)
        rts_md = yield from api.PtlMDBind(buf[:0], eq=None)
        yield from api.PtlPut(
            self._rts_md(rts_md),
            self.target(dest),
            PT_P2P,
            bits,
            hdr_data=encode_rts(cookie, nbytes),
            length=0,
        )

        def got() -> bool:
            return self._take_tx_event(src_md, (EventKind.GET_END,)) is not None

        yield from self._wait_for(got)
        yield from api.PtlMDUnlink(rts_md)

    @staticmethod
    def _rts_md(md):
        # zero-length MD bound for the RTS put; no events wanted.
        return md

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def recv(
        self, buf: np.ndarray, source: int = MPI_ANY_SOURCE, tag: int = MPI_ANY_TAG
    ) -> Generator:
        """Blocking receive into ``buf``; returns a :class:`Status`."""
        status = yield from self._recv_body(buf, source, tag)
        return status

    def irecv(
        self, buf: np.ndarray, source: int = MPI_ANY_SOURCE, tag: int = MPI_ANY_TAG
    ) -> Request:
        """Non-blocking receive."""
        return Request(self.sim.process(self._recv_body(buf, source, tag)))

    def _recv_body(self, buf, source, tag) -> Generator:
        if not self.initialized:
            raise RuntimeError("MPIProcess.init() has not run")
        cpu = self.proc.bridge.cpu
        yield from cpu.execute(self._overhead // 2)

        # Fast path: already unexpectedly received.
        yield from self._drain()
        hit = self._match_unexpected(source, tag)
        if hit is not None:
            status = yield from self._consume_unexpected(hit, buf)
            yield from cpu.execute(self._overhead - self._overhead // 2)
            return status

        # Post the receive, then close the race window.
        api = self.api
        bits, ignore = recv_match(self.context, source, tag)
        anchor = self._anchor_me()
        match_id = (
            ProcessId(PTL_NID_ANY, PTL_PID_ANY)
            if source == MPI_ANY_SOURCE
            else self.target(source)
        )
        me = yield from api.PtlMEInsert(anchor, match_id, bits, ignore, unlink=True)
        md = yield from api.PtlMDAttach(
            me,
            buf,
            threshold=1,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE,
            eq=self.rx_eq,
            unlink=True,
            user_ptr="posted-recv",
        )
        posted = _PostedRecv(me=me, md=md, buf=buf)
        self._posted[md] = posted
        posted_at = self.sim.now

        del posted_at  # superseded by per-event match times below

        def outcome_known() -> bool:
            return (
                posted.started
                or posted.completed
                or self._match_unexpected(source, tag) is not None
            )

        yield from self._wait_for(outcome_known)
        hit = self._match_unexpected(source, tag)
        # Envelope order is the *match* order.  Prefer the posted entry
        # when it matched first (or is the only match); prefer the
        # unexpected record when it matched earlier — e.g. its message
        # arrived while this receive was being posted, or consumed the
        # posted entry's predecessor slot.
        if hit is not None and (
            not posted.started or hit.arrived_at < posted.matched_at
        ):
            if posted.completed:
                # the posted entry swallowed a later message: stash it
                self._stash_posted_as_unexpected(posted)
                del self._posted[md]
            elif posted.started:
                # a later message is mid-deposit into it: stash at END
                posted.orphaned = True
            else:
                # nothing matched it: remove it atomically so it cannot
                # swallow (and truncate!) a future same-envelope message
                self._cancel_posted_now(posted)
                del self._posted[md]
                yield from self.proc.bridge.admin()
            status = yield from self._consume_unexpected(hit, buf)
            yield from cpu.execute(self._overhead - self._overhead // 2)
            return status
        yield from self._wait_for(lambda: posted.completed)
        del self._posted[md]
        ev = posted.event
        env = decode_envelope(ev.match_bits)
        if env.rendezvous:
            status = yield from self._fetch_rendezvous(
                buf, ev.hdr_data, ev.initiator, env
            )
        else:
            status = Status(source=env.src_rank, tag=env.tag, count=ev.mlength)
        yield from cpu.execute(self._overhead - self._overhead // 2)
        return status

    def _match_unexpected(
        self, source, tag, before: Optional[int] = None
    ) -> Optional[_Unexpected]:
        for rec in self._unexpected:
            if rec.consumed:
                continue
            if before is not None and rec.arrived_at > before:
                continue
            if rec.envelope.context != self.context:
                continue
            if source != MPI_ANY_SOURCE and rec.envelope.src_rank != source:
                continue
            if tag != MPI_ANY_TAG and rec.envelope.tag != tag:
                continue
            return rec
        return None

    def _consume_unexpected(self, rec: _Unexpected, buf) -> Generator:
        rec.consumed = True
        self._unexpected.remove(rec)
        if not rec.complete:
            # selected in match order; the deposit is still in flight
            yield from self._wait_for(lambda: rec.complete)
        if rec.envelope.rendezvous:
            status = yield from self._fetch_rendezvous(
                buf, rec.hdr_data, rec.src, rec.envelope
            )
            return status
        n = min(rec.mlength, len(buf))
        if n > 0 and rec.buffer is not None:
            buf[:n] = rec.buffer[rec.offset : rec.offset + n]
            yield from self.proc.bridge.cpu.execute(
                transfer_time(n, self.config.host_copy_bytes_per_s)
            )
        return Status(source=rec.envelope.src_rank, tag=rec.envelope.tag, count=n)

    def _stash_posted_as_unexpected(self, posted: _PostedRecv) -> None:
        ev = posted.event
        stash = np.array(posted.buf[: ev.mlength], copy=True)
        self._unexpected.append(
            _Unexpected(
                envelope=decode_envelope(ev.match_bits),
                match_bits=ev.match_bits,
                hdr_data=ev.hdr_data,
                buffer=stash,
                offset=0,
                mlength=ev.mlength,
                arrived_at=posted.matched_at or ev.sim_time,
                src=ev.initiator,
            )
        )
        self._unexpected.sort(key=lambda r: r.arrived_at)

    def _cancel_posted_now(self, posted: _PostedRecv) -> None:
        """Synchronously unlink a posted entry (PtlMDUpdate-style atomic
        removal: no yield, so no message can slip in mid-cancel; the
        caller charges the admin cost afterwards)."""
        me = posted.me
        if me is None or not me.linked:
            return
        mlist = self.api.ni.table.match_list(me.ptl_index)
        mlist.unlink(me)
        if me.on_unlink is not None:
            callback, me.on_unlink = me.on_unlink, None
            callback()
        md = me.md
        if md is not None and md.active:
            md.active = False
            if md.on_unlink is not None:
                callback, md.on_unlink = md.on_unlink, None
                callback()
        me.md = None

    def _fetch_rendezvous(self, buf, hdr_data, initiator, env) -> Generator:
        api = self.api
        cookie, total = decode_rts(hdr_data)
        n = min(total, len(buf))
        md = yield from api.PtlMDBind(buf[:n], eq=self.rx_eq)
        self._posted[md] = _PostedRecv(me=None, md=md, buf=buf)  # track replies
        yield from api.PtlGet(md, initiator, PT_RNDV, cookie, length=n)
        result: dict = {}

        def got() -> bool:
            ev = self._take_tx_event(md, (EventKind.REPLY_END,))
            if ev is not None:
                result["ev"] = ev
                return True
            return False

        yield from self._wait_for(got)
        del self._posted[md]
        yield from api.PtlMDUnlink(md)
        return Status(source=env.src_rank, tag=env.tag, count=result["ev"].mlength)

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def iprobe(
        self, source: int = MPI_ANY_SOURCE, tag: int = MPI_ANY_TAG
    ) -> Generator:
        """Non-blocking probe: Status of the first matching unexpected
        message without consuming it, or None.

        Like the real implementations, probing can only see messages that
        have *arrived* (the unexpected queue); a matching posted receive
        would have consumed the message already.
        """
        yield from self._drain()
        rec = self._match_unexpected(source, tag)
        if rec is None:
            return None
        count = rec.mlength
        if rec.envelope.rendezvous:
            _, count = decode_rts(rec.hdr_data)
        return Status(
            source=rec.envelope.src_rank, tag=rec.envelope.tag, count=count
        )

    def probe(
        self, source: int = MPI_ANY_SOURCE, tag: int = MPI_ANY_TAG
    ) -> Generator:
        """Blocking probe: wait until a matching message has arrived."""
        result: dict = {}

        def seen() -> bool:
            rec = self._match_unexpected(source, tag)
            if rec is not None:
                result["rec"] = rec
                return True
            return False

        yield from self._wait_for(seen)
        rec = result["rec"]
        count = rec.mlength
        if rec.envelope.rendezvous:
            _, count = decode_rts(rec.hdr_data)
        return Status(
            source=rec.envelope.src_rank, tag=rec.envelope.tag, count=count
        )

    # ------------------------------------------------------------------
    # Synchronous send
    # ------------------------------------------------------------------
    def ssend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Generator:
        """Synchronous send: completes only once the receiver has
        *matched* the message.

        Rendezvous sends are inherently synchronous (the receiver's get
        completes them); eager sends request a Portals ACK — the ACK
        fires when the target MD accepted the data, i.e. after matching.
        """
        cpu = self.proc.bridge.cpu
        yield from cpu.execute(self._overhead // 2)
        nbytes = len(buf)
        if nbytes > self.eager_limit:
            yield from self._send_rendezvous(buf, dest, tag, nbytes)
        else:
            yield from self._ssend_eager(buf, dest, tag, nbytes)
        yield from cpu.execute(self._overhead - self._overhead // 2)

    def _ssend_eager(self, buf, dest, tag, nbytes) -> Generator:
        from ..portals.constants import PTL_ACK_REQ

        api = self.api
        bits = encode_envelope(self.context, self.rank, tag)
        md = yield from api.PtlMDBind(buf, eq=self.tx_eq)
        yield from api.PtlPut(
            md,
            self.target(dest),
            PT_P2P,
            bits,
            length=nbytes,
            ack_req=PTL_ACK_REQ,
        )

        def acked() -> bool:
            return self._take_tx_event(md, (EventKind.ACK,)) is not None

        yield from self._wait_for(acked)
        # drain the SEND_END too so unlink is clean
        def sent() -> bool:
            return self._take_tx_event(md, (EventKind.SEND_END,)) is not None

        yield from self._wait_for(sent)
        yield from api.PtlMDUnlink(md)

    # ------------------------------------------------------------------
    # Combined / convenience
    # ------------------------------------------------------------------
    def sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int = MPI_ANY_SOURCE,
        tag: int = 0,
    ) -> Generator:
        """Concurrent send + receive (deadlock-free exchange)."""
        sreq = self.isend(sendbuf, dest, tag)
        rreq = self.irecv(recvbuf, source, tag)
        yield from sreq.wait()
        status = yield from rreq.wait()
        return status
