"""Additional collectives: scatter, allgather, alltoall.

Classical linear/ring algorithms layered on the point-to-point engine,
completing the collective set scientific codes of the Red Storm era
actually used (FFT transposes are alltoall; domain loading is scatter).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from .pt2pt import MPIProcess

__all__ = ["scatter", "allgather", "alltoall"]

_TAG_BASE = 0x7FFE0000


def scatter(
    mpi: MPIProcess,
    sendbuf: Optional[np.ndarray],
    recvbuf: np.ndarray,
    root: int = 0,
    *,
    tag: int = _TAG_BASE,
) -> Generator:
    """Root distributes equal slices of ``sendbuf``; each rank receives
    its slice into ``recvbuf``."""
    n = len(recvbuf)
    if mpi.rank == root:
        if sendbuf is None or len(sendbuf) < n * mpi.size:
            raise ValueError("root needs sendbuf of size n * comm size")
        recvbuf[:] = sendbuf[root * n : (root + 1) * n]
        for dst in range(mpi.size):
            if dst == root:
                continue
            yield from mpi.send(sendbuf[dst * n : (dst + 1) * n], dst, tag=tag)
    else:
        status = yield from mpi.recv(recvbuf, source=root, tag=tag)
        if status.count != n:
            raise RuntimeError(
                f"scatter short read: {status.count} != {n}"
            )


def allgather(
    mpi: MPIProcess,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    tag: int = _TAG_BASE + 64,
) -> Generator:
    """Ring allgather: after ``size - 1`` steps every rank holds every
    contribution, ordered by rank."""
    n = len(sendbuf)
    size = mpi.size
    if len(recvbuf) < n * size:
        raise ValueError("recvbuf must hold n * comm size bytes")
    recvbuf[mpi.rank * n : (mpi.rank + 1) * n] = sendbuf
    if size == 1:
        return
    right = (mpi.rank + 1) % size
    left = (mpi.rank - 1) % size
    # pass blocks around the ring; at step s we forward the block that
    # originated at (rank - s) mod size
    for step in range(size - 1):
        src_block = (mpi.rank - step) % size
        incoming_block = (mpi.rank - step - 1) % size
        outgoing = recvbuf[src_block * n : (src_block + 1) * n].copy()
        incoming = recvbuf[incoming_block * n : (incoming_block + 1) * n]
        yield from mpi.sendrecv(
            outgoing, right, incoming, source=left, tag=tag + step
        )


def alltoall(
    mpi: MPIProcess,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    tag: int = _TAG_BASE + 256,
) -> Generator:
    """Personalized all-to-all: rank i's block j goes to rank j's slot i.

    Pairwise-exchange schedule: ``size`` rounds, partner = rank XOR round
    when size is a power of two, otherwise a shifted ring — both
    contention-friendly classics.
    """
    size = mpi.size
    n = len(recvbuf) // size
    if len(sendbuf) < n * size or len(recvbuf) < n * size:
        raise ValueError("buffers must hold n * comm size bytes")
    recvbuf[mpi.rank * n : (mpi.rank + 1) * n] = sendbuf[
        mpi.rank * n : (mpi.rank + 1) * n
    ]
    power_of_two = size & (size - 1) == 0
    for step in range(1, size):
        if power_of_two:
            partner = mpi.rank ^ step
        else:
            partner = (mpi.rank + step) % size
        out = sendbuf[partner * n : (partner + 1) * n]
        into = recvbuf[partner * n : (partner + 1) * n]
        if power_of_two or partner != mpi.rank:
            if power_of_two:
                yield from mpi.sendrecv(
                    out, partner, into, source=partner, tag=tag + step
                )
            else:
                recv_from = (mpi.rank - step) % size
                incoming = recvbuf[recv_from * n : (recv_from + 1) * n]
                yield from mpi.sendrecv(
                    out, partner, incoming, source=recv_from, tag=tag + step
                )
