"""MPI world construction helpers.

``create_world`` boots processes across a machine's nodes and wires them
into a communicator; ``run_world`` runs one coroutine per rank (each gets
``(mpi, rank)``) to completion, handling init.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from ..machine.builder import Machine
from ..machine.node import Node
from ..portals.header import ProcessId
from .pt2pt import MPICH1, MPIFlavor, MPIProcess

__all__ = ["create_world", "run_world"]


def create_world(
    machine: Machine,
    nodes: Sequence[Node],
    *,
    ranks_per_node: int = 1,
    flavor: MPIFlavor = MPICH1,
    accelerated: bool = False,
    eager_limit: Optional[int] = None,
) -> list[MPIProcess]:
    """Create ``len(nodes) * ranks_per_node`` MPI ranks.

    Ranks are laid out node-major (rank r lives on nodes[r //
    ranks_per_node]), the standard XT3 placement.
    """
    procs = []
    for node in nodes:
        for _ in range(ranks_per_node):
            procs.append(node.create_process(accelerated=accelerated))
    ids: list[ProcessId] = [p.id for p in procs]
    world = [
        MPIProcess(
            proc,
            rank,
            ids,
            flavor=flavor,
            config=machine.config,
            eager_limit=eager_limit,
        )
        for rank, proc in enumerate(procs)
    ]
    return world


def run_world(
    machine: Machine,
    world: Sequence[MPIProcess],
    main: Callable[[MPIProcess, int], Generator],
    *,
    until: Optional[int] = None,
) -> list:
    """Run ``main(mpi, rank)`` on every rank; returns per-rank results.

    Handles ``mpi.init()`` before the user body.  The machine is advanced
    until all rank processes finish (or ``until``).
    """

    def body(mpi: MPIProcess, rank: int):
        yield from mpi.init()
        result = yield from main(mpi, rank)
        return result

    handles = [
        machine.sim.process(body(mpi, rank), name=f"mpi-rank{rank}")
        for rank, mpi in enumerate(world)
    ]
    machine.run(until=until)
    results = []
    for rank, handle in enumerate(handles):
        if not handle.triggered:
            raise RuntimeError(f"rank {rank} did not finish (deadlock?)")
        if not handle.ok:
            raise handle.value
        results.append(handle.value)
    return results
