"""Golden-baseline comparison: gate simulated metrics against drift.

The goldens under ``benchmarks/golden/`` capture the tree's simulated
numbers, one JSON per figure.  The comparator's default policy is the
strictest possible: simulated quantities (DES picosecond series and the
anchor metrics derived from them) must match **bit-identically** —
calibration is deterministic, so any difference is a real behavior
change that either needs fixing or a deliberate ``--update-golden``.
Per-metric tolerances can relax individual anchors; wall-clock is never
compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .schema import SCHEMA_VERSION, canonical_json

__all__ = [
    "Tolerance",
    "Drift",
    "CompareReport",
    "load_golden_dir",
    "update_golden",
    "compare_results",
]


@dataclass(frozen=True)
class Tolerance:
    """Allowed deviation for one metric: |d| <= abs_ or |d|/golden <= rel."""

    rel: float = 0.0
    abs_: float = 0.0

    def accepts(self, golden: float, measured: float) -> bool:
        delta = abs(measured - golden)
        if delta == 0:
            return True
        if delta <= self.abs_:
            return True
        return golden != 0 and delta / abs(golden) <= self.rel


_EXACT = Tolerance()


@dataclass
class Drift:
    """One out-of-tolerance comparison."""

    figure: str
    variant: str
    what: str  # metric name, or "series[<size>B].total_ps", ...
    golden: float
    measured: float

    @property
    def rel(self) -> float:
        if self.golden == 0:
            return float("inf") if self.measured else 0.0
        return (self.measured - self.golden) / self.golden


@dataclass
class CompareReport:
    """Outcome of one results-vs-goldens comparison."""

    compared: int = 0
    drifts: List[Drift] = field(default_factory=list)
    missing_figures: List[str] = field(default_factory=list)  # in golden only
    extra_figures: List[str] = field(default_factory=list)  # in results only
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts and not self.missing_figures


def load_golden_dir(path: Path) -> Dict[str, Dict[str, Any]]:
    """Load ``<dir>/*.json`` as {figure_name: figure_document}."""
    import json

    path = Path(path)
    if not path.is_dir():
        raise FileNotFoundError(f"golden directory {path} does not exist")
    goldens: Dict[str, Dict[str, Any]] = {}
    for file in sorted(path.glob("*.json")):
        with open(file, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{file}: schema {doc.get('schema')!r}, "
                f"expected {SCHEMA_VERSION!r}"
            )
        goldens[doc["figure"]] = doc
    return goldens


def update_golden(results: Dict[str, Any], path: Path) -> List[Path]:
    """Write one golden JSON per figure from a results document."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for fig_name, fig in results["figures"].items():
        doc = {
            "schema": SCHEMA_VERSION,
            "figure": fig_name,
            "mode": results["mode"],
            "title": fig.get("title", fig_name),
            "variants": fig["variants"],
        }
        out = path / f"{fig_name}.json"
        out.write_text(canonical_json(doc), encoding="utf-8")
        written.append(out)
    return written


def _compare_series(
    figure: str,
    variant: str,
    golden: Dict[str, Any],
    measured: Dict[str, Any],
    report: CompareReport,
) -> None:
    if list(golden["sizes"]) != list(measured["sizes"]):
        report.drifts.append(
            Drift(figure, variant, "series.sizes (grid changed)", 0.0, 1.0)
        )
        return
    for key in ("total_ps", "repeats", "bytes_moved"):
        for size, want, got in zip(golden["sizes"], golden[key], measured[key]):
            report.compared += 1
            if want != got:
                report.drifts.append(
                    Drift(
                        figure,
                        variant,
                        f"series[{size}B].{key}",
                        float(want),
                        float(got),
                    )
                )


def compare_results(
    results: Dict[str, Any],
    goldens: Dict[str, Dict[str, Any]],
    tolerances: Optional[Dict[str, Tolerance]] = None,
) -> CompareReport:
    """Compare a results document against loaded goldens.

    ``tolerances`` maps metric names (``"peak_mb_s"``) or qualified
    names (``"fig5/put/peak_mb_s"``) to a :class:`Tolerance`; anything
    unlisted must match exactly.  Simulated series are always exact.
    """
    tolerances = tolerances or {}
    report = CompareReport()
    figures = results["figures"]

    for fig_name in goldens:
        if fig_name not in figures:
            report.missing_figures.append(fig_name)
    for fig_name in figures:
        if fig_name not in goldens:
            report.extra_figures.append(fig_name)
            report.notes.append(
                f"{fig_name}: no golden committed (run --update-golden)"
            )

    for fig_name, golden in sorted(goldens.items()):
        if fig_name not in figures:
            continue
        if golden.get("mode") != results.get("mode"):
            report.drifts.append(
                Drift(fig_name, "-", "mode (golden vs run mismatch)", 0.0, 1.0)
            )
            continue
        measured_fig = figures[fig_name]
        for variant, gvar in sorted(golden["variants"].items()):
            mvar = measured_fig["variants"].get(variant)
            if mvar is None:
                report.drifts.append(
                    Drift(fig_name, variant, "variant missing", 0.0, 1.0)
                )
                continue
            if "series" in gvar:
                if "series" not in mvar:
                    report.drifts.append(
                        Drift(fig_name, variant, "series missing", 0.0, 1.0)
                    )
                else:
                    _compare_series(
                        fig_name, variant, gvar["series"], mvar["series"], report
                    )
            for metric, want in sorted(gvar.get("metrics", {}).items()):
                report.compared += 1
                got = mvar.get("metrics", {}).get(metric)
                if got is None:
                    report.drifts.append(
                        Drift(fig_name, variant, f"{metric} missing", want, 0.0)
                    )
                    continue
                tol = tolerances.get(
                    f"{fig_name}/{variant}/{metric}",
                    tolerances.get(metric, _EXACT),
                )
                if not tol.accepts(want, got):
                    report.drifts.append(Drift(fig_name, variant, metric, want, got))
    return report
