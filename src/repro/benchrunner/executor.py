"""Shard execution: in-process serial, or fanned across a worker pool.

Every shard is an independent single-threaded DES run with its own
machine and (where applicable) its own fixed seed, so the pool adds
parallelism without touching determinism: results depend only on the
shard description, never on which process ran it or in what order.
Workers are spawned (not forked) so each starts from clean module
state.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from .discovery import SPECS, Shard, discover_shards
from .pool import PoolTask, run_pool
from .schema import SeriesData, ShardResult, merge_shards

__all__ = ["execute_shard", "run_bench", "shard_cache_request"]


def _make_module(variant: str) -> Any:
    from ..mpi import MPICH1, MPICH2
    from ..netpipe import MPIModule, PortalsGetModule, PortalsPutModule

    if variant == "put":
        return PortalsPutModule()
    if variant == "get":
        return PortalsGetModule()
    if variant == "mpich1":
        return MPIModule(MPICH1)
    if variant == "mpich2":
        return MPIModule(MPICH2)
    raise ValueError(f"unknown module variant {variant!r}")


# -- ablation runners -------------------------------------------------------
# Each mirrors one benchmarks/bench_*.py sweep and returns a flat
# {metric: value} dict of simulated quantities.


def _lat_sizes(fast: bool, max_bytes: int) -> List[int]:
    from ..netpipe.sizes import decade_sizes, netpipe_sizes

    return decade_sizes(1, max_bytes) if fast else netpipe_sizes(1, max_bytes)


def _run_ablation_smallmsg(fast: bool) -> Dict[str, float]:
    from ..analysis import latency_at
    from ..hw.config import SeaStarConfig
    from ..netpipe import PortalsPutModule, netpipe_sizes, run_series

    sizes = netpipe_sizes(1, 256)  # needs 12/13-byte resolution in any mode
    with_opt = run_series(PortalsPutModule(), "pingpong", sizes)
    without = run_series(
        PortalsPutModule(),
        "pingpong",
        sizes,
        config=SeaStarConfig(small_msg_bytes=0),
    )
    return {
        "latency_1b_on_us": latency_at(with_opt, 1),
        "latency_1b_off_us": latency_at(without, 1),
        "step_on_us": latency_at(with_opt, 13) - latency_at(with_opt, 12),
        "step_off_us": latency_at(without, 13) - latency_at(without, 12),
    }


def _run_ablation_accel(fast: bool) -> Dict[str, float]:
    from ..analysis import half_bandwidth_point, latency_at, peak_bandwidth
    from ..netpipe import PortalsPutModule, netpipe_sizes, run_series
    from ..netpipe.sizes import decade_sizes

    lat_sizes = _lat_sizes(fast, 1024)
    bw_sizes = (
        decade_sizes(1, 1024 * 1024)
        if fast
        else netpipe_sizes(1, 8 * 1024 * 1024, perturbation=0)
    )
    generic_lat = run_series(PortalsPutModule(), "pingpong", lat_sizes)
    accel_lat = run_series(PortalsPutModule(accelerated=True), "pingpong", lat_sizes)
    generic_bw = run_series(PortalsPutModule(), "pingpong", bw_sizes)
    accel_bw = run_series(PortalsPutModule(accelerated=True), "pingpong", bw_sizes)
    return {
        "generic_latency_1b_us": latency_at(generic_lat, 1),
        "accel_latency_1b_us": latency_at(accel_lat, 1),
        "generic_half_bw_bytes": float(half_bandwidth_point(generic_bw)),
        "accel_half_bw_bytes": float(half_bandwidth_point(accel_bw)),
        "generic_peak_mb_s": peak_bandwidth(generic_bw),
        "accel_peak_mb_s": peak_bandwidth(accel_bw),
    }


def _run_ablation_interrupt_cost(fast: bool) -> Dict[str, float]:
    from ..analysis import latency_at
    from ..hw.config import SeaStarConfig
    from ..netpipe import PortalsPutModule, run_series
    from ..sim import us

    out: Dict[str, float] = {}
    for irq in [0.5, 1.0, 2.0, 3.0, 4.0]:
        cfg = SeaStarConfig(interrupt_overhead=us(irq))
        generic = run_series(PortalsPutModule(), "pingpong", [1, 1024], config=cfg)
        accel = run_series(
            PortalsPutModule(accelerated=True), "pingpong", [1], config=cfg
        )
        tag = f"irq{irq:g}us"
        out[f"put_1b_us_{tag}"] = latency_at(generic, 1)
        out[f"put_1kb_us_{tag}"] = latency_at(generic, 1024)
        out[f"accel_1b_us_{tag}"] = latency_at(accel, 1)
    return out


def _run_ablation_crc(fast: bool) -> Dict[str, float]:
    from ..analysis import peak_bandwidth
    from ..hw.config import SeaStarConfig
    from ..netpipe import PortalsPutModule, run_series

    out: Dict[str, float] = {}
    for prob in [0.0, 0.001, 0.01, 0.05, 0.2]:
        cfg = SeaStarConfig(link_crc_retry_prob=prob)
        series = run_series(PortalsPutModule(), "pingpong", [1 << 20], config=cfg)
        out[f"bw_1mib_mb_s_p{prob:g}"] = peak_bandwidth(series)
    return out


def _run_redstorm_distance(fast: bool) -> Dict[str, float]:
    from ..analysis import latency_at
    from ..netpipe import PortalsPutModule, run_series

    out: Dict[str, float] = {}
    for accelerated, tag in [(False, "generic"), (True, "accel")]:
        for hops in [1, 5, 13, 27, 40, 53]:
            series = run_series(
                PortalsPutModule(accelerated=accelerated),
                "pingpong",
                [8],
                hops=hops,
            )
            out[f"{tag}_8b_us_h{hops}"] = latency_at(series, 8)
    return out


#: per-scenario message payloads for the whole-plane Red Storm sweep
_PLANE_MSG_BYTES = {"neighbor": 2048, "incast": 4096, "tree": 8192}


def plane_dims(fast: bool) -> tuple:
    """Plane sweep topology: >= 1k nodes even in fast mode."""
    return (16, 8, 8) if fast else (27, 16, 24)


def _run_redstorm_plane(fast: bool, partitions: int = 1) -> Dict[str, float]:
    """Whole-plane traffic over a Red Storm-shaped machine.

    Three canonical patterns — nearest-neighbor exchange, incast onto
    node 0, binomial broadcast tree — over >= 1k simulated nodes
    ((16, 8, 8) fast, full Red Storm (27, 16, 24) otherwise), mesh in
    x/y and torus in z.  ``partitions`` > 1 runs each scenario under the
    conservative parallel DES driver (repro.sim.parallel); the metrics
    are byte-identical for every partition count — that is the
    exactness contract the differential harness enforces — so the
    partition count never appears in the metric set.

    The pool transport spawns one process per partition, which
    daemonic pool workers are forbidden to do; inside one (run_bench
    routes partitioned shards around the pool, so only a partitions=1
    shard should ever land here) we degrade to the in-process memory
    transport, which runs the identical round protocol.
    """
    import multiprocessing

    from ..sim.parallel import (
        PlaneScenario,
        result_metrics,
        run_scenario,
    )

    dims = plane_dims(fast)
    transport = "pool"
    if multiprocessing.current_process().daemon:  # pragma: no cover - defensive
        transport = "memory"
    out: Dict[str, float] = {}
    for name in ("neighbor", "incast", "tree"):
        scenario = PlaneScenario(
            name=name, dims=dims, msg_bytes=_PLANE_MSG_BYTES[name]
        )
        run = run_scenario(scenario, partitions, transport=transport)
        out.update(result_metrics(run["result"]))
    return out


def _run_inline_overheads(fast: bool) -> Dict[str, float]:
    from ..hw.config import SeaStarConfig
    from ..hw.processors import Opteron
    from ..sim import Simulator, to_ns, to_us

    trap_rounds, irq_rounds = 1000, 200

    sim = Simulator()
    cpu = Opteron(sim, SeaStarConfig())

    def traps() -> Any:
        for _ in range(trap_rounds):
            yield from cpu.trap()

    sim.process(traps())
    sim.run()
    trap_ns = to_ns(sim.now) / trap_rounds

    sim2 = Simulator()
    cpu2 = Opteron(sim2, SeaStarConfig())

    def empty_handler() -> Any:
        if False:
            yield

    def body() -> Any:
        for _ in range(irq_rounds):
            cpu2.raise_interrupt(empty_handler, coalesce=False)
            yield sim2.timeout(5_000_000)

    sim2.process(body())
    sim2.run()
    irq_us = to_us(cpu2.busy_time) / irq_rounds
    return {"null_trap_ns": trap_ns, "interrupt_us": irq_us}


def _run_inline_sram(fast: bool) -> Dict[str, float]:
    from ..hw import SramExhausted
    from ..machine.builder import build_pair

    machine, na, _nb = build_pair()
    used, free = na.seastar.sram.used_bytes, na.seastar.sram.free_bytes

    machine2, na2, _nb2 = build_pair()
    extra = 0
    while extra <= 64:
        try:
            na2.create_process(accelerated=True)
        except SramExhausted:
            break
        extra += 1
    return {
        "sram_used_bytes": float(used),
        "sram_free_bytes": float(free),
        "extra_accel_processes": float(extra),
    }


_ABLATIONS: Dict[str, Callable[[bool], Dict[str, float]]] = {
    "ablation_smallmsg": _run_ablation_smallmsg,
    "ablation_accel": _run_ablation_accel,
    "ablation_interrupt_cost": _run_ablation_interrupt_cost,
    "ablation_crc": _run_ablation_crc,
    "redstorm_distance": _run_redstorm_distance,
    "redstorm_plane": _run_redstorm_plane,
    "inline_overheads": _run_inline_overheads,
    "inline_sram": _run_inline_sram,
}


# -- execution --------------------------------------------------------------


def execute_shard(shard: Shard, *, stats: bool = False) -> ShardResult:
    """Run one shard to completion in this process.

    ``stats=True`` runs figure shards with the metrics registry enabled
    and attaches per-size utilization attribution rows.  The simulated
    series is identical either way (metrics never schedule events), so
    the gated ``figures`` half of the document is unaffected.
    """
    from ..netpipe import NetPipeRunner, run_series

    spec = SPECS[shard.spec]
    t0 = time.perf_counter()
    if spec.kind == "figure":
        assert spec.pattern is not None
        utilization = None
        if stats:
            from ..metrics import attribute_windows

            runner = NetPipeRunner(_make_module(shard.variant), metrics=True)
            series = runner.run(spec.pattern, list(shard.sizes))
            utilization = [
                {
                    "nbytes": row.nbytes,
                    "window_ps": row.window_ps,
                    "utilization": {
                        k: row.utilization[k] for k in sorted(row.utilization)
                    },
                    "saturating": row.saturating,
                }
                for row in attribute_windows(runner.machine.metrics, runner.windows)
            ]
        else:
            series = run_series(
                _make_module(shard.variant), spec.pattern, list(shard.sizes)
            )
        result = ShardResult(
            shard_id=shard.shard_id,
            figure=shard.spec,
            variant=shard.variant,
            series=SeriesData.from_series(series),
            utilization=utilization,
        )
    else:
        if shard.spec == "redstorm_plane":
            # the one spec that threads the parallel-DES partition count
            metrics = _run_redstorm_plane(shard.fast, partitions=shard.partitions)
        else:
            metrics = _ABLATIONS[shard.spec](shard.fast)
        result = ShardResult(
            shard_id=shard.shard_id,
            figure=shard.spec,
            variant=shard.variant,
            metrics=metrics,
        )
    result.wall_s = time.perf_counter() - t0
    return result


def _pool_worker(args: tuple) -> ShardResult:  # pragma: no cover - subprocess
    shard, stats = args
    return execute_shard(shard, stats=stats)


def shard_cache_request(shard: Shard, *, stats: bool) -> Dict[str, Any]:
    """The canonical cache request describing one shard's simulated
    content.

    Everything that can change the result is here (spec, variant, the
    exact size list, fast-mode flag, whether the metrics appendix runs);
    everything that cannot (worker count, checkpoint dirs, timeouts,
    the parallel-DES partition count — partitioned results are
    byte-identical to serial by the exactness contract) is deliberately
    absent, so any execution strategy shares one key.
    """
    return {
        "kind": "bench-shard",
        "spec": shard.spec,
        "variant": shard.variant,
        "chunk": shard.chunk,
        "sizes": list(shard.sizes),
        "fast": shard.fast,
        "stats": stats,
    }


def run_bench(
    *,
    fast: bool = False,
    workers: int = 1,
    filter: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    stats: bool = False,
    shard_timeout_s: float = 1800.0,
    checkpoint_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    partitions: int = 1,
) -> Dict[str, Any]:
    """Run the discovered shard set; return the results document.

    ``workers <= 1`` runs every shard in-process (the reference serial
    path); otherwise shards fan out over the self-healing pool
    (:mod:`repro.benchrunner.pool`): hung shards are SIGKILLed after
    ``shard_timeout_s`` and retried with backoff, crashed workers are
    detected and their shards re-run, and ``checkpoint_dir`` lets an
    interrupted sweep resume past its completed shards.  All paths
    produce byte-identical ``figures`` content; survived trouble is
    recorded under ``wallclock.degradations``.  ``stats=True`` adds the
    informational ``utilization`` appendix (figure shards run with
    metrics enabled; simulated content is unchanged).

    ``cache_dir`` points at a content-addressed result store
    (:mod:`repro.cache`): shards whose key — canonical hash of the
    shard request plus the code version — is already stored are served
    from it without any simulation (and, pooled, without spawning a
    worker); misses simulate as usual and are stored afterwards.
    Hit/miss accounting lands under ``wallclock.cache``.  Cold, hot, or
    disabled, the gated ``figures`` half is byte-identical.

    ``partitions`` > 1 runs partitionable sweeps (redstorm_plane) under
    the conservative parallel DES driver.  The pool transport spawns
    one process per partition, and daemonic pool workers may not spawn
    children, so when shards fan out (``workers`` > 1) the partitioned
    shards run in the parent process alongside the pool — they bring
    their own parallelism.  Results are byte-identical for every
    partition count (asserted by tests/test_parallel_sim.py), so a
    cached serial result legitimately serves a partitioned request.
    """
    shards = discover_shards(fast=fast, filter=filter, partitions=partitions)
    if not shards:
        raise ValueError(f"no shards match filter {filter!r}")
    t0 = time.perf_counter()
    degradations: List[Dict[str, Any]] = []
    resumed: List[str] = []
    pool_counters: Optional[Dict[str, int]] = None

    cache = None
    cache_doc: Optional[Dict[str, Any]] = None
    keys: Dict[str, str] = {}
    by_id: Dict[str, ShardResult] = {}
    pending: List[Shard] = shards
    if cache_dir is not None:
        from ..cache import ResultCache, cache_key, code_version

        cache = ResultCache(cache_dir)
        code = code_version()
        pending = []
        for shard in shards:
            key = cache_key(shard_cache_request(shard, stats=stats), code=code)
            keys[shard.shard_id] = key
            t_load = time.perf_counter()
            artifact = cache.get(key)
            if artifact is None:
                pending.append(shard)
                continue
            res = ShardResult.from_jsonable(artifact["result"])
            res.wall_s = time.perf_counter() - t_load
            by_id[shard.shard_id] = res
            if progress:
                progress(f"{shard.shard_id}: cache hit ({key[:12]})")

    if workers <= 1 and checkpoint_dir is None:
        for shard in pending:
            res = execute_shard(shard, stats=stats)
            by_id[shard.shard_id] = res
            if progress:
                progress(f"{res.shard_id}: {res.wall_s:.2f}s")
    elif pending:
        # partitioned shards spawn their own per-partition processes,
        # which a daemonic pool worker cannot; run them in the parent
        inparent = [s for s in pending if s.partitions > 1]
        pooled = [s for s in pending if s.partitions <= 1]
        for shard in inparent:
            res = execute_shard(shard, stats=stats)
            by_id[shard.shard_id] = res
            if progress:
                progress(
                    f"{res.shard_id}: {res.wall_s:.2f}s "
                    f"({shard.partitions} partitions, in-parent)"
                )
        if pooled:
            tasks = [
                PoolTask(task_id=shard.shard_id, payload=(shard, stats))
                for shard in pooled
            ]
            outcome = run_pool(
                tasks,
                _pool_worker,
                workers=workers,
                timeout_s=shard_timeout_s,
                checkpoint_dir=checkpoint_dir,
                progress=progress,
            )
            if outcome.failed:
                detail = "; ".join(
                    f"{tid}: {err}" for tid, err in sorted(outcome.failed.items())
                )
                raise RuntimeError(f"shards failed permanently: {detail}")
            by_id.update(outcome.results)
            degradations = outcome.degradations
            resumed = outcome.resumed
            pool_counters = outcome.counters()

    if cache is not None:
        for shard in pending:
            res = by_id[shard.shard_id]
            cache.put(
                keys[shard.shard_id],
                res.to_jsonable(),
                request=shard_cache_request(shard, stats=stats),
                kind="bench-shard",
                wall_s=res.wall_s,
                workers=max(1, workers),
            )
        cache_doc = cache.stats.to_jsonable()
        cache_doc["cached_shards"] = sorted(
            s.shard_id for s in shards if s not in pending
        )

    # deterministic document order regardless of completion order
    results = [by_id[s.shard_id] for s in shards]
    total = time.perf_counter() - t0
    titles = {name: spec.title for name, spec in SPECS.items()}
    return merge_shards(
        results,
        mode="fast" if fast else "full",
        workers=max(1, workers),
        total_wall_s=total,
        titles=titles,
        degradations=degradations,
        resumed=resumed,
        cache=cache_doc,
        pool=pool_counters,
    )
