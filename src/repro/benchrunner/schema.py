"""The canonical ``BENCH_results.json`` schema and its invariants.

The document has two disjoint halves:

* ``figures`` — *simulated* quantities only (DES picosecond totals and
  the scalar anchors derived from them).  These are deterministic: the
  same tree at the same mode must reproduce them **byte for byte**, no
  matter how many worker processes ran the sweeps.  The golden-baseline
  gate compares exactly this half.
* ``wallclock`` — how long each shard took on the host.  Informational
  only; never compared.

:func:`simulated_json` renders the comparable half canonically (sorted
keys, fixed indentation, trailing newline) so "byte-identical" is a
plain string equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..netpipe.runner import Measurement, Series

__all__ = [
    "SCHEMA_VERSION",
    "SeriesData",
    "ShardResult",
    "canonical_json",
    "simulated_view",
    "simulated_json",
    "merge_shards",
    "load_results",
    "save_results",
]

SCHEMA_VERSION = "repro-bench/1"


@dataclass(frozen=True)
class SeriesData:
    """The raw simulated measurements of one sweep segment.

    Only integers from the DES clock are stored; derived floats
    (latency, bandwidth) are recomputed on demand so the stored form
    stays exactly reproducible.
    """

    pattern: str
    sizes: tuple
    total_ps: tuple
    repeats: tuple
    bytes_moved: tuple

    @classmethod
    def from_series(cls, series: Series) -> "SeriesData":
        return cls(
            pattern=series.pattern,
            sizes=tuple(p.nbytes for p in series.points),
            total_ps=tuple(p.total_ps for p in series.points),
            repeats=tuple(p.repeats for p in series.points),
            bytes_moved=tuple(p.bytes_moved for p in series.points),
        )

    def to_series(self, module: str) -> Series:
        points = [
            Measurement(self.pattern, n, t, r, b)
            for n, t, r, b in zip(
                self.sizes, self.total_ps, self.repeats, self.bytes_moved
            )
        ]
        return Series(module=module, pattern=self.pattern, points=points)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "sizes": list(self.sizes),
            "total_ps": list(self.total_ps),
            "repeats": list(self.repeats),
            "bytes_moved": list(self.bytes_moved),
        }

    @classmethod
    def from_jsonable(cls, doc: Dict[str, Any]) -> "SeriesData":
        return cls(
            pattern=doc["pattern"],
            sizes=tuple(doc["sizes"]),
            total_ps=tuple(doc["total_ps"]),
            repeats=tuple(doc["repeats"]),
            bytes_moved=tuple(doc["bytes_moved"]),
        )

    def merged_with(self, other: "SeriesData") -> "SeriesData":
        """Concatenate two segments of the same sweep, sorted by size."""
        if other.pattern != self.pattern:
            raise ValueError(f"cannot merge {self.pattern!r} with {other.pattern!r}")
        rows = sorted(
            zip(
                self.sizes + other.sizes,
                self.total_ps + other.total_ps,
                self.repeats + other.repeats,
                self.bytes_moved + other.bytes_moved,
            )
        )
        return SeriesData(
            pattern=self.pattern,
            sizes=tuple(r[0] for r in rows),
            total_ps=tuple(r[1] for r in rows),
            repeats=tuple(r[2] for r in rows),
            bytes_moved=tuple(r[3] for r in rows),
        )


@dataclass
class ShardResult:
    """What one worker returns for one shard."""

    shard_id: str
    figure: str
    variant: str
    series: Optional[SeriesData] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    utilization: Optional[List[Dict[str, Any]]] = None
    """Informational per-size attribution rows (``--stats`` runs only).
    Lives outside the gated ``figures`` half — see :func:`merge_shards`."""

    def to_jsonable(self) -> Dict[str, Any]:
        """The cacheable form: simulated content only, no host wall-clock.

        Integers round-trip exactly and ``json`` floats serialize via
        ``repr`` (shortest exact form), so a result reloaded from its
        JSON spelling merges into a document byte-identical to the
        freshly simulated one — the property the result cache rests on.
        """
        doc: Dict[str, Any] = {
            "shard_id": self.shard_id,
            "figure": self.figure,
            "variant": self.variant,
            "metrics": dict(self.metrics),
        }
        if self.series is not None:
            doc["series"] = self.series.to_jsonable()
        if self.utilization is not None:
            doc["utilization"] = self.utilization
        return doc

    @classmethod
    def from_jsonable(cls, doc: Dict[str, Any]) -> "ShardResult":
        series = doc.get("series")
        return cls(
            shard_id=doc["shard_id"],
            figure=doc["figure"],
            variant=doc["variant"],
            series=SeriesData.from_jsonable(series) if series is not None else None,
            metrics=dict(doc.get("metrics", {})),
            utilization=doc.get("utilization"),
        )


def canonical_json(doc: Any) -> str:
    """The one true serialization: sorted keys, 2-space indent, LF."""
    return json.dumps(doc, sort_keys=True, indent=2, ensure_ascii=False) + "\n"


def simulated_view(results: Dict[str, Any]) -> Dict[str, Any]:
    """The comparable (simulated-only) half of a results document."""
    return {
        "schema": results["schema"],
        "mode": results["mode"],
        "figures": results["figures"],
    }


def simulated_json(results: Dict[str, Any]) -> str:
    """Canonical bytes of the simulated half (the byte-identity contract)."""
    return canonical_json(simulated_view(results))


def merge_shards(
    shard_results: List[ShardResult],
    *,
    mode: str,
    workers: int,
    total_wall_s: float,
    titles: Optional[Dict[str, str]] = None,
    degradations: Optional[List[Dict[str, Any]]] = None,
    resumed: Optional[List[str]] = None,
    cache: Optional[Dict[str, Any]] = None,
    pool: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Fold per-shard results into one ``BENCH_results.json`` document.

    Series segments of the same (figure, variant) are concatenated and
    sorted by message size — by construction (size independence of the
    sweeps, see tests/test_benchrunner.py) this equals the single-run
    series.  Figure-level anchor metrics are then derived from the
    merged series via :mod:`repro.analysis.anchors`.
    """
    from ..analysis.anchors import figure_metrics

    figures: Dict[str, Any] = {}
    for res in shard_results:
        fig = figures.setdefault(
            res.figure,
            {"title": (titles or {}).get(res.figure, res.figure), "variants": {}},
        )
        var = fig["variants"].setdefault(res.variant, {"metrics": {}})
        if res.series is not None:
            if "series" in var:
                merged = SeriesData.from_jsonable(var["series"]).merged_with(res.series)
            else:
                merged = res.series
            var["series"] = merged.to_jsonable()
        var["metrics"].update(res.metrics)

    # derive anchor metrics from the merged series
    for fig_name, fig in figures.items():
        for variant, var in fig["variants"].items():
            if "series" in var:
                data = SeriesData.from_jsonable(var["series"])
                series = data.to_series(variant)
                var["metrics"].update(figure_metrics(fig_name, variant, series))

    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "figures": figures,
        "wallclock": {
            "workers": workers,
            "total_s": round(total_wall_s, 3),
            "shards": {r.shard_id: round(r.wall_s, 3) for r in shard_results},
        },
    }
    # executor-health annotations (worker crashes/timeouts survived and
    # shards satisfied from checkpoints).  Host-side history only, so
    # they live in the informational ``wallclock`` half — a degraded run
    # still byte-matches the golden ``figures``.
    if degradations:
        doc["wallclock"]["degradations"] = degradations
    if resumed:
        doc["wallclock"]["resumed_shards"] = sorted(resumed)
    # monotonic pool.* lifecycle counters (spawns, crashes, hang-kills,
    # retries, ...) so exports and CI can assert on executor health
    if pool is not None:
        doc["wallclock"]["pool"] = pool
    # result-cache accounting: which shards were served from the
    # content-addressed store vs simulated.  Host-side history, so it
    # lives in the informational ``wallclock`` half — a fully-cached run
    # still byte-matches the golden ``figures``.
    if cache is not None:
        doc["wallclock"]["cache"] = cache
    # informational utilization appendix (metrics-enabled runs only):
    # top-level, outside the byte-compared ``figures`` half, exactly
    # like ``wallclock``
    utilization: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    for res in shard_results:
        if res.utilization:
            rows = utilization.setdefault(res.figure, {}).setdefault(res.variant, [])
            rows.extend(res.utilization)
    if utilization:
        for fig in utilization.values():
            for rows in fig.values():
                rows.sort(key=lambda row: row["nbytes"])
        doc["utilization"] = utilization
    return doc


def load_results(path: Path) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    return doc


def save_results(results: Dict[str, Any], path: Path) -> None:
    Path(path).write_text(canonical_json(results), encoding="utf-8")
