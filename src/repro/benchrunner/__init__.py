"""Parallel benchmark orchestrator with golden-baseline gating.

``repro bench`` discovers every figure/ablation sweep
(:mod:`.discovery`), fans the shards across a ``multiprocessing`` pool
(:mod:`.executor`), folds them into the canonical
``BENCH_results.json`` document (:mod:`.schema`) and gates the
simulated half against the committed goldens (:mod:`.compare`).
"""

from .compare import (
    CompareReport,
    Drift,
    Tolerance,
    compare_results,
    load_golden_dir,
    update_golden,
)
from .discovery import SPECS, Shard, SweepSpec, discover_shards, spec_sizes
from .executor import execute_shard, run_bench, shard_cache_request
from .report import format_compare_table, format_run_summary, parse_report_file
from .schema import (
    SCHEMA_VERSION,
    SeriesData,
    ShardResult,
    canonical_json,
    load_results,
    merge_shards,
    save_results,
    simulated_json,
    simulated_view,
)

__all__ = [
    "SCHEMA_VERSION",
    "SPECS",
    "CompareReport",
    "Drift",
    "SeriesData",
    "Shard",
    "ShardResult",
    "SweepSpec",
    "Tolerance",
    "canonical_json",
    "compare_results",
    "discover_shards",
    "execute_shard",
    "format_compare_table",
    "format_run_summary",
    "load_golden_dir",
    "load_results",
    "merge_shards",
    "parse_report_file",
    "run_bench",
    "save_results",
    "shard_cache_request",
    "simulated_json",
    "simulated_view",
    "spec_sizes",
    "update_golden",
]
