"""Human-facing output: run summaries, the per-figure diff table, and
the parser for the bench report file ``benchmarks/conftest.py`` writes.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List

from ..analysis.anchors import paper_anchor
from .compare import CompareReport

__all__ = [
    "format_run_summary",
    "format_compare_table",
    "parse_report_file",
]


def format_run_summary(results: Dict[str, Any]) -> str:
    """Per-figure anchors plus the shard wall-clock accounting."""
    lines: List[str] = []
    for fig_name, fig in results["figures"].items():
        lines.append(f"=== {fig.get('title', fig_name)} ===")
        for variant, var in fig["variants"].items():
            for metric, value in sorted(var.get("metrics", {}).items()):
                paper = paper_anchor(fig_name, variant, metric)
                ctx = f"   (paper {paper:.2f})" if paper is not None else ""
                lines.append(f"  {variant:<8} {metric:<28} {value:>12.3f}{ctx}")
        lines.append("")
    wall = results.get("wallclock", {})
    shards = wall.get("shards", {})
    if shards:
        lines.append(
            f"wall-clock: {wall.get('total_s', 0.0):.1f}s total, "
            f"{len(shards)} shards, workers={wall.get('workers', 1)}"
        )
        slowest = sorted(shards.items(), key=lambda kv: -kv[1])[:5]
        for shard_id, secs in slowest:
            lines.append(f"  {shard_id:<24} {secs:>7.2f}s")
    cache = wall.get("cache")
    if cache:
        lines.append(
            f"result cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es), "
            f"{cache.get('stores', 0)} store(s), "
            f"{cache.get('hit_rate', 0.0) * 100:.0f}% hit rate"
        )
    resumed = wall.get("resumed_shards", [])
    if resumed:
        lines.append(f"resumed from checkpoint: {len(resumed)} shard(s)")
    degradations = wall.get("degradations", [])
    if degradations:
        lines.append(f"executor degradations survived: {len(degradations)}")
        for event in degradations:
            what = event.get("event", "?")
            extra = ""
            if "retry_in_s" in event:
                extra = f", retried after {event['retry_in_s']}s backoff"
            elif event.get("gave_up"):
                extra = ", gave up"
            lines.append(
                f"  {event.get('task', '?'):<24} {what}"
                f" (attempt {event.get('attempt', 0)}{extra})"
            )
    return "\n".join(lines)


def format_compare_table(report: CompareReport) -> str:
    """The drift diff table the CI gate prints (and uploads)."""
    lines: List[str] = []
    header = (
        f"{'figure':<26} {'variant':<8} {'quantity':<30} "
        f"{'golden':>14} {'measured':>14} {'drift':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    if not report.drifts:
        lines.append(
            f"(no drift: {report.compared} simulated quantities bit-identical "
            "or within tolerance)"
        )
    for d in report.drifts:
        rel = d.rel
        drift = f"{rel:+.3%}" if abs(rel) != float("inf") else "new"
        lines.append(
            f"{d.figure:<26} {d.variant:<8} {d.what:<30} "
            f"{d.golden:>14.4f} {d.measured:>14.4f} {drift:>9}"
        )
    for fig in report.missing_figures:
        lines.append(f"{fig:<26} {'-':<8} figure missing from this run")
    for note in report.notes:
        lines.append(f"note: {note}")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(
        f"{verdict}: {len(report.drifts)} drift(s), "
        f"{len(report.missing_figures)} missing figure(s), "
        f"{report.compared} quantities compared"
    )
    return "\n".join(lines)


_ANCHOR_RE = re.compile(
    r"^\s{2}(?P<name>.*?)\s+"
    r"(?:paper=\s*(?P<paper>[-\d.]+)\s+(?P<punit>\S+)\s+)?"
    r"measured=\s*(?P<measured>[-\d.]+)\s*(?P<unit>\S.*?)?"
    r"(?:\s+\(x(?P<ratio>[-\d.]+)\))?\s*$"
)


def parse_report_file(path: Path) -> Dict[str, Any]:
    """Parse the table/anchor report emitted by the benchmark conftest.

    Returns ``{"tables": {title: {"header": [...], "rows": [[...]]}},
    "anchors": [{"name", "paper", "measured", "unit"}]}``.  Tables are
    the ``=== title ===`` blocks; anchors are the
    ``name paper=X measured=Y`` lines from :func:`print_anchor`.
    """
    doc: Dict[str, Any] = {"tables": {}, "anchors": []}
    current: Dict[str, Any] | None = None
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.rstrip("\n")
        if line.startswith("=== ") and line.endswith(" ==="):
            current = {"header": [], "rows": []}
            doc["tables"][line[4:-4]] = current
            continue
        match = _ANCHOR_RE.match(line)
        if match and "measured=" in line:
            doc["anchors"].append(
                {
                    "name": match.group("name").strip(),
                    "paper": (
                        float(match.group("paper"))
                        if match.group("paper")
                        else None
                    ),
                    "measured": float(match.group("measured")),
                    "unit": (match.group("unit") or "").strip(),
                }
            )
            continue
        if current is None or not line.strip():
            continue
        if set(line.strip()) == {"-"}:
            continue
        cells = [c.strip() for c in line.split("|")]
        if not current["header"]:
            current["header"] = cells
        else:
            current["rows"].append(cells)
    return doc
