"""A self-healing worker pool: crash/hang-tolerant task execution.

``multiprocessing.Pool`` wedges forever if a worker is SIGKILLed and has
no per-task wall-clock timeout; a fault-space sweep that *injects*
crashes cannot be run by an executor that dies of them.  This pool runs
one spawned process per task attempt and supervises it:

* **watchdog timeout** — a task that exceeds ``timeout_s`` wall-clock is
  SIGKILLed and retried;
* **crash detection** — a worker that dies without writing its result
  (killed, segfaulted, OOM) is detected by exit and retried;
* **bounded retry with exponential backoff** — each task gets
  ``max_retries`` re-attempts, spaced ``backoff_s * 2**attempt`` apart;
* **checkpoint/resume** — results travel through atomically-renamed
  pickle files; pointing ``checkpoint_dir`` at a persistent directory
  makes completed tasks survive a killed *parent* and be skipped on the
  next invocation.  An atomically-renamed index file records each task
  id's payload fingerprint, so a checkpoint written by a *different*
  submission (other sizes, other flags — id collisions included) is
  re-run instead of silently resumed, whatever ``--workers`` count
  either run used.  Torn result files (a write that died mid-stream)
  load as absent and the task simply runs again;
* **degradation ledger** — every timeout/crash/retry is recorded and
  returned, so a run that survived trouble says so in its summary.

Determinism: a task's result depends only on its payload (each task is
an independent seeded DES run), so timeouts, crashes, retries, resumes
and completion order can't change the simulated content — the caller
reassembles ``results`` by task id in its own canonical order.

A worker that raises an ordinary exception is a *deterministic* failure:
it is reported without retry (re-running identical code on an identical
payload cannot help) and never checkpointed.

Test hooks (used by the chaos-campaign CI smoke and the test suite):
setting ``REPRO_POOL_TEST_KILL``/``REPRO_POOL_TEST_HANG`` to a substring
of a task id makes the matching task's **first** attempt SIGKILL itself
/ hang forever; ``REPRO_POOL_TEST_KILL_WRITE`` makes it SIGKILL itself
halfway through writing its result file *at the final path* (bypassing
the atomic rename), leaving the torn checkpoint the resume path must
absorb.  Retries run clean.  All default unset, costing nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "PoolTask",
    "PoolOutcome",
    "run_pool",
    "task_filename",
    "atomic_write_bytes",
]

TEST_KILL_ENV = "REPRO_POOL_TEST_KILL"
TEST_HANG_ENV = "REPRO_POOL_TEST_HANG"
TEST_KILL_WRITE_ENV = "REPRO_POOL_TEST_KILL_WRITE"

#: checkpoint index: task id -> payload fingerprint of the submission
#: that wrote (or will write) each per-task result file
INDEX_FILENAME = "pool-index.json"


def atomic_write_bytes(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` so a reader never sees a torn file.

    The bytes land in a pid-suffixed sibling first and are renamed into
    place; a writer killed mid-stream leaves only the temp file behind.
    This is the one write discipline every durable artifact in the repo
    uses (pool checkpoints, the checkpoint index, the result cache).
    """
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


@dataclass(frozen=True)
class PoolTask:
    """One unit of work: an id and a picklable payload."""

    task_id: str
    payload: Any


@dataclass
class PoolOutcome:
    """Everything a supervised run produced."""

    results: Dict[str, Any] = field(default_factory=dict)
    """task_id -> worker return value (completed tasks)."""

    degradations: List[Dict[str, Any]] = field(default_factory=list)
    """Timeout / crash / retry events, in occurrence order."""

    resumed: List[str] = field(default_factory=list)
    """Task ids satisfied from checkpoints instead of execution."""

    failed: Dict[str, str] = field(default_factory=dict)
    """task_id -> error for tasks that failed permanently."""

    lifecycle: List[Dict[str, Any]] = field(default_factory=list)
    """Structured spawn/complete/timeout/crash/retry/checkpoint/resume
    records with wall-clock timestamps, in occurrence order.  Always
    recorded: one dict append per *process attempt* is noise next to the
    spawn itself, and post-mortems need the timeline unconditionally."""

    def record(self, event: str, task_id: str, **fields: Any) -> None:
        entry: Dict[str, Any] = {
            "t_unix": round(time.time(), 6),
            "event": event,
            "task": task_id,
        }
        entry.update(fields)
        self.lifecycle.append(entry)

    def counters(self) -> Dict[str, int]:
        """Monotonic ``pool.*`` counters for the repro-metrics/v1 export."""
        counts = {
            "pool.spawns": 0,
            "pool.completions": 0,
            "pool.hang_kills": 0,
            "pool.crashes": 0,
            "pool.retries": 0,
            "pool.checkpoints": 0,
            "pool.resumed": len(self.resumed),
            "pool.failures": len(self.failed),
        }
        by_event = {
            "spawn": "pool.spawns",
            "complete": "pool.completions",
            "timeout": "pool.hang_kills",
            "crash": "pool.crashes",
            "retry": "pool.retries",
            "checkpoint": "pool.checkpoints",
        }
        for entry in self.lifecycle:
            key = by_event.get(entry["event"])
            if key is not None:
                counts[key] += 1
        return counts


def task_filename(task_id: str) -> str:
    """Filesystem-safe, collision-free checkpoint name for a task id
    (ids like ``fig3/put/d2`` contain separators)."""
    digest = hashlib.sha256(task_id.encode("utf-8")).hexdigest()[:12]
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", task_id)[:80]
    return f"{safe}-{digest}.pkl"


def _child_entry(
    worker: Callable[[Any], Any],
    payload: Any,
    out_path: str,
    task_id: str,
    attempt: int,
) -> None:  # pragma: no cover - runs in the spawned subprocess
    kill_pat = os.environ.get(TEST_KILL_ENV)
    if kill_pat and attempt == 0 and kill_pat in task_id:
        os.kill(os.getpid(), signal.SIGKILL)
    hang_pat = os.environ.get(TEST_HANG_ENV)
    if hang_pat and attempt == 0 and hang_pat in task_id:
        time.sleep(24 * 3600)
    kill_write_pat = os.environ.get(TEST_KILL_WRITE_ENV)
    if kill_write_pat and attempt == 0 and kill_write_pat in task_id:
        # SIGKILL mid-write, bypassing the atomic rename: leaves a torn
        # result file at the final path, the worst case resume must absorb
        blob = pickle.dumps({"ok": True, "result": None})
        with open(out_path, "wb") as fh:
            fh.write(blob[: max(1, len(blob) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
    try:
        doc: Dict[str, Any] = {"ok": True, "result": worker(payload)}
    except BaseException as exc:  # noqa: BLE001 - report, not re-raise
        doc = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    atomic_write_bytes(out_path, pickle.dumps(doc))


def _load_result(path: str) -> Optional[Dict[str, Any]]:
    """Read a result file; None when absent, torn, or not a result dict.

    The atomic rename makes a torn file impossible for *this* code, but
    a crashed legacy writer, a truncating filesystem, or a hostile test
    hook can still leave one — and a torn pickle raises far more than
    ``UnpicklingError`` (``EOFError``, ``AttributeError``, ``ImportError``,
    ``ValueError``, ...), so anything unreadable counts as absent and the
    task simply runs again.
    """
    try:
        with open(path, "rb") as fh:
            doc = pickle.load(fh)
    except Exception:
        return None
    return doc if isinstance(doc, dict) else None


def _payload_fingerprint(payload: Any) -> str:
    """Stable digest of a task payload, keying checkpoint validity."""
    try:
        blob = pickle.dumps(payload, protocol=4)
    except Exception:
        return "unpicklable"
    return hashlib.sha256(blob).hexdigest()[:16]


def _load_index(outdir: str) -> Dict[str, str]:
    """Read the checkpoint index; empty when absent or unreadable."""
    try:
        with open(os.path.join(outdir, INDEX_FILENAME), "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict) or doc.get("version") != 1:
        return {}
    tasks = doc.get("tasks")
    if not isinstance(tasks, dict):
        return {}
    return {str(k): str(v) for k, v in tasks.items()}


def _write_index(outdir: str, entries: Dict[str, str]) -> None:
    """Atomically rewrite the checkpoint index (same tmp+rename discipline
    as the per-task result files — a killed parent can never tear it)."""
    path = os.path.join(outdir, INDEX_FILENAME)
    blob = json.dumps({"version": 1, "tasks": entries}, sort_keys=True)
    atomic_write_bytes(path, blob.encode("utf-8"))


@dataclass
class _Attempt:
    task: PoolTask
    out_path: str
    attempt: int = 0
    not_before: float = 0.0
    proc: Any = None
    started: float = 0.0


def run_pool(
    tasks: List[PoolTask],
    worker: Callable[[Any], Any],
    *,
    workers: int = 1,
    timeout_s: float = 300.0,
    max_retries: int = 2,
    backoff_s: float = 0.25,
    checkpoint_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    poll_s: float = 0.02,
) -> PoolOutcome:
    """Run ``worker(payload)`` for every task under supervision.

    ``workers <= 1`` executes in-process (no subprocess per task, so no
    crash/hang tolerance — but checkpoints are still written and
    honoured, keeping ``--resume`` workflows uniform).  ``worker`` must
    be a module-level callable and payloads/results picklable, because
    parallel attempts run in spawned subprocesses.
    """
    if len({t.task_id for t in tasks}) != len(tasks):
        raise ValueError("duplicate task ids in pool submission")
    if timeout_s <= 0:
        raise ValueError("timeout_s must be > 0")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")

    outcome = PoolOutcome()
    own_dir = checkpoint_dir is None
    outdir = checkpoint_dir or tempfile.mkdtemp(prefix="repro-pool-")
    os.makedirs(outdir, exist_ok=True)

    index = _load_index(outdir) if not own_dir else {}
    fingerprints = {t.task_id: _payload_fingerprint(t.payload) for t in tasks}

    queue: List[_Attempt] = []
    for task in tasks:
        path = os.path.join(outdir, task_filename(task.task_id))
        doc = None
        if not own_dir:
            if index.get(task.task_id) == fingerprints[task.task_id]:
                doc = _load_result(path)
            elif os.path.exists(path):
                # same id, different submission (or a pre-index legacy
                # dir): the stored result answers a different question —
                # drop it so no later resume can ever honour it either
                os.unlink(path)
        if doc is not None and doc.get("ok") and "result" in doc:
            outcome.results[task.task_id] = doc["result"]
            outcome.resumed.append(task.task_id)
            outcome.record("resume", task.task_id)
            if progress:
                progress(f"{task.task_id}: resumed from checkpoint")
            continue
        queue.append(_Attempt(task=task, out_path=path))

    if not own_dir:
        # record this submission's fingerprints (keeping entries for task
        # ids it doesn't mention) *before* any result file is written, so
        # a parent killed mid-run leaves index and results consistent
        merged = dict(index)
        merged.update(fingerprints)
        if merged != index:
            _write_index(outdir, merged)

    if workers <= 1:
        _run_inline(queue, worker, outcome, progress, persistent=not own_dir)
    else:
        _run_supervised(
            queue,
            worker,
            outcome,
            workers=workers,
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
            progress=progress,
            poll_s=poll_s,
            persistent=not own_dir,
        )

    if own_dir:
        import shutil

        shutil.rmtree(outdir, ignore_errors=True)
    return outcome


def _checkpoint(state: _Attempt, doc: Dict[str, Any]) -> None:
    atomic_write_bytes(state.out_path, pickle.dumps(doc))


def _run_inline(
    queue: List[_Attempt],
    worker: Callable[[Any], Any],
    outcome: PoolOutcome,
    progress: Optional[Callable[[str], None]],
    *,
    persistent: bool = False,
) -> None:
    for state in queue:
        t0 = time.perf_counter()
        try:
            result = worker(state.task.payload)
        except Exception as exc:  # deterministic failure: no retry
            outcome.failed[state.task.task_id] = f"{type(exc).__name__}: {exc}"
            outcome.record(
                "fail", state.task.task_id, error=f"{type(exc).__name__}: {exc}"
            )
            continue
        outcome.results[state.task.task_id] = result
        _checkpoint(state, {"ok": True, "result": result})
        wall = time.perf_counter() - t0
        outcome.record("complete", state.task.task_id, wall_s=round(wall, 6))
        if persistent:
            outcome.record("checkpoint", state.task.task_id)
        if progress:
            progress(f"{state.task.task_id}: {wall:.2f}s")


def _run_supervised(
    queue: List[_Attempt],
    worker: Callable[[Any], Any],
    outcome: PoolOutcome,
    *,
    workers: int,
    timeout_s: float,
    max_retries: int,
    backoff_s: float,
    progress: Optional[Callable[[str], None]],
    poll_s: float,
    persistent: bool = False,
) -> None:
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    waiting = list(queue)
    running: List[_Attempt] = []

    def launch(state: _Attempt) -> None:
        # a stale result from a timed-out predecessor attempt must not
        # be mistaken for this attempt's output
        if os.path.exists(state.out_path):
            os.unlink(state.out_path)
        state.proc = ctx.Process(
            target=_child_entry,
            args=(
                worker,
                state.task.payload,
                state.out_path,
                state.task.task_id,
                state.attempt,
            ),
            daemon=True,
        )
        state.started = time.monotonic()
        state.proc.start()
        outcome.record(
            "spawn", state.task.task_id, attempt=state.attempt, pid=state.proc.pid
        )

    def retire(state: _Attempt, event: str, detail: Dict[str, Any]) -> None:
        """Record a degradation and either requeue or give up."""
        record = {
            "task": state.task.task_id,
            "event": event,
            "attempt": state.attempt,
            **detail,
        }
        outcome.record(event, state.task.task_id, attempt=state.attempt, **detail)
        state.attempt += 1
        if state.attempt > max_retries:
            record["gave_up"] = True
            outcome.failed[state.task.task_id] = (
                f"{event} (gave up after {state.attempt} attempts)"
            )
            outcome.record(
                "fail", state.task.task_id, attempt=state.attempt, cause=event
            )
        else:
            delay = backoff_s * (2 ** (state.attempt - 1))
            record["retry_in_s"] = round(delay, 3)
            state.not_before = time.monotonic() + delay
            state.proc = None
            waiting.append(state)
            outcome.record(
                "retry",
                state.task.task_id,
                attempt=state.attempt,
                delay_s=round(delay, 3),
            )
        outcome.degradations.append(record)
        if progress:
            progress(f"{state.task.task_id}: {event} (attempt {record['attempt']})")

    while waiting or running:
        now = time.monotonic()
        # fill free slots with eligible (backoff-expired) tasks
        idx = 0
        while idx < len(waiting) and len(running) < workers:
            if waiting[idx].not_before <= now:
                state = waiting.pop(idx)
                launch(state)
                running.append(state)
            else:
                idx += 1

        made_progress = False
        for state in list(running):
            assert state.proc is not None
            if state.proc.is_alive():
                if now - state.started > timeout_s:
                    # hang: the watchdog kills the worker outright
                    state.proc.kill()
                    state.proc.join()
                    running.remove(state)
                    retire(
                        state,
                        "timeout",
                        {"timeout_s": timeout_s},
                    )
                    made_progress = True
                continue
            state.proc.join()
            exitcode = state.proc.exitcode
            running.remove(state)
            made_progress = True
            doc = _load_result(state.out_path)
            if doc is None:
                # died without a result: SIGKILL, segfault, OOM, ...
                retire(state, "crash", {"exitcode": exitcode})
            elif doc.get("ok"):
                outcome.results[state.task.task_id] = doc["result"]
                wall = time.monotonic() - state.started
                outcome.record(
                    "complete",
                    state.task.task_id,
                    attempt=state.attempt,
                    wall_s=round(wall, 6),
                )
                if persistent:
                    outcome.record("checkpoint", state.task.task_id)
                if progress:
                    progress(f"{state.task.task_id}: {wall:.2f}s")
            else:
                # a worker exception is deterministic: retrying the same
                # payload through the same code cannot succeed
                error = doc.get("error", "worker error")
                outcome.failed[state.task.task_id] = error
                outcome.record(
                    "fail", state.task.task_id, attempt=state.attempt, error=error
                )
                try:
                    os.unlink(state.out_path)
                except OSError:
                    pass
        if not made_progress:
            time.sleep(poll_s)
