"""Sweep discovery: which benchmarks exist and how they shard.

Every figure/ablation reproduced by ``benchmarks/bench_*.py`` has a
declarative :class:`SweepSpec` here.  Figure sweeps fan out into one
shard per (module variant, size decade) — each shard is an independent
single-threaded DES run, and per-size measurements are independent of
what else ran in the same process (each ``run_series`` builds a fresh
machine; see tests/test_benchrunner.py), so the sharded union is
byte-identical to a single serial sweep.  Ablation sweeps run as one
shard each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netpipe.sizes import decade_sizes, netpipe_sizes

__all__ = ["SweepSpec", "Shard", "SPECS", "spec_sizes", "discover_shards"]


@dataclass(frozen=True)
class SweepSpec:
    """One figure or ablation sweep."""

    name: str
    title: str
    kind: str  # "figure" | "ablation"
    pattern: Optional[str] = None  # figures only
    variants: Tuple[str, ...] = ("default",)
    max_bytes: int = 0  # figures only
    perturbation: int = 3  # full-mode size schedule perturbation
    extra_sizes: Tuple[int, ...] = ()  # always measured, even in fast mode
    #: the sweep can run under the conservative parallel DES driver
    #: (repro.sim.parallel); ``--partitions N`` applies only to these
    partitionable: bool = False


#: the registry, in report order.
SPECS: Dict[str, SweepSpec] = {
    spec.name: spec
    for spec in [
        SweepSpec(
            name="fig4",
            title="Figure 4: one-way latency, 1 B .. 1 KB",
            kind="figure",
            pattern="pingpong",
            variants=("put", "get", "mpich1", "mpich2"),
            max_bytes=1024,
            # the header-piggyback boundary must stay resolvable in
            # fast mode so the Figure 4 step is gated in CI
            extra_sizes=(9, 12, 13, 15),
        ),
        SweepSpec(
            name="fig5",
            title="Figure 5: uni-directional (ping-pong) bandwidth",
            kind="figure",
            pattern="pingpong",
            variants=("put", "get", "mpich1", "mpich2"),
            max_bytes=8 * 1024 * 1024,
        ),
        SweepSpec(
            name="fig6",
            title="Figure 6: streaming bandwidth",
            kind="figure",
            pattern="stream",
            variants=("put", "get", "mpich1", "mpich2"),
            max_bytes=8 * 1024 * 1024,
        ),
        SweepSpec(
            name="fig7",
            title="Figure 7: bi-directional bandwidth",
            kind="figure",
            pattern="bidir",
            variants=("put", "get", "mpich1", "mpich2"),
            max_bytes=8 * 1024 * 1024,
        ),
        SweepSpec(
            name="ablation_smallmsg",
            title="Ablation: header-piggyback optimization on/off",
            kind="ablation",
        ),
        SweepSpec(
            name="ablation_accel",
            title="Ablation: generic vs accelerated (offloaded) mode",
            kind="ablation",
        ),
        SweepSpec(
            name="ablation_interrupt_cost",
            title="Ablation: latency vs host interrupt cost",
            kind="ablation",
        ),
        SweepSpec(
            name="ablation_crc",
            title="Ablation: link CRC retry injection",
            kind="ablation",
        ),
        SweepSpec(
            name="redstorm_distance",
            title="Red Storm distance sweep: latency vs hop count",
            kind="ablation",
        ),
        SweepSpec(
            name="redstorm_plane",
            title="Red Storm whole-plane traffic: neighbor, incast, tree",
            kind="ablation",
            partitionable=True,
        ),
        SweepSpec(
            name="inline_overheads",
            title="Inline: NULL-trap and interrupt costs",
            kind="ablation",
        ),
        SweepSpec(
            name="inline_sram",
            title="Inline: firmware SRAM occupancy",
            kind="ablation",
        ),
    ]
}


@dataclass(frozen=True)
class Shard:
    """One unit of worker-pool work (picklable)."""

    spec: str
    variant: str
    chunk: int = 0  # decade index; -1 for unsharded (ablation) specs
    sizes: Tuple[int, ...] = ()
    fast: bool = False
    #: parallel-DES partition count (partitionable specs only).  An
    #: execution strategy, not simulated content: results are
    #: byte-identical for every value, so it is absent from the cache
    #: request (see executor.shard_cache_request).
    partitions: int = 1

    @property
    def shard_id(self) -> str:
        if self.chunk < 0:
            return self.spec
        return f"{self.spec}/{self.variant}/d{self.chunk}"


def spec_sizes(spec: SweepSpec, *, fast: bool) -> List[int]:
    """The full size schedule of a figure spec in the given mode."""
    if spec.kind != "figure":
        raise ValueError(f"{spec.name} has no size schedule")
    if fast:
        base = decade_sizes(1, spec.max_bytes)
    else:
        base = netpipe_sizes(1, spec.max_bytes, perturbation=spec.perturbation)
    return sorted(set(base) | set(spec.extra_sizes))


def _decade(nbytes: int) -> int:
    """Size-decade index: floor(log10(nbytes))."""
    return int(math.floor(math.log10(nbytes))) if nbytes >= 10 else 0


def discover_shards(
    *,
    fast: bool = False,
    filter: Optional[str] = None,
    partitions: int = 1,
) -> List[Shard]:
    """Expand the registry into the shard list a run executes.

    ``filter`` keeps only shard ids containing the substring (debug aid;
    note that figure-level anchors are then derived from a partial
    series).  ``partitions`` > 1 runs partitionable specs under the
    conservative parallel DES driver; all other shards are unaffected.
    """
    shards: List[Shard] = []
    for spec in SPECS.values():
        if spec.kind == "figure":
            sizes = spec_sizes(spec, fast=fast)
            for variant in spec.variants:
                by_decade: Dict[int, List[int]] = {}
                for n in sizes:
                    by_decade.setdefault(_decade(n), []).append(n)
                for decade in sorted(by_decade):
                    shards.append(
                        Shard(
                            spec=spec.name,
                            variant=variant,
                            chunk=decade,
                            sizes=tuple(by_decade[decade]),
                            fast=fast,
                        )
                    )
        else:
            shards.append(
                Shard(
                    spec=spec.name,
                    variant="default",
                    chunk=-1,
                    fast=fast,
                    partitions=max(1, partitions) if spec.partitionable else 1,
                )
            )
    if filter:
        shards = [s for s in shards if filter in s.shard_id]
    return shards
