"""The generic-mode Portals implementation in the OS kernel.

This is the paper's measured configuration: Portals matching runs on the
host, driven by firmware interrupts.  One instance exists per node and
serves every non-accelerated process on it ("the OS kernel ... multiplexes
them to a single firmware mailbox", Figure 2).

Responsibilities:

* the send paths invoked (through a bridge) by ``PtlPut``/``PtlGet`` —
  allocate a host-managed TX pending, build the wire header, stream the
  transmit command to the firmware mailbox;
* the interrupt handler — drains **all** new firmware events per
  invocation (section 4.1), performing Portals matching for new headers,
  issuing receive/deposit commands, and posting Portals events into user
  event queues;
* host-side pending bookkeeping and ACK generation.

All host time is charged to the node's Opteron: the 2 us interrupt
overhead plus per-event costs in interrupt context, trap/syscall plus
processing costs in the send paths.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..fw.commands import (
    FwEvent,
    FwEventKind,
    ReleasePendingCmd,
    RxDepositCmd,
    TxAckCmd,
    TxGetCmd,
    TxPutCmd,
    TxReplyCmd,
)
from ..fw.firmware import Firmware
from ..fw.structs import LowerPending
from ..hw.config import SeaStarConfig
from ..hw.processors import Opteron
from ..portals.constants import EventKind, MDOptions, MsgType, NIFailType
from ..portals.events import PortalsEvent
from ..portals.header import PortalsHeader, ProcessId
from ..portals.matching import MatchStatus, commit_operation, match_request
from ..portals.md import MemoryDescriptor
from ..portals.ni import NetworkInterface
from ..sim import CPU, Channel, Counters, Simulator
from .memory import ContiguousMemory, MemoryModel, PagedMemory

__all__ = ["OSType", "Kernel", "KernelTxCtx"]


class OSType(enum.Enum):
    """Which operating system this node boots (section 3.1's cases)."""

    CATAMOUNT = "catamount"
    LINUX = "linux"


@dataclass(eq=False)
class KernelTxCtx:
    """Host-side record of one in-flight transmit operation."""

    kind: str  # "put" | "get" | "reply"
    src_pid: int
    pending: LowerPending
    md: Optional[MemoryDescriptor] = None
    ack_req: bool = False
    length: int = 0
    # reply contexts carry the target-side match to commit at completion:
    commit: Any = None  # (mlist, result, hdr)
    completed: bool = False
    """Local completion (TX_COMPLETE) already processed; a later
    SEND_FAILED is then informational only."""

    direct_get_end: bool = False
    """GET_END was delivered by the firmware; the kernel's commit must
    not post it again."""

    trace_span: Any = None
    """Open ``host.tx_kernel`` span (tracing only); the firmware
    backfills its ``msg_id`` once the chunker assigns one."""


class Kernel:
    """One node's OS kernel with the generic Portals library inside."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        opteron: Opteron,
        firmware: Firmware,
        os_type: OSType = OSType.CATAMOUNT,
    ):
        self.sim = sim
        self.config = config
        self.cpu = opteron
        self.firmware = firmware
        self.os_type = os_type
        self.node_id = firmware.node_id
        self.counters = Counters()
        self.memory: MemoryModel = (
            ContiguousMemory(config)
            if os_type is OSType.CATAMOUNT
            else PagedMemory(config)
        )

        self.fw_events: deque[FwEvent] = deque()
        self._draining = False
        self.proc, tx_pool = firmware.register_generic(self._fw_event_sink)
        self.tx_free: Channel = Channel(sim, name=f"ktx:{self.node_id}")
        for lower in tx_pool:
            self.tx_free.put(lower)

        self._user_nis: dict[int, NetworkInterface] = {}
        self._rx_inflight: dict[int, tuple] = {}
        self.tracer = None
        """Optional machine-wide tracer (set by the Node assembly)."""

    def _trace(self, category: str, **detail) -> None:
        if self.tracer is not None:
            detail["node"] = self.node_id
            self.tracer.emit(category, detail)

    def _span(self, name: str, *, component: str = "kernel",
              msg_id: Optional[int] = None, **args):
        if self.tracer is None:
            return None
        return self.tracer.begin(
            name, node=self.node_id, component=component, msg_id=msg_id, **args
        )

    def _span_end(self, span, **args) -> None:
        if span is not None:
            self.tracer.end(span, **args)

    # ------------------------------------------------------------------
    # Process registry
    # ------------------------------------------------------------------
    def register_user(self, pid: int, ni: NetworkInterface) -> None:
        """Announce a generic user process's Portals state to the kernel."""
        if pid in self._user_nis:
            raise ValueError(f"pid {pid} already registered on node {self.node_id}")
        self._user_nis[pid] = ni

    def crossing_cost(self) -> int:
        """User->kernel boundary cost for this OS."""
        if self.os_type is OSType.CATAMOUNT:
            return self.config.trap_overhead
        return self.config.linux_syscall_overhead

    # ------------------------------------------------------------------
    # Send paths (app process context, via bridges)
    # ------------------------------------------------------------------
    def send_put(
        self,
        *,
        src_pid: int,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        ack_req: bool,
        remote_offset: int,
        hdr_data: int,
        local_offset: int,
        length: int,
        crossing: Optional[int] = None,
    ):
        """Kernel half of PtlPut: allocate a pending, command the firmware."""
        cfg = self.config
        span = self._span("host.tx_kernel", op="put", nbytes=length)
        cost = (
            (self.crossing_cost() if crossing is None else crossing)
            + cfg.host_tx_overhead
            + self.memory.command_prep_cost(length)
            + cfg.ht_write_latency
        )
        yield from self.cpu.execute(cost, priority=CPU.PRIO_KERNEL)
        if len(self.tx_free) == 0:
            # Pool dry: reclaim lazily-completed pendings now instead of
            # waiting for an interrupt that might never come.
            self._request_interrupt()
        pending: LowerPending = yield self.tx_free.get()
        ctx = KernelTxCtx(
            kind="put",
            src_pid=src_pid,
            pending=pending,
            md=md,
            ack_req=ack_req,
            length=length,
            trace_span=span,
        )
        payload = md.buffer[local_offset : local_offset + length] if length else None
        self.counters.incr("puts")
        self.proc.mailbox.post_command(
            TxPutCmd(
                pending_id=pending.pending_id,
                target=target,
                ptl_index=ptl_index,
                match_bits=match_bits,
                payload=payload,
                length=length,
                remote_offset=remote_offset,
                hdr_data=hdr_data,
                ack_req=ack_req,
                host_ctx=ctx,
                dma_commands=self.memory.dma_commands(length),
            )
        )
        self._span_end(span)

    def send_get(
        self,
        *,
        src_pid: int,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int,
        remote_offset: int,
        local_offset: int,
        length: int,
        crossing: Optional[int] = None,
    ):
        """Kernel half of PtlGet."""
        cfg = self.config
        span = self._span("host.tx_kernel", op="get", nbytes=length)
        cost = (
            (self.crossing_cost() if crossing is None else crossing)
            + cfg.host_tx_overhead
            + self.memory.command_prep_cost(length)
            + cfg.ht_write_latency
        )
        yield from self.cpu.execute(cost, priority=CPU.PRIO_KERNEL)
        if len(self.tx_free) == 0:
            self._request_interrupt()
        pending: LowerPending = yield self.tx_free.get()
        ctx = KernelTxCtx(
            kind="get", src_pid=src_pid, pending=pending, md=md, length=length,
            trace_span=span,
        )
        reply_view = md.buffer[local_offset : local_offset + length]
        self.counters.incr("gets")
        self.proc.mailbox.post_command(
            TxGetCmd(
                pending_id=pending.pending_id,
                target=target,
                ptl_index=ptl_index,
                match_bits=match_bits,
                length=length,
                reply_buffer=reply_view,
                remote_offset=remote_offset,
                host_ctx=ctx,
                dma_commands=self.memory.dma_commands(length),
                direct_eq=md.eq if md.events_enabled(start=False) else None,
                md_ref=md,
            )
        )
        self._span_end(span)

    # ------------------------------------------------------------------
    # Firmware event plumbing
    # ------------------------------------------------------------------
    #: lazy (no-interrupt) bookkeeping events force an interrupt once
    #: this many accumulate, bounding deferred pending reclamation.
    LAZY_EVENT_LIMIT = 64

    def _fw_event_sink(self, event: FwEvent) -> None:
        self.fw_events.append(event)
        if event.meta.get("lazy") and len(self.fw_events) < self.LAZY_EVENT_LIMIT:
            # Completion was already written to the user EQ by the
            # firmware; the kernel only needs this for pending-pool
            # bookkeeping, which can wait for the next interrupt.
            self.counters.incr("lazy_events_deferred")
            return
        self._request_interrupt()

    def _request_interrupt(self) -> None:
        if self._draining:
            # The running handler will observe the new event in its drain
            # loop — this is the interrupt-reduction behaviour of 4.1.
            self.cpu.counters.incr("interrupts_suppressed")
            return
        self.cpu.raise_interrupt(self._irq_drain)

    def _irq_drain(self):
        """Interrupt handler: process ALL new events in the generic EQ."""
        self._trace("kernel.irq", pending_events=len(self.fw_events))
        self._draining = True
        try:
            while self.fw_events:
                event = self.fw_events.popleft()
                span = self._span(
                    "host.drain_event", component="irq",
                    msg_id=event.msg_id if event.msg_id >= 0 else None,
                    kind=event.kind.value,
                )
                yield from self.cpu.charge(self.config.host_interrupt_event)
                self._span_end(span)
                yield from self._dispatch(event)
        finally:
            self._draining = False

    # ------------------------------------------------------------------
    # Event dispatch (interrupt context: use cpu.charge, never execute)
    # ------------------------------------------------------------------
    def _dispatch(self, event: FwEvent):
        kind = event.kind
        if kind is FwEventKind.RX_HEADER:
            yield from self._on_rx_header(event)
        elif kind is FwEventKind.RX_COMPLETE:
            yield from self._on_rx_complete(event)
        elif kind is FwEventKind.TX_COMPLETE:
            yield from self._on_tx_complete(event)
        elif kind is FwEventKind.REPLY_COMPLETE:
            yield from self._on_reply_complete(event)
        elif kind is FwEventKind.ACK_RECEIVED:
            yield from self._on_ack(event)
        elif kind is FwEventKind.SEND_FAILED:
            yield from self._on_send_failed(event)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected firmware event {kind}")

    # -- receive side -------------------------------------------------------
    def _on_rx_header(self, event: FwEvent):
        cfg = self.config
        hdr = event.header
        assert hdr is not None
        msg_id = event.msg_id if event.msg_id >= 0 else None
        ni = self._user_nis.get(hdr.dst.pid)
        mspan = self._span("host.match", component="irq", msg_id=msg_id,
                           op=hdr.op.value)
        yield from self.cpu.charge(cfg.host_match_overhead)
        if ni is None:
            self._span_end(mspan, status="unknown_pid")
            self.counters.incr("drops_unknown_pid")
            yield from self._discard(event, hdr)
            return
        result = match_request(ni.table, hdr)
        self._trace(
            "kernel.match",
            op=hdr.op.value,
            status=result.status.value,
            mlength=result.mlength,
        )
        self._span_end(mspan, status=result.status.value,
                       mlength=result.mlength)
        mlist = ni.table.match_list(hdr.ptl_index)
        if not result.matched:
            ni.counters.incr("drops")
            self.counters.incr(
                "drops_no_match"
                if result.status is MatchStatus.DROPPED_NO_MATCH
                else "drops_no_space"
            )
            if hdr.op is MsgType.GET:
                yield from self._send_failed_reply(hdr)
                yield from self._release(event.pending_id)
            else:
                yield from self._discard(event, hdr)
            return

        start_events = commit_operation(mlist, result, hdr, started=True)
        yield from self._post_events(result.md.eq, start_events)

        if hdr.op is MsgType.GET:
            yield from self._reply_to_get(event, hdr, mlist, result)
            return

        # PUT delivered entirely in the header packet (inline payload or
        # a zero-length message): complete right here.
        if hdr.inline_data is not None or hdr.length == 0:
            dspan = self._span("host.deliver", component="irq", msg_id=msg_id)
            if result.mlength > 0:
                dest = result.md.region(result.offset, result.mlength)
                dest[:] = hdr.inline_data[: result.mlength]
            yield from self.cpu.charge(cfg.host_event_overhead)
            end_events = commit_operation(mlist, result, hdr, started=False)
            yield from self._post_events(result.md.eq, end_events)
            self._span_end(dspan)
            yield from self._maybe_ack(hdr, result)
            yield from self._release(event.pending_id, msg_id=msg_id)
            return

        # Payload PUT: command the deposit; finish at RX_COMPLETE.  Even a
        # fully-truncated match (mlength == 0) must program the engine so
        # the payload drains off the wire.
        dest = (
            result.md.region(result.offset, result.mlength)
            if result.mlength > 0
            else None
        )
        cspan = self._span("host.rx_cmd", component="irq", msg_id=msg_id)
        yield from self.cpu.charge(
            cfg.host_rx_cmd_overhead
            + self.memory.command_prep_cost(result.mlength)
            + cfg.ht_write_latency
        )
        self._span_end(cspan)
        self._rx_inflight[event.pending_id] = (mlist, result, hdr, ni)
        self.proc.mailbox.post_command(
            RxDepositCmd(
                pending_id=event.pending_id,
                dest=dest,
                accept_bytes=result.mlength,
                dma_commands=self.memory.dma_commands(result.mlength),
            )
        )

    def _on_rx_complete(self, event: FwEvent):
        cfg = self.config
        entry = self._rx_inflight.pop(event.pending_id, None)
        if entry is None:  # pragma: no cover - defensive
            self.counters.incr("orphan_rx_complete")
            return
        if entry == ("discard",):
            yield from self._release(event.pending_id)
            return
        mlist, result, hdr, _ni = entry
        msg_id = event.msg_id if event.msg_id >= 0 else None
        dspan = self._span("host.deliver", component="irq", msg_id=msg_id)
        yield from self.cpu.charge(cfg.host_event_overhead)
        end_events = commit_operation(mlist, result, hdr, started=False)
        yield from self._post_events(result.md.eq, end_events)
        self._span_end(dspan)
        yield from self._maybe_ack(hdr, result)
        yield from self._release(event.pending_id, msg_id=msg_id)

    def _reply_to_get(self, event: FwEvent, hdr, mlist, result):
        cfg = self.config
        yield from self.cpu.charge(cfg.host_get_reply_setup + cfg.ht_write_latency)
        pending = self._alloc_tx_nowait()
        md = result.md
        # Pre-build GET_END so the firmware can deliver it straight to
        # the target process's EQ when the reply finishes (section 3.1:
        # the firmware writes notifications to user-level event queues).
        direct_eq = md.eq if md.events_enabled(start=False) else None
        direct_event = None
        if direct_eq is not None:
            direct_event = PortalsEvent(
                kind=EventKind.GET_END,
                initiator=hdr.src,
                ptl_index=hdr.ptl_index,
                match_bits=hdr.match_bits,
                rlength=result.rlength,
                mlength=result.mlength,
                offset=result.offset,
                md_user_ptr=md.user_ptr,
                md_handle=md,
            )
        ctx = KernelTxCtx(
            kind="reply",
            src_pid=hdr.dst.pid,
            pending=pending,
            md=md,
            length=result.mlength,
            commit=(mlist, result, hdr),
            direct_get_end=direct_event is not None,
        )
        payload = md.region(result.offset, result.mlength) if result.mlength else None
        self.counters.incr("replies")
        self.proc.mailbox.post_command(
            TxReplyCmd(
                pending_id=pending.pending_id,
                target=hdr.src,
                initiator_ctx=hdr.initiator_ctx,
                payload=payload,
                length=result.mlength,
                host_ctx=ctx,
                dma_commands=self.memory.dma_commands(result.mlength),
                direct_eq=direct_eq,
                direct_event=direct_event,
            )
        )
        yield from self._release(event.pending_id)

    def _send_failed_reply(self, hdr: PortalsHeader):
        cfg = self.config
        yield from self.cpu.charge(cfg.host_get_reply_setup + cfg.ht_write_latency)
        pending = self._alloc_tx_nowait()
        ctx = KernelTxCtx(
            kind="reply", src_pid=hdr.dst.pid, pending=pending, length=0
        )
        self.proc.mailbox.post_command(
            TxReplyCmd(
                pending_id=pending.pending_id,
                target=hdr.src,
                initiator_ctx=hdr.initiator_ctx,
                payload=None,
                length=0,
                host_ctx=ctx,
                failed=True,
            )
        )

    # -- initiator completions ---------------------------------------------------
    def _on_tx_complete(self, event: FwEvent):
        cfg = self.config
        ctx: KernelTxCtx = event.host_ctx
        if ctx is None:  # pragma: no cover - defensive
            self.counters.incr("orphan_tx_complete")
            return
        ctx.completed = True
        if ctx.kind == "put":
            md = ctx.md
            md.pending_ops -= 1
            if md.events_enabled(start=False):
                yield from self._post_events(
                    md.eq,
                    [
                        PortalsEvent(
                            kind=EventKind.SEND_END,
                            initiator=ProcessId(self.node_id, ctx.src_pid),
                            mlength=ctx.length,
                            rlength=ctx.length,
                            md_user_ptr=md.user_ptr,
                            md_handle=md,
                        )
                    ],
                )
        elif ctx.kind == "reply":
            if ctx.commit is not None:
                mlist, result, hdr = ctx.commit
                yield from self.cpu.charge(cfg.host_event_overhead)
                end_events = commit_operation(mlist, result, hdr, started=False)
                if ctx.direct_get_end:
                    end_events = [
                        ev for ev in end_events if ev.kind is not EventKind.GET_END
                    ]
                yield from self._post_events(result.md.eq, end_events)
        self._free_tx(ctx.pending)

    def _on_reply_complete(self, event: FwEvent):
        ctx: KernelTxCtx = event.host_ctx
        if ctx is None or ctx.kind != "get":  # pragma: no cover - defensive
            self.counters.incr("orphan_reply_complete")
            return
        if event.meta.get("direct_done"):
            # The firmware already delivered REPLY_END to the user EQ and
            # reconciled the MD; just recycle the pending.
            self._free_tx(ctx.pending)
            return
        md = ctx.md
        md.pending_ops -= 1
        failed = bool(event.meta.get("failed"))
        if md.events_enabled(start=False):
            yield from self._post_events(
                md.eq,
                [
                    PortalsEvent(
                        kind=EventKind.REPLY_END,
                        initiator=event.header.src if event.header else None,
                        mlength=event.mlength,
                        rlength=ctx.length,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                        ni_fail_type=(
                            NIFailType.DROPPED if failed else NIFailType.OK
                        ),
                    )
                ],
            )
        self._free_tx(ctx.pending)

    def _on_ack(self, event: FwEvent):
        ctx: KernelTxCtx = event.host_ctx
        if ctx is None or ctx.md is None:  # pragma: no cover - defensive
            self.counters.incr("orphan_ack")
            return
        md = ctx.md
        if md.eq is not None:
            yield from self._post_events(
                md.eq,
                [
                    PortalsEvent(
                        kind=EventKind.ACK,
                        initiator=event.header.src if event.header else None,
                        mlength=event.mlength,
                        offset=event.offset,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                    )
                ],
            )

    def _on_send_failed(self, event: FwEvent):
        """Go-back-N gave up on a message.

        Portals SEND_END means *local* completion (buffer reusable) and
        was already delivered at TX_COMPLETE for puts that made it onto
        the wire; the terminal failure is reported as an additional
        SEND_END flagged PTL_NI_FAIL.  Bookkeeping (pending recycle, op
        count) only happens here if local completion never did."""
        ctx: KernelTxCtx = event.host_ctx
        if ctx is None or ctx.md is None:
            return
        md = ctx.md
        if not ctx.completed:
            md.pending_ops -= 1
        if md.eq is not None:
            yield from self._post_events(
                md.eq,
                [
                    PortalsEvent(
                        kind=EventKind.SEND_END,
                        mlength=0,
                        rlength=ctx.length,
                        md_user_ptr=md.user_ptr,
                        md_handle=md,
                        ni_fail_type=NIFailType.FAIL,
                    )
                ],
            )
        if not ctx.completed:
            ctx.completed = True
            self._free_tx(ctx.pending)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _post_events(self, eq, events):
        for ev in events:
            yield from self.cpu.charge(self.config.host_event_overhead)
            if eq is not None:
                eq.post(ev)

    def _maybe_ack(self, hdr: PortalsHeader, result):
        if not hdr.ack_req:
            return
        md = result.md
        if md.options & MDOptions.ACK_DISABLE:
            return
        yield from self.cpu.charge(self.config.ht_write_latency)
        self.counters.incr("acks_sent")
        self.proc.mailbox.post_command(
            TxAckCmd(
                pending_id=-1,
                target=hdr.src,
                initiator_ctx=hdr.initiator_ctx,
                mlength=result.mlength,
                offset=result.offset,
            )
        )

    def _discard(self, event: FwEvent, hdr: PortalsHeader):
        """Drop an unmatched/undeliverable message: drain its payload."""
        cfg = self.config
        if hdr.inline_data is None and hdr.length > 0:
            yield from self.cpu.charge(cfg.host_rx_cmd_overhead + cfg.ht_write_latency)
            self._rx_inflight[event.pending_id] = ("discard",)
            self.proc.mailbox.post_command(
                RxDepositCmd(
                    pending_id=event.pending_id, dest=None, accept_bytes=0
                )
            )
        else:
            yield from self._release(event.pending_id)

    def _release(self, pending_id: int, msg_id: Optional[int] = None):
        span = self._span("host.release", component="irq", msg_id=msg_id)
        yield from self.cpu.charge(self.config.ht_write_latency)
        self.proc.mailbox.post_command(ReleasePendingCmd(pending_id=pending_id))
        self._span_end(span)

    def _alloc_tx_nowait(self) -> LowerPending:
        if len(self.tx_free) == 0:
            raise RuntimeError(
                f"node {self.node_id}: kernel TX pending pool exhausted in "
                "interrupt context — increase generic_tx_pendings"
            )
        event = self.tx_free.get()
        assert event.triggered
        return event.value

    def _free_tx(self, pending: LowerPending) -> None:
        if pending is None:  # pragma: no cover - defensive
            return
        self.tx_free.put(pending)
