"""Host memory models.

The two XT3 operating systems manage application memory very differently,
and the firmware command format depends on it (section 3.3):

* **Catamount** maps virtually contiguous pages to *physically contiguous*
  pages — one DMA command covers any buffer.
* **Linux** uses small (4 KB) pages: the host must pin each page, find its
  virtual-to-physical mapping, and push one DMA command per page.

Both models hand out real NumPy byte buffers, so data movement in the
simulation is genuine copying that tests can verify end to end.
"""

from __future__ import annotations

import numpy as np

from ..hw.config import SeaStarConfig

__all__ = ["MemoryModel", "ContiguousMemory", "PagedMemory"]


class MemoryModel:
    """Base: allocation plus DMA-command accounting."""

    name = "abstract"

    def __init__(self, config: SeaStarConfig):
        self.config = config
        self.allocated_bytes = 0
        self.pinned_pages = 0

    def allocate(self, nbytes: int) -> np.ndarray:
        """Allocate ``nbytes`` of zeroed process memory."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        self.allocated_bytes += nbytes
        return np.zeros(nbytes, dtype=np.uint8)

    def dma_commands(self, nbytes: int) -> int:
        """DMA commands needed to describe an ``nbytes`` transfer."""
        raise NotImplementedError

    def command_prep_cost(self, nbytes: int) -> int:
        """Host time (ps) to prepare the mapping commands for a transfer."""
        raise NotImplementedError


class ContiguousMemory(MemoryModel):
    """Catamount: physically contiguous — a single command suffices."""

    name = "catamount-contiguous"

    def dma_commands(self, nbytes: int) -> int:
        """Always one (firmware generates the packet commands itself)."""
        return 1

    def command_prep_cost(self, nbytes: int) -> int:
        """No per-page work."""
        return 0


class PagedMemory(MemoryModel):
    """Linux: 4 KB pages; the host pre-computes per-page DMA commands."""

    name = "linux-paged"

    def pages(self, nbytes: int) -> int:
        """Pages an ``nbytes`` transfer can straddle (worst-case aligned)."""
        if nbytes <= 0:
            return 1
        page = self.config.page_bytes
        return (nbytes + page - 1) // page + 1

    def dma_commands(self, nbytes: int) -> int:
        """One command per (possibly straddled) page."""
        return self.pages(nbytes)

    def command_prep_cost(self, nbytes: int) -> int:
        """Pin + translate + push one mapping per page."""
        npages = self.pages(nbytes)
        self.pinned_pages += npages
        return npages * self.config.host_page_cmd_overhead
