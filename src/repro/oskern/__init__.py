"""Operating-system models: Catamount and Linux kernels, processes, memory."""

from .kernel import Kernel, KernelTxCtx, OSType
from .memory import ContiguousMemory, MemoryModel, PagedMemory
from .process import HostProcess

__all__ = [
    "Kernel",
    "KernelTxCtx",
    "OSType",
    "MemoryModel",
    "ContiguousMemory",
    "PagedMemory",
    "HostProcess",
]
