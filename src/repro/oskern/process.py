"""Host application process model.

A :class:`HostProcess` bundles what one application sees: its Portals
identity (NI), its API object (wired through the right bridge for the
OS/mode), and its memory allocator.  Application code is written as
simulation coroutines that receive the process::

    def app(proc):
        eq = yield from proc.api.PtlEQAlloc(64)
        ...

    node.spawn(app)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from ..portals.api import PortalsAPI
from ..portals.header import ProcessId
from ..portals.ni import NetworkInterface, NILimits
from ..sim import Process, Simulator

__all__ = ["HostProcess"]


class HostProcess:
    """One application process on a node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        pid: int,
        bridge: Any,
        memory: Any,
        *,
        accelerated: bool = False,
        limits: NILimits | None = None,
    ):
        self.sim = sim
        self.pid = pid
        self.node_id = node_id
        self.accelerated = accelerated
        self.ni = NetworkInterface(
            id=ProcessId(node_id, pid),
            limits=limits or NILimits(),
            accelerated=accelerated,
        )
        self.bridge = bridge
        self.api = PortalsAPI(sim, self.ni, bridge)
        self.memory = memory

    def alloc(self, nbytes: int) -> np.ndarray:
        """Allocate process memory (real bytes; DMA copies are genuine)."""
        return self.memory.allocate(nbytes)

    def spawn(self, fn: Callable[..., Generator], *args, name: str = "") -> Process:
        """Run ``fn(self, *args)`` as a simulation process."""
        return self.sim.process(
            fn(self, *args), name=name or f"app:{self.node_id}:{self.pid}"
        )

    @property
    def id(self) -> ProcessId:
        """This process's Portals identity."""
        return self.ni.id
