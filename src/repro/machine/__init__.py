"""Machine assembly: nodes and whole-system builders."""

from .builder import Machine, build_pair, build_redstorm
from .node import Node

__all__ = ["Machine", "Node", "build_pair", "build_redstorm"]
