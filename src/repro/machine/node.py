"""One XT3 node: Opteron + SeaStar + firmware + OS kernel + bridges.

:class:`Node` performs the full assembly for one of the paper's four
deployment cases (section 3.1):

* Catamount compute node, generic applications — ``os_type=CATAMOUNT``,
  ``create_process()``;
* Catamount compute node, accelerated application — ``create_process(
  accelerated=True)``;
* Linux service node, user services + kernel Lustre — ``os_type=LINUX``,
  ``create_process()`` (ukbridge) and ``create_kernel_client()``
  (kbridge), simultaneously;
* Linux compute node, single user application — ``os_type=LINUX``.

The firmware image is the same object regardless, as on the real machine.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..fw.firmware import ExhaustionPolicy, Firmware
from ..hw.config import SeaStarConfig
from ..hw.processors import Opteron
from ..hw.seastar import SeaStar
from ..nal.accel import AcceleratedBridge
from ..nal.bridges import KBridge, QKBridge, UKBridge
from ..nal.ssnal import SSNAL
from ..net.fabric import Fabric
from ..oskern.kernel import Kernel, OSType
from ..oskern.process import HostProcess
from ..portals.header import ProcessId
from ..portals.ni import NetworkInterface, NILimits
from ..sim import Simulator

__all__ = ["Node"]


class Node:
    """A fully assembled Red Storm / XT3 node."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        fabric: Fabric,
        node_id: int,
        *,
        os_type: OSType = OSType.CATAMOUNT,
        policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
        tracer=None,
        metrics=None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.os_type = os_type
        self.opteron = Opteron(sim, config, name=f"host:{node_id}")
        self.seastar = SeaStar(sim, config, fabric, node_id)
        self.firmware = Firmware(sim, config, self.seastar, policy=policy)
        self.firmware.tracer = tracer
        self.kernel = Kernel(sim, config, self.opteron, self.firmware, os_type)
        self.kernel.tracer = tracer
        # span instrumentation points throughout the node hold the same
        # machine-wide tracer (or None: tracing fully disabled)
        self.opteron.tracer = tracer
        self.opteron.trace_node = node_id
        self.seastar.tx.tracer = tracer
        if self.seastar.rx is not None:
            self.seastar.rx.tracer = tracer
        self.seastar.ht.tracer = tracer
        self.seastar.ht.trace_node = node_id
        # metrics instruments mirror the tracer distribution: every
        # component holds None (the default, zero-cost) or an instrument
        # from the machine-wide registry
        if metrics is not None:
            self._wire_metrics(metrics)
        self.ssnal = SSNAL(self.kernel)
        self._pids = itertools.count(1)
        self.processes: dict[int, HostProcess] = {}

    #: message-size histogram edges (bytes): one bucket per size decade
    #: of the NetPIPE sweeps, up to the 8 MB maximum
    MSG_BYTES_EDGES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 8388608)

    def _wire_metrics(self, metrics) -> None:
        """Attach registry instruments to every modeled component.

        Names follow the ``node{N}.{component}.{what}`` convention the
        attribution layer keys off (``.busy`` timelines become stages).
        """
        nid = self.node_id
        ss = self.seastar
        ss.tx.m_busy = metrics.timeline(f"node{nid}.txdma.busy")
        ss.tx.m_fetch = metrics.timeline(f"node{nid}.txdma.fetch.busy")
        ss.tx.m_msg_bytes = metrics.histogram(
            f"node{nid}.txdma.msg_bytes", self.MSG_BYTES_EDGES
        )
        if ss.rx is not None:
            ss.rx.m_busy = metrics.timeline(f"node{nid}.rxdma.busy")
        ss.ht.m_to_nic = metrics.timeline(f"node{nid}.ht.to_nic.busy")
        ss.ht.m_to_host = metrics.timeline(f"node{nid}.ht.to_host.busy")
        ss.ppc.m_busy = metrics.timeline(f"node{nid}.ppc.busy")
        self.opteron.m_busy = metrics.timeline(f"node{nid}.host.busy")
        sram = ss.sram
        sram.m_occupancy = metrics.gauge(f"node{nid}.sram.used_bytes")
        sram.m_now = lambda: self.sim.now
        # the firmware's boot-time pools were reserved before this gauge
        # existed; seed the series with the current level
        sram.m_occupancy.sample(self.sim.now, sram.used_bytes)
        # depth of the kernel's generic command FIFO (the mailbox every
        # non-accelerated Portals call crosses)
        self.kernel.proc.mailbox.commands.m_depth = metrics.gauge(
            f"node{nid}.mailbox.cmd_depth"
        )

    def create_process(
        self,
        *,
        pid: Optional[int] = None,
        accelerated: bool = False,
        limits: Optional[NILimits] = None,
    ) -> HostProcess:
        """Start an application process on this node.

        Generic processes get the OS-appropriate bridge (qkbridge on
        Catamount, ukbridge on Linux); ``accelerated=True`` wires the
        process straight to a dedicated firmware mailbox.
        """
        pid = next(self._pids) if pid is None else pid
        if accelerated:
            ni = NetworkInterface(
                id=ProcessId(self.node_id, pid),
                limits=limits or NILimits(),
                accelerated=True,
            )
            bridge = AcceleratedBridge(
                self.sim, self.firmware, self.kernel, self.opteron, pid, ni
            )
            proc = HostProcess(
                self.sim,
                self.node_id,
                pid,
                bridge,
                self.kernel.memory,
                accelerated=True,
                limits=limits,
            )
            # The bridge built the NI first (the firmware needs it); keep
            # the process's API bound to that same NI.
            proc.ni = ni
            proc.api.ni = ni
        else:
            bridge_cls = QKBridge if self.os_type is OSType.CATAMOUNT else UKBridge
            bridge = bridge_cls(self.sim, self.ssnal, self.opteron, pid)
            proc = HostProcess(
                self.sim,
                self.node_id,
                pid,
                bridge,
                self.kernel.memory,
                limits=limits,
            )
            self.kernel.register_user(pid, proc.ni)
        self.processes[pid] = proc
        return proc

    def create_kernel_client(
        self, *, pid: Optional[int] = None, limits: Optional[NILimits] = None
    ) -> HostProcess:
        """Start a kernel-level Portals client (the Lustre case, kbridge).

        Only meaningful on Linux nodes; coexists with user-level
        processes on the same SSNAL.
        """
        if self.os_type is not OSType.LINUX:
            raise RuntimeError("kernel-level clients (kbridge) are a Linux case")
        pid = next(self._pids) if pid is None else pid
        bridge = KBridge(self.sim, self.ssnal, self.opteron, pid)
        proc = HostProcess(
            self.sim, self.node_id, pid, bridge, self.kernel.memory, limits=limits
        )
        self.kernel.register_user(pid, proc.ni)
        self.processes[pid] = proc
        return proc
