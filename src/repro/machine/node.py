"""One XT3 node: Opteron + SeaStar + firmware + OS kernel + bridges.

:class:`Node` performs the full assembly for one of the paper's four
deployment cases (section 3.1):

* Catamount compute node, generic applications — ``os_type=CATAMOUNT``,
  ``create_process()``;
* Catamount compute node, accelerated application — ``create_process(
  accelerated=True)``;
* Linux service node, user services + kernel Lustre — ``os_type=LINUX``,
  ``create_process()`` (ukbridge) and ``create_kernel_client()``
  (kbridge), simultaneously;
* Linux compute node, single user application — ``os_type=LINUX``.

The firmware image is the same object regardless, as on the real machine.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..fw.firmware import ExhaustionPolicy, Firmware
from ..hw.config import SeaStarConfig
from ..hw.processors import Opteron
from ..hw.seastar import SeaStar
from ..nal.accel import AcceleratedBridge
from ..nal.bridges import KBridge, QKBridge, UKBridge
from ..nal.ssnal import SSNAL
from ..net.fabric import Fabric
from ..oskern.kernel import Kernel, OSType
from ..oskern.process import HostProcess
from ..portals.header import ProcessId
from ..portals.ni import NetworkInterface, NILimits
from ..sim import Simulator

__all__ = ["Node"]


class Node:
    """A fully assembled Red Storm / XT3 node."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        fabric: Fabric,
        node_id: int,
        *,
        os_type: OSType = OSType.CATAMOUNT,
        policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
        tracer=None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.os_type = os_type
        self.opteron = Opteron(sim, config, name=f"host:{node_id}")
        self.seastar = SeaStar(sim, config, fabric, node_id)
        self.firmware = Firmware(sim, config, self.seastar, policy=policy)
        self.firmware.tracer = tracer
        self.kernel = Kernel(sim, config, self.opteron, self.firmware, os_type)
        self.kernel.tracer = tracer
        # span instrumentation points throughout the node hold the same
        # machine-wide tracer (or None: tracing fully disabled)
        self.opteron.tracer = tracer
        self.opteron.trace_node = node_id
        self.seastar.tx.tracer = tracer
        if self.seastar.rx is not None:
            self.seastar.rx.tracer = tracer
        self.seastar.ht.tracer = tracer
        self.seastar.ht.trace_node = node_id
        self.ssnal = SSNAL(self.kernel)
        self._pids = itertools.count(1)
        self.processes: dict[int, HostProcess] = {}

    def create_process(
        self,
        *,
        pid: Optional[int] = None,
        accelerated: bool = False,
        limits: Optional[NILimits] = None,
    ) -> HostProcess:
        """Start an application process on this node.

        Generic processes get the OS-appropriate bridge (qkbridge on
        Catamount, ukbridge on Linux); ``accelerated=True`` wires the
        process straight to a dedicated firmware mailbox.
        """
        pid = next(self._pids) if pid is None else pid
        if accelerated:
            ni = NetworkInterface(
                id=ProcessId(self.node_id, pid),
                limits=limits or NILimits(),
                accelerated=True,
            )
            bridge = AcceleratedBridge(
                self.sim, self.firmware, self.kernel, self.opteron, pid, ni
            )
            proc = HostProcess(
                self.sim,
                self.node_id,
                pid,
                bridge,
                self.kernel.memory,
                accelerated=True,
                limits=limits,
            )
            # The bridge built the NI first (the firmware needs it); keep
            # the process's API bound to that same NI.
            proc.ni = ni
            proc.api.ni = ni
        else:
            bridge_cls = QKBridge if self.os_type is OSType.CATAMOUNT else UKBridge
            bridge = bridge_cls(self.sim, self.ssnal, self.opteron, pid)
            proc = HostProcess(
                self.sim,
                self.node_id,
                pid,
                bridge,
                self.kernel.memory,
                limits=limits,
            )
            self.kernel.register_user(pid, proc.ni)
        self.processes[pid] = proc
        return proc

    def create_kernel_client(
        self, *, pid: Optional[int] = None, limits: Optional[NILimits] = None
    ) -> HostProcess:
        """Start a kernel-level Portals client (the Lustre case, kbridge).

        Only meaningful on Linux nodes; coexists with user-level
        processes on the same SSNAL.
        """
        if self.os_type is not OSType.LINUX:
            raise RuntimeError("kernel-level clients (kbridge) are a Linux case")
        pid = next(self._pids) if pid is None else pid
        bridge = KBridge(self.sim, self.ssnal, self.opteron, pid)
        proc = HostProcess(
            self.sim, self.node_id, pid, bridge, self.kernel.memory, limits=limits
        )
        self.kernel.register_user(pid, proc.ni)
        self.processes[pid] = proc
        return proc
