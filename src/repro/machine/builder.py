"""Machine builders: from a two-node benchmark pair to Red Storm.

:class:`Machine` owns the simulator, the fabric and the nodes.  Nodes are
created lazily (`node(i)`), so a Red Storm-shaped topology (10k+ slots)
costs nothing until nodes are actually booted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..fw.firmware import ExhaustionPolicy
from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..net.fabric import Fabric
from ..net.topology import Torus3D
from ..oskern.kernel import OSType
from ..sim import Simulator
from .node import Node

__all__ = [
    "Machine",
    "PartitionPlan",
    "build_pair",
    "build_redstorm",
    "partition_nodes",
]


@dataclass(frozen=True)
class PartitionPlan:
    """A slab decomposition of a :class:`Torus3D` for parallel DES.

    Partitions are contiguous half-open coordinate ranges along one
    axis; every partition is a union of full coordinate planes, so the
    minimum cross-partition route cost depends only on the axis ranges
    (see :func:`repro.net.routing.slab_cut_hops`).  ``nodes[i]`` lists
    the node ids owned by partition ``i``; every node appears in exactly
    one partition.
    """

    axis: int
    ranges: tuple[tuple[int, int], ...]
    nodes: tuple[tuple[int, ...], ...]

    @property
    def nparts(self) -> int:
        return len(self.ranges)

    def owner_of(self, topo: Torus3D, node: int) -> int:
        """Partition index owning ``node`` (O(nparts))."""
        c = topo.coord(node)
        v = (c.x, c.y, c.z)[self.axis]
        for idx, (lo, hi) in enumerate(self.ranges):
            if lo <= v < hi:
                return idx
        raise ValueError(f"node {node} outside every slab range")


def partition_nodes(
    topo: Torus3D, nparts: int, axis: Optional[int] = None
) -> PartitionPlan:
    """Split a topology into ``nparts`` balanced slabs for parallel DES.

    The slab axis defaults to the largest dimension (most room to cut).
    Slab extents differ by at most one plane.  ``nparts`` is clamped to
    the axis extent — a partition must own at least one full plane, or
    its cross-partition lookahead would be undefined.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if axis is None:
        axis = max(range(3), key=lambda a: topo.dims[a])
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    extent = topo.dims[axis]
    eff = min(nparts, extent)
    ranges = tuple(((extent * k) // eff, (extent * (k + 1)) // eff) for k in range(eff))
    buckets: list[list[int]] = [[] for _ in range(eff)]
    # node ids are x-fastest; walking them in order keeps each bucket
    # sorted without a per-bucket sort afterwards
    for node in range(topo.num_nodes):
        c = topo.coord(node)
        v = (c.x, c.y, c.z)[axis]
        for idx, (lo, hi) in enumerate(ranges):
            if lo <= v < hi:
                buckets[idx].append(node)
                break
    return PartitionPlan(
        axis=axis,
        ranges=ranges,
        nodes=tuple(tuple(b) for b in buckets),
    )


class Machine:
    """A simulated XT3 installation."""

    def __init__(
        self,
        topology: Torus3D,
        config: SeaStarConfig = DEFAULT_CONFIG,
        *,
        os_type: OSType = OSType.CATAMOUNT,
        policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
        seed: int = 0,
        trace: bool = False,
        metrics: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        bulk_events: Optional[bool] = None,
    ):
        # bulk_events=None defers to BULK_EVENTS_DEFAULT; the DMA hot
        # path additionally falls back to chunk-exact automatically when
        # a tracer, metrics registry, or fault injector is attached
        self.sim = Simulator(bulk_events=bulk_events)
        self.config = config
        self.topology = topology
        self.os_type = os_type
        self.policy = policy
        self.fault_plan = fault_plan
        # a no-op plan means *no injector*: the fabric then runs the
        # exact same code path (and event schedule) as a plain machine
        self.injector: FaultInjector | None = (
            FaultInjector(self.sim, fault_plan)
            if fault_plan is not None and not fault_plan.is_noop()
            else None
        )
        self.fabric = Fabric(
            self.sim, topology, config, seed=seed, injector=self.injector
        )
        self.nodes: dict[int, Node] = {}
        from ..sim import SpanTracer

        self.tracer: SpanTracer | None = SpanTracer(self.sim) if trace else None
        # the fabric's pipes consult the machine tracer for wire spans;
        # None (the default) leaves the hot path untouched
        self.fabric.tracer = self.tracer
        from ..metrics import MetricsRegistry

        self.metrics: MetricsRegistry | None = (
            MetricsRegistry(self.sim) if metrics else None
        )
        # pipes register wire instruments lazily on first send, so the
        # registry must be attached before any traffic flows
        self.fabric.metrics = self.metrics

    def node(self, node_id: int, *, os_type: Optional[OSType] = None) -> Node:
        """Boot (or fetch) the node at ``node_id``."""
        existing = self.nodes.get(node_id)
        if existing is not None:
            return existing
        node = Node(
            self.sim,
            self.config,
            self.fabric,
            node_id,
            os_type=os_type or self.os_type,
            policy=self.policy,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.nodes[node_id] = node
        if self.injector is not None:
            self.injector.attach_node(node.firmware)
        return node

    def run(self, until: Optional[int] = None) -> int:
        """Advance the simulation."""
        return self.sim.run(until=until)

    @property
    def now(self) -> int:
        """Current simulation time (ps)."""
        return self.sim.now


def build_pair(
    config: SeaStarConfig = DEFAULT_CONFIG,
    *,
    os_type: OSType = OSType.CATAMOUNT,
    policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
    hops: int = 1,
    trace: bool = False,
    metrics: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    bulk_events: Optional[bool] = None,
) -> tuple[Machine, Node, Node]:
    """Two nodes ``hops`` apart on a line — the NetPIPE configuration.

    ``hops=1`` is the nearest-neighbor placement of the paper's tests.
    """
    if hops < 0:
        raise ValueError("hops must be >= 0")
    length = max(2, hops + 1)
    topo = Torus3D((length, 1, 1), wrap=(False, False, False))
    machine = Machine(
        topo,
        config,
        os_type=os_type,
        policy=policy,
        trace=trace,
        metrics=metrics,
        fault_plan=fault_plan,
        bulk_events=bulk_events,
    )
    a = machine.node(0)
    b = machine.node(hops if hops > 0 else 1)
    return machine, a, b


def build_redstorm(
    dims: tuple[int, int, int] = (27, 16, 24),
    config: SeaStarConfig = DEFAULT_CONFIG,
    **kw,
) -> Machine:
    """A Red Storm-shaped machine: mesh in x/y, torus only in z
    (section 5.1), 27x16x24 = 10,368 node slots by default."""
    topo = Torus3D(dims, wrap=(False, False, True))
    return Machine(topo, config, **kw)
