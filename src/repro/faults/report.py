"""Recovery reporting for fault-injection runs.

Aggregates the injector's score (what was done *to* the machine) with
the per-node firmware recovery counters (what the machine did about it)
into one dict / printable report.  ``repro chaos`` prints this after its
sweep; :func:`repro.analysis.report.machine_report` embeds the same data
when a machine carries an injector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim import Counters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.builder import Machine

__all__ = ["fault_report", "format_fault_report"]

#: firmware counters that describe detection/recovery work
_RECOVERY_KEYS = (
    "crc_errors",
    "transport_losses",
    "naks_sent",
    "naks_received",
    "sacks_sent",
    "sacks_received",
    "retransmits",
    "timeout_retransmits",
    "retransmits_suppressed",
    "backoff_time_ps",
    "gobackn_failures",
    "gobackn_recovered",
    "duplicates",
    "control_drops",
    "fw_crashes",
    "fw_restarts",
    "peer_deaths_detected",
    "peer_death_failures",
    "dead_peer_sends",
)


def fault_report(machine: "Machine") -> dict[str, Any]:
    """Structured injected-vs-recovered summary for one machine."""
    injector = getattr(machine, "injector", None)
    injected = dict(injector.counters.snapshot()) if injector is not None else {}

    recovery = Counters()
    for node in machine.nodes.values():
        fw_counters = node.firmware.counters
        for key in _RECOVERY_KEYS:
            value = fw_counters[key]
            if value:
                recovery.incr(key, value)

    link = machine.fabric.link
    return {
        "plan": repr(injector.plan) if injector is not None else None,
        "injected": injected,
        "recovery": dict(recovery.snapshot()),
        "link": link.snapshot(),
    }


def format_fault_report(machine: "Machine") -> str:
    """Human-readable recovery report (the tail of ``repro chaos``)."""
    data = fault_report(machine)
    lines = ["=== fault / recovery report ==="]
    if data["plan"] is None:
        lines.append("no fault injector attached (clean run)")
    else:
        lines.append(f"plan: {data['plan']}")
        lines.append("injected:")
        if data["injected"]:
            for key, value in sorted(data["injected"].items()):
                lines.append(f"  {key:28s} {value}")
        else:
            lines.append("  (nothing fired)")
    lines.append("recovery:")
    if data["recovery"]:
        for key, value in sorted(data["recovery"].items()):
            lines.append(f"  {key:28s} {value}")
    else:
        lines.append("  (no recovery work needed)")
    link = data["link"]
    lines.append(
        f"link: {link['packets_carried']} packets carried, "
        f"{link['retries']} link-level retries"
    )
    return "\n".join(lines)
