"""Seeded chaos campaigns: fault-plan fleets with recovery SLOs.

A campaign generates ``N`` fault plans across the fault classes, runs
each plan as an isolated two-node DES shard, verifies per-run recovery
invariants, and aggregates the results into one SLO report (recovery
time distributions, MTTR per fault class, invariant pass rates) exported
through the ``repro-metrics/v1`` JSON path.

Everything here is deterministic: plan generation is a pure function of
``(seed, runs, classes)``, and every shard is an independent seeded DES
run — so a campaign executed across a crash-tolerant worker pool is
byte-identical to the same campaign executed serially.

Fault classes and how each run is judged:

* ``drop`` / ``corrupt`` / ``flap`` / ``squeeze`` / ``fw-crash`` — the
  *recoverable* classes: the patterned payload-integrity exchange of
  :func:`repro.faults.verify.verify_payload_integrity` must deliver
  every byte intact, and the run must finish within a computed recovery
  bound of the clean-run baseline.
* ``kill`` / ``node-death`` — the *terminal* classes: a one-way acked
  exchange counts per-message resolution at the initiator.  Every
  message must resolve exactly once — either a Portals ``ACK`` event
  (delivered) or a ``SEND_END`` flagged ``PTL_NI_FAIL`` (failed) —
  within the retry/detection bound.  ``node-death`` additionally
  requires the surviving firmware's heartbeat monitor to have declared
  the dead peer within its detection bound.

Portals semantics note: ``PTL_NI_FAIL`` means *not known to be
delivered*.  A message whose payload arrived but whose ack died with the
link may legitimately be reported failed; the invariant is exactly one
terminal verdict per message at the initiator, not initiator/target
agreement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..sim.units import us
from .plan import FaultPlan, FirmwareCrash, LinkOutage, NodeDeath, OutageMode

__all__ = [
    "CampaignConfig",
    "CampaignRunSpec",
    "FAULT_CLASSES",
    "campaign_document",
    "fault_classes",
    "format_campaign_report",
    "generate_specs",
    "run_campaign",
    "run_one_plan",
    "spec_for_plan",
]

#: every fault class a campaign can draw from
FAULT_CLASSES = (
    "drop",
    "corrupt",
    "flap",
    "kill",
    "squeeze",
    "node-death",
    "fw-crash",
)

#: payload sizes for the integrity exchange (recoverable classes)
INTEGRITY_SIZES = (1, 1024, 8192, 40_000)

#: one-way acked exchange shape (terminal classes)
DEATH_MESSAGES = 6
DEATH_MSG_BYTES = 2048

#: retry budget for terminal-class runs: low enough that a dead link
#: exhausts in simulated milliseconds, high enough that transient loss
#: in the same run still recovers
DEATH_MAX_RETRIES = 6


def fault_classes() -> List[str]:
    """Class names accepted by ``repro chaos campaign --classes``."""
    return list(FAULT_CLASSES)


@dataclass(frozen=True)
class CampaignRunSpec:
    """One campaign run, fully described (picklable; workers get this)."""

    run_id: str
    fault_class: str
    plan: FaultPlan
    fail_at: Optional[int] = None
    """Fault onset (ps) for the terminal classes; None otherwise."""

    baseline_ps: Optional[int] = None
    """Clean-run duration of the integrity exchange (recoverable
    classes); recovery time is measured against this."""

    max_retries: int = DEATH_MAX_RETRIES


@dataclass(frozen=True)
class CampaignConfig:
    """What ``repro chaos campaign`` turns its flags into."""

    runs: int = 21
    classes: tuple = FAULT_CLASSES
    seed: int = 0
    workers: int = 1
    shard_timeout_s: float = 300.0
    max_retries: int = 2
    """Worker-pool retry budget per shard (crash/hang recovery), not the
    go-back-N retry budget."""

    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("campaign needs at least one run")
        unknown = [c for c in self.classes if c not in FAULT_CLASSES]
        if unknown:
            raise ValueError(
                f"unknown fault class(es) {unknown}; choose from "
                f"{', '.join(FAULT_CLASSES)}"
            )
        if not self.classes:
            raise ValueError("campaign needs at least one fault class")
        if not isinstance(self.classes, tuple):
            object.__setattr__(self, "classes", tuple(self.classes))


# ---------------------------------------------------------------------------
# Plan generation
# ---------------------------------------------------------------------------


def _make_plan(cls: str, rng: random.Random):
    """One randomized-but-seeded plan of class ``cls``.

    Returns ``(plan, fail_at)`` — ``fail_at`` is the fault onset for the
    terminal classes.
    """
    seed = rng.randrange(1 << 31)
    if cls == "drop":
        return (
            FaultPlan(
                seed=seed,
                drop_prob=rng.uniform(0.005, 0.04),
                corrupt_prob=rng.uniform(0.0, 0.004),
            ),
            None,
        )
    if cls == "corrupt":
        return FaultPlan(seed=seed, corrupt_prob=rng.uniform(0.005, 0.03)), None
    if cls == "flap":
        windows = []
        start = us(rng.randrange(100, 300))
        for _ in range(rng.randrange(1, 4)):
            down = us(rng.randrange(50, 150))
            mode = OutageMode.STALL if rng.random() < 0.5 else OutageMode.DROP
            windows.append(LinkOutage(start=start, end=start + down, mode=mode))
            start += down + us(rng.randrange(200, 400))
        return FaultPlan(seed=seed, outages=tuple(windows)), None
    if cls == "kill":
        at = us(rng.randrange(200, 800))
        return (
            FaultPlan(
                seed=seed,
                outages=(LinkOutage(start=at, end=None, mode=OutageMode.DROP),),
                # a dead link looks like a dead peer: arm the monitor so
                # a Portals ACK lost to the kill still yields a verdict
                peer_timeout=us(400),
            ),
            at,
        )
    if cls == "squeeze":
        return (
            FaultPlan(
                seed=seed,
                drop_prob=0.01,
                control_pool_steal=rng.randrange(40, 61),
                steal_start=us(100),
                steal_end=us(rng.randrange(1000, 2500)),
            ),
            None,
        )
    if cls == "node-death":
        at = us(rng.randrange(200, 800))
        return FaultPlan(seed=seed, node_deaths=(NodeDeath(node=1, at=at),)), at
    if cls == "fw-crash":
        at = us(rng.randrange(200, 600))
        return (
            FaultPlan(
                seed=seed,
                fw_crashes=(
                    FirmwareCrash(
                        node=1,
                        at=at,
                        restart_after=us(rng.randrange(50, 200)),
                    ),
                ),
            ),
            None,
        )
    raise ValueError(f"unknown fault class {cls!r}")


def generate_specs(config: CampaignConfig) -> List[CampaignRunSpec]:
    """The campaign's run list — a pure function of the config.

    Classes are assigned round-robin (coverage before volume); each
    run's knobs come from its own derived RNG so inserting a run never
    reshuffles the others.
    """
    specs: List[CampaignRunSpec] = []
    for i in range(config.runs):
        cls = config.classes[i % len(config.classes)]
        rng = random.Random((config.seed << 20) ^ (i * 0x9E3779B1 & 0x7FFFFFFF))
        plan, fail_at = _make_plan(cls, rng)
        specs.append(
            CampaignRunSpec(
                run_id=f"run{i:03d}-{cls}",
                fault_class=cls,
                plan=plan,
                fail_at=fail_at,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Per-run execution + invariants
# ---------------------------------------------------------------------------


def _recovery_bound(plan: FaultPlan, cfg: SeaStarConfig) -> int:
    """Generous upper bound (ps) on extra time a recoverable run may
    spend over the clean baseline.  Deliberately loose — the SLO
    distributions carry the information; the bound guards runaways."""
    bound = us(2000)
    for outage in plan.outages:
        if outage.end is not None:
            # traffic parked (STALL) or lost (DROP) for the window, plus
            # the backoff that stacks on top of it
            bound += 4 * (outage.end - outage.start)
    for crash in plan.fw_crashes:
        if crash.restart_after is not None:
            bound += 4 * crash.restart_after
    # retry/backoff amplification for probabilistic loss: dozens of
    # retransmit rounds at the full backoff cap
    bound += 40 * max(cfg.gobackn_backoff_max, cfg.retransmit_timeout)
    return bound


def _terminal_bounds(spec: CampaignRunSpec, cfg: SeaStarConfig):
    """(mttr_bound, detect_bound) for the terminal classes (ps)."""
    interval = max(1, (spec.fail_at or us(500)) // 2)
    timeout = spec.plan.effective_peer_timeout()
    if spec.fault_class == "node-death" and timeout is not None:
        detect_bound = interval + timeout + timeout // 4 + us(500)
        mttr_bound = DEATH_MESSAGES * interval + detect_bound + us(2000)
        return mttr_bound, detect_bound
    # kill: resolution is by retry exhaustion or the peer monitor's
    # link-death sweep, whichever lands first; no detection SLO
    per_attempt = cfg.retransmit_timeout + cfg.gobackn_backoff_max + us(100)
    mttr_bound = (
        (spec.max_retries + 3) * per_attempt
        + DEATH_MESSAGES * interval
        + us(2000)
    )
    return mttr_bound, None


def _run_integrity(spec: CampaignRunSpec) -> Dict[str, Any]:
    """A recoverable-class run: patterned exchange + byte comparison."""
    from .verify import verify_payload_integrity

    cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
    check = verify_payload_integrity(
        spec.plan, list(INTEGRITY_SIZES), config=cfg
    )
    machine = check["machine"]
    recovery_ps: Optional[int] = None
    if spec.baseline_ps is not None:
        recovery_ps = max(0, machine.now - spec.baseline_ps)
    bound = _recovery_bound(spec.plan, cfg)
    invariants = {
        "payload_integrity": bool(check["ok"]),
        "exactly_once": check["checked"] == len(INTEGRITY_SIZES)
        and not check["mismatches"],
        "bounded_recovery": recovery_ps is None or recovery_ps <= bound,
    }
    return {
        "run_id": spec.run_id,
        "class": spec.fault_class,
        "workload": "integrity-exchange",
        "invariants": invariants,
        "ok": all(invariants.values()),
        "recovery_ps": recovery_ps,
        "mttr_ps": recovery_ps,
        "detect_ps": None,
        "recovery_bound_ps": bound,
        "counters": dict(check["report"]["recovery"]),
        "injected": dict(check["report"]["injected"]),
    }


def _run_death_exchange(spec: CampaignRunSpec) -> Dict[str, Any]:
    """A terminal-class run: one-way acked puts, exactly-once verdicts."""
    from ..fw.firmware import ExhaustionPolicy
    from ..machine.builder import build_pair
    from ..portals import (
        PTL_ACK_REQ,
        PTL_MD_THRESH_INF,
        PTL_NID_ANY,
        PTL_PID_ANY,
        EventKind,
        MDOptions,
        NIFailType,
        ProcessId,
    )
    from .report import fault_report

    portal, bits = 4, 0x5151
    any_id = ProcessId(PTL_NID_ANY, PTL_PID_ANY)
    cfg = DEFAULT_CONFIG.replace(
        reliable_transport=True, gobackn_max_retries=spec.max_retries
    )
    machine, na, nb = build_pair(
        cfg, policy=ExhaustionPolicy.GO_BACK_N, fault_plan=spec.plan
    )
    pa, pb = na.create_process(), nb.create_process()
    assert spec.fail_at is not None
    interval = max(1, spec.fail_at // 2)
    n = DEATH_MESSAGES
    state: Dict[str, Any] = {
        "acked": 0,
        "failed": 0,
        "violations": 0,
        "resolved_at": None,
        "sender_done": False,
    }

    def receiver(proc):
        api = proc.api
        eq = yield from api.PtlEQAlloc(256)
        me = yield from api.PtlMEAttach(portal, any_id, bits)
        buf = proc.alloc(DEATH_MSG_BYTES)
        yield from api.PtlMDAttach(
            me,
            buf,
            options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
            eq=eq,
            threshold=PTL_MD_THRESH_INF,
        )
        # the target never "finishes": if its node dies mid-run the
        # process parks on an event that never fires and the simulation
        # still drains (PR 2 defusal semantics)
        while True:
            yield from api.PtlEQWait(eq)

    def sender(proc, target):
        api = proc.api
        eq = yield from api.PtlEQAlloc(256)
        buf = proc.alloc(DEATH_MSG_BYTES)
        buf[:] = 0xA5
        terminal = [0] * n
        for i in range(n):
            md = yield from api.PtlMDBind(
                buf, eq=eq, threshold=PTL_MD_THRESH_INF, user_ptr=i
            )
            yield from api.PtlPut(
                md,
                target,
                portal,
                bits,
                length=DEATH_MSG_BYTES,
                ack_req=PTL_ACK_REQ,
            )
            if i < n - 1:
                yield interval
        while any(t == 0 for t in terminal):
            ev = yield from api.PtlEQWait(eq)
            if ev.kind is EventKind.ACK:
                terminal[ev.md_user_ptr] += 1
                state["acked"] += 1
            elif (
                ev.kind is EventKind.SEND_END
                and ev.ni_fail_type is NIFailType.FAIL
            ):
                terminal[ev.md_user_ptr] += 1
                state["failed"] += 1
        state["violations"] = sum(1 for t in terminal if t > 1)
        state["resolved_at"] = machine.now
        state["sender_done"] = True

    pb.spawn(receiver)
    pa.spawn(sender, pb.id)
    machine.run()

    mttr_bound, detect_bound = _terminal_bounds(spec, cfg)
    mttr_ps: Optional[int] = None
    if state["resolved_at"] is not None:
        mttr_ps = max(0, state["resolved_at"] - spec.fail_at)
    detect_ps: Optional[int] = None
    if spec.fault_class == "node-death":
        declared = na.firmware.peer_death_times.get(1)
        if declared is not None:
            detect_ps = max(0, declared - spec.fail_at)
    invariants = {
        "exactly_once": bool(state["sender_done"])
        and state["violations"] == 0
        and state["acked"] + state["failed"] == n,
        "bounded_recovery": mttr_ps is not None and mttr_ps <= mttr_bound,
    }
    if spec.fault_class == "node-death":
        invariants["death_detected"] = (
            detect_ps is not None
            and detect_bound is not None
            and detect_ps <= detect_bound
        )
    report = fault_report(machine)
    return {
        "run_id": spec.run_id,
        "class": spec.fault_class,
        "workload": "death-exchange",
        "invariants": invariants,
        "ok": all(invariants.values()),
        "recovery_ps": mttr_ps,
        "mttr_ps": mttr_ps,
        "detect_ps": detect_ps,
        "recovery_bound_ps": mttr_bound,
        "delivered": state["acked"],
        "failed": state["failed"],
        "counters": dict(report["recovery"]),
        "injected": dict(report["injected"]),
    }


def run_one_plan(spec: CampaignRunSpec) -> Dict[str, Any]:
    """Execute one campaign run and judge its invariants.

    Module-level and picklable-in/picklable-out, so the self-healing
    worker pool can run it in a spawned subprocess.
    """
    if spec.fault_class in ("kill", "node-death"):
        return _run_death_exchange(spec)
    return _run_integrity(spec)


def spec_for_plan(
    name: str, plan: FaultPlan, *, baseline_ps: Optional[int] = None
) -> CampaignRunSpec:
    """A run spec that judges one arbitrary (e.g. named) plan.

    Terminal plans — a node death, or a permanent DROP outage — get the
    exactly-once death exchange; everything else gets the integrity
    exchange.  This is what backs ``repro chaos --json``: a single-plan
    run shares the campaign report schema.
    """
    if plan.node_deaths:
        cls = "node-death"
        fail_at: Optional[int] = min(d.at for d in plan.node_deaths)
    else:
        permanent = [
            o
            for o in plan.outages
            if o.end is None and o.mode is OutageMode.DROP
        ]
        if permanent:
            cls = "kill"
            fail_at = min(o.start for o in permanent)
        else:
            cls = name
            fail_at = None
    return CampaignRunSpec(
        run_id=f"plan-{name}",
        fault_class=cls,
        plan=plan,
        fail_at=fail_at,
        baseline_ps=baseline_ps,
    )


def clean_baseline_ps() -> int:
    """Duration (ps) of the integrity exchange with no faults at all."""
    from .verify import verify_payload_integrity

    cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
    check = verify_payload_integrity(
        FaultPlan.none(), list(INTEGRITY_SIZES), config=cfg
    )
    return check["machine"].now


# ---------------------------------------------------------------------------
# Aggregation: the SLO report
# ---------------------------------------------------------------------------


def _distribution(values: Sequence[int]) -> Optional[Dict[str, int]]:
    """min/p50/p90/max/mean of an integer sample (deterministic)."""
    if not values:
        return None
    ordered = sorted(values)

    def pct(p: float) -> int:
        idx = min(len(ordered) - 1, int(p * len(ordered)))
        return ordered[idx]

    return {
        "count": len(ordered),
        "min": ordered[0],
        "p50": pct(0.50),
        "p90": pct(0.90),
        "max": ordered[-1],
        "mean": sum(ordered) // len(ordered),
    }


def campaign_document(
    runs: List[Dict[str, Any]],
    *,
    meta: Optional[Dict[str, Any]] = None,
    pool_counters: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Fold per-run records into the ``repro-metrics/v1`` SLO report.

    The document shape follows the metrics exporter: a ``schema`` tag,
    optional ``meta``, aggregated ``counters`` (so the Prometheus
    renderer works on it unchanged), and the campaign-specific
    ``campaign`` section with per-class SLOs.  ``pool_counters`` merges
    the executor's monotonic ``pool.*`` lifecycle counters (spawns,
    crashes, hang-kills, retries, ...) into ``counters``, so a campaign
    that *survived* injected worker kills exports the evidence — the
    chaos-campaign CI job asserts on it.
    """
    from ..metrics.export import EXPORT_SCHEMA

    counters: Dict[str, int] = {}
    if pool_counters:
        counters.update(pool_counters)
    by_class: Dict[str, List[Dict[str, Any]]] = {}
    invariant_totals: Dict[str, Dict[str, int]] = {}
    for run in runs:
        by_class.setdefault(run["class"], []).append(run)
        for key, value in run.get("counters", {}).items():
            counters[f"recovery.{key}"] = counters.get(f"recovery.{key}", 0) + value
        for key, value in run.get("injected", {}).items():
            counters[f"injected.{key}"] = counters.get(f"injected.{key}", 0) + value
        for name, passed in run["invariants"].items():
            cell = invariant_totals.setdefault(name, {"pass": 0, "fail": 0})
            cell["pass" if passed else "fail"] += 1

    slo: Dict[str, Any] = {}
    for cls in sorted(by_class):
        rows = by_class[cls]
        passed = sum(1 for r in rows if r["ok"])
        slo[cls] = {
            "runs": len(rows),
            "passed": passed,
            "invariant_pass_rate": round(passed / len(rows), 4),
            "recovery_ps": _distribution(
                [r["recovery_ps"] for r in rows if r["recovery_ps"] is not None]
            ),
            "mttr_ps": _distribution(
                [r["mttr_ps"] for r in rows if r["mttr_ps"] is not None]
            ),
            "detect_ps": _distribution(
                [r["detect_ps"] for r in rows if r["detect_ps"] is not None]
            ),
        }

    doc: Dict[str, Any] = {
        "schema": EXPORT_SCHEMA,
        "meta": dict(meta or {}),
        "counters": counters,
        "campaign": {
            "total_runs": len(runs),
            "total_passed": sum(1 for r in runs if r["ok"]),
            "invariants": invariant_totals,
            "slo": slo,
            "runs": sorted(runs, key=lambda r: r["run_id"]),
        },
    }
    doc["meta"].setdefault("kind", "chaos-campaign")
    return doc


def format_campaign_report(doc: Dict[str, Any]) -> str:
    """Human-readable tail of ``repro chaos campaign``."""
    camp = doc["campaign"]
    meta = doc.get("meta", {})
    lines = ["=== chaos campaign report ==="]
    lines.append(
        f"runs: {camp['total_passed']}/{camp['total_runs']} passed "
        f"(seed={meta.get('seed', '?')}, workers={meta.get('workers', 1)})"
    )
    lines.append("invariants:")
    for name, cell in sorted(camp["invariants"].items()):
        verdict = "OK" if cell["fail"] == 0 else "FAIL"
        lines.append(
            f"  {name:<20} {cell['pass']:>4} pass {cell['fail']:>4} fail  {verdict}"
        )
    lines.append("per-class SLO (times in us):")
    header = (
        f"  {'class':<12} {'runs':>5} {'passed':>7} "
        f"{'mttr_p50':>9} {'mttr_p90':>9} {'mttr_max':>9} {'detect_p90':>11}"
    )
    lines.append(header)

    def as_us(dist: Optional[Dict[str, int]], key: str) -> str:
        if dist is None:
            return "-"
        return f"{dist[key] / 1e6:.1f}"

    for cls, row in sorted(camp["slo"].items()):
        mttr = row["mttr_ps"]
        lines.append(
            f"  {cls:<12} {row['runs']:>5} {row['passed']:>7} "
            f"{as_us(mttr, 'p50'):>9} {as_us(mttr, 'p90'):>9} "
            f"{as_us(mttr, 'max'):>9} {as_us(row['detect_ps'], 'p90'):>11}"
        )
    resumed = meta.get("resumed", [])
    if resumed:
        lines.append(f"resumed from checkpoint: {len(resumed)} run(s)")
    degradations = meta.get("degradations", [])
    if degradations:
        lines.append(f"executor degradations survived: {len(degradations)}")
        for event in degradations:
            lines.append(
                f"  {event.get('task', '?'):<16} {event.get('event', '?')}"
                f" (attempt {event.get('attempt', 0)})"
            )
    failing = [r["run_id"] for r in camp["runs"] if not r["ok"]]
    if failing:
        lines.append(f"failing runs: {', '.join(failing)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def _campaign_task(spec: CampaignRunSpec) -> Dict[str, Any]:
    """Worker-pool entry point (module-level for spawn pickling)."""
    return run_one_plan(spec)


def run_campaign(
    config: CampaignConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run a whole campaign; returns the SLO report document.

    ``workers > 1`` fans the runs across the crash/hang-tolerant pool of
    :mod:`repro.benchrunner.pool`; the shard set, and therefore the
    report's simulated content, is identical either way.  Pool
    degradation events (worker crashes, watchdog kills, retries) land
    under ``meta.degradations`` — informational, like the benchrunner's
    ``wallclock`` half.
    """
    from ..benchrunner.pool import PoolTask, run_pool

    specs = generate_specs(config)
    baseline = clean_baseline_ps()
    specs = [
        CampaignRunSpec(
            run_id=s.run_id,
            fault_class=s.fault_class,
            plan=s.plan,
            fail_at=s.fail_at,
            baseline_ps=baseline,
            max_retries=s.max_retries,
        )
        for s in specs
    ]
    tasks = [PoolTask(task_id=s.run_id, payload=s) for s in specs]
    outcome = run_pool(
        tasks,
        _campaign_task,
        workers=config.workers,
        timeout_s=config.shard_timeout_s,
        max_retries=config.max_retries,
        checkpoint_dir=config.checkpoint_dir,
        progress=progress,
    )
    if outcome.failed:
        detail = "; ".join(
            f"{task_id}: {err}" for task_id, err in sorted(outcome.failed.items())
        )
        raise RuntimeError(f"campaign runs failed permanently: {detail}")
    runs = [outcome.results[s.run_id] for s in specs]
    meta: Dict[str, Any] = {
        "kind": "chaos-campaign",
        "runs": config.runs,
        "classes": list(config.classes),
        "seed": config.seed,
        "baseline_ps": baseline,
        "workers": config.workers,
    }
    if outcome.degradations:
        meta["degradations"] = outcome.degradations
    if outcome.resumed:
        meta["resumed"] = sorted(outcome.resumed)
    return campaign_document(runs, meta=meta, pool_counters=outcome.counters())
