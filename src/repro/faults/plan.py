"""Declarative fault plans.

A :class:`FaultPlan` is an immutable, seeded description of *what goes
wrong* during a run: random chunk loss and corruption rates, link outage
windows (flaps or kills), scripted single-chunk faults for targeted
tests, and a firmware control-pool squeeze.  The plan is pure data — the
:class:`~repro.faults.injector.FaultInjector` interprets it against a
live fabric.

Determinism: everything an injector does is derived from ``plan.seed``
and the (deterministic) order in which chunks reach the wire, so the
same plan on the same workload reproduces the same faults, byte for
byte and picosecond for picosecond.

``FaultPlan.none()`` (and any plan whose knobs are all zero) is treated
as *no injector at all*: the fabric code paths are bit-identical to a
run that never heard of this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.units import US, us

__all__ = [
    "ChunkAction",
    "FaultPlan",
    "FirmwareCrash",
    "LinkOutage",
    "NodeDeath",
    "OutageMode",
    "ScriptedFault",
    "named_plan",
    "plan_names",
]

#: liveness threshold used when a plan schedules a permanent death but
#: does not set ``peer_timeout`` itself (see :class:`FaultPlan`)
DEFAULT_PEER_TIMEOUT = us(400)


class OutageMode(enum.Enum):
    """What a link outage does to traffic that hits it."""

    STALL = "stall"
    """Traffic waits: chunks queue at the serializer until the window
    ends (link-level retry keeps the wire busy but nothing gets through,
    e.g. a cable reseat)."""

    DROP = "drop"
    """Traffic fails fast: chunks entering the window are discarded and
    must be recovered end to end (a dead link)."""


class ChunkAction(enum.Enum):
    """Scripted per-chunk fates (targeted fault tests)."""

    DROP = "drop"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class LinkOutage:
    """One outage window on one (or every) directed link.

    ``src``/``dst`` of ``None`` match any node; ``end`` of ``None``
    means the link never comes back (a kill rather than a flap).
    Times are simulation picoseconds.
    """

    start: int
    end: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    mode: OutageMode = OutageMode.STALL

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("outage start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("outage end must be > start (or None for a kill)")

    def covers(self, src: int, dst: int, now: int) -> bool:
        """True if this outage affects the (src, dst) link at ``now``."""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if now < self.start:
            return False
        return self.end is None or now < self.end


@dataclass(frozen=True)
class ScriptedFault:
    """Deterministically fault the ``index``-th chunk to enter the wire.

    Indices count every chunk handed to ``Fabric.send`` machine-wide, in
    order, starting at 0 — control traffic included.  Used by targeted
    tests ("kill exactly chunk 3 of this transfer") where probabilistic
    injection would be awkward.
    """

    index: int
    action: ChunkAction = ChunkAction.DROP

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("scripted fault index must be >= 0")


@dataclass(frozen=True)
class NodeDeath:
    """Whole-node death: at ``at`` ps the node's firmware stops processing
    forever and every link touching the node goes dark (the injector
    synthesizes permanent DROP outages for both directions).  Surviving
    peers detect the silence via the heartbeat monitor and fail their
    outstanding traffic with ``PTL_NI_FAIL`` exactly once per message.
    """

    node: int
    at: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node death node id must be >= 0")
        if self.at < 0:
            raise ValueError("node death time must be >= 0")


@dataclass(frozen=True)
class FirmwareCrash:
    """Firmware crash on one node at ``at`` ps.

    ``restart_after`` of ``None`` means the PowerPC never comes back (the
    peer-visible effect matches :class:`NodeDeath` except the wire stays
    up, so traffic reaches the dead NIC and queues unprocessed).  A
    positive value models the NIC watchdog rebooting the firmware after
    that many ps: SRAM state survives, queued work drains after the
    reboot, and the sender-side retransmit machinery rides out the gap.
    """

    node: int
    at: int
    restart_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("firmware crash node id must be >= 0")
        if self.at < 0:
            raise ValueError("firmware crash time must be >= 0")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ValueError(
                "firmware crash restart_after must be > 0 (or None to "
                "stay down)"
            )

    @property
    def permanent(self) -> bool:
        """True when the firmware never restarts."""
        return self.restart_after is None


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong, declared up front."""

    seed: int = 0
    """Seed for the injector's private RNG (independent of every other
    RNG in the simulation)."""

    drop_prob: float = 0.0
    """Per-chunk probability of silent loss on the wire."""

    corrupt_prob: float = 0.0
    """Per-chunk probability of payload corruption.  The chunk still
    arrives but fails the end-to-end 32-bit CRC at the receiving NIC."""

    outages: tuple[LinkOutage, ...] = ()
    """Link flap/kill windows."""

    script: tuple[ScriptedFault, ...] = ()
    """Targeted single-chunk faults by global chunk index."""

    control_pool_steal: int = 0
    """Number of firmware internal (control) pendings to steal from every
    node, squeezing the ACK/REPLY/NAK pool — models a mailbox/control
    overrun without modelling SRAM bit-rot."""

    steal_start: int = 0
    """When (ps) the control-pool squeeze begins."""

    steal_end: Optional[int] = None
    """When the stolen pendings are returned; ``None`` holds them for the
    whole run."""

    node_deaths: tuple[NodeDeath, ...] = ()
    """Whole-node deaths: firmware halts forever + links go dark."""

    fw_crashes: tuple[FirmwareCrash, ...] = ()
    """Firmware crashes (with or without a watchdog restart)."""

    peer_timeout: Optional[int] = None
    """Liveness threshold (ps) for the firmware peer-death monitor: a
    sender holding unacked reliable-transport traffic declares a peer
    dead after this much SACK silence.  ``None`` uses
    :data:`DEFAULT_PEER_TIMEOUT` when the plan contains a permanent
    death, and leaves the monitor off otherwise."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("corrupt_prob must be in [0, 1]")
        if self.control_pool_steal < 0:
            raise ValueError("control_pool_steal must be >= 0")
        if self.steal_start < 0:
            raise ValueError("steal_start must be >= 0")
        if self.steal_end is not None and self.steal_end <= self.steal_start:
            raise ValueError("steal_end must be > steal_start (or None)")
        if self.peer_timeout is not None and self.peer_timeout <= 0:
            raise ValueError("peer_timeout must be > 0 (or None for default)")
        # normalize lists passed by callers into hashable tuples
        if not isinstance(self.outages, tuple):
            object.__setattr__(self, "outages", tuple(self.outages))
        if not isinstance(self.script, tuple):
            object.__setattr__(self, "script", tuple(self.script))
        if not isinstance(self.node_deaths, tuple):
            object.__setattr__(self, "node_deaths", tuple(self.node_deaths))
        if not isinstance(self.fw_crashes, tuple):
            object.__setattr__(self, "fw_crashes", tuple(self.fw_crashes))
        indices = [f.index for f in self.script]
        if len(indices) != len(set(indices)):
            raise ValueError(
                "script contains duplicate chunk indices; one fate per "
                "chunk only"
            )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: attaching it changes nothing, bit for bit."""
        return cls()

    def is_noop(self) -> bool:
        """True if this plan injects no fault of any kind."""
        return (
            self.drop_prob == 0.0
            and self.corrupt_prob == 0.0
            and not self.outages
            and not self.script
            and self.control_pool_steal == 0
            and not self.node_deaths
            and not self.fw_crashes
        )

    def permanent_death_nodes(self) -> frozenset[int]:
        """Nodes that stop processing forever under this plan."""
        dead = {d.node for d in self.node_deaths}
        dead.update(c.node for c in self.fw_crashes if c.permanent)
        return frozenset(dead)

    def effective_peer_timeout(self) -> Optional[int]:
        """The monitor threshold the injector should arm, if any."""
        if self.peer_timeout is not None:
            return self.peer_timeout
        if self.permanent_death_nodes():
            return DEFAULT_PEER_TIMEOUT
        return None


def _flap_windows(
    *, first: int, up: int, down: int, count: int, mode: OutageMode
) -> tuple[LinkOutage, ...]:
    """``count`` outages of ``down`` ps, ``up`` ps apart, from ``first``."""
    windows = []
    start = first
    for _ in range(count):
        windows.append(LinkOutage(start=start, end=start + down, mode=mode))
        start += down + up
    return tuple(windows)


#: Named plans for the ``repro chaos`` CLI and the docs.  Factories (not
#: instances) so each lookup can re-seed without mutating shared state.
_NAMED_PLANS: dict[str, Callable[[int], FaultPlan]] = {
    "none": lambda seed: FaultPlan(seed=seed),
    # the acceptance plan: 1% chunk loss + 0.1% corruption
    "drop-1pct": lambda seed: FaultPlan(
        seed=seed, drop_prob=0.01, corrupt_prob=0.001
    ),
    "drop-5pct": lambda seed: FaultPlan(
        seed=seed, drop_prob=0.05, corrupt_prob=0.005
    ),
    "corrupt-1pct": lambda seed: FaultPlan(seed=seed, corrupt_prob=0.01),
    # link flaps: 100 us dead / 400 us alive, five times, traffic stalls
    "flaky-link": lambda seed: FaultPlan(
        seed=seed,
        outages=_flap_windows(
            first=us(200),
            down=us(100),
            up=us(400),
            count=5,
            mode=OutageMode.STALL,
        ),
    ),
    # same cadence but the link eats traffic instead of stalling it
    "lossy-flap": lambda seed: FaultPlan(
        seed=seed,
        outages=_flap_windows(
            first=us(200),
            down=us(100),
            up=us(400),
            count=5,
            mode=OutageMode.DROP,
        ),
    ),
    # the link dies at t=1 ms and never returns: exercises retry
    # exhaustion, the PTL_NI_FAIL degrade path, and the peer monitor's
    # sweep of delivered-but-unACKed traffic
    "link-kill": lambda seed: FaultPlan(
        seed=seed,
        outages=(LinkOutage(start=1000 * US, end=None, mode=OutageMode.DROP),),
        peer_timeout=400 * US,
    ),
    # squeeze the firmware control pool to 4 pendings for 2 ms
    "control-overrun": lambda seed: FaultPlan(
        seed=seed,
        drop_prob=0.01,
        control_pool_steal=60,
        steal_start=us(100),
        steal_end=us(2100),
    ),
    # node 1 dies outright at t=1 ms: links dark, firmware halted; the
    # survivor's heartbeat monitor must fail outstanding traffic
    "node-death": lambda seed: FaultPlan(
        seed=seed, node_deaths=(NodeDeath(node=1, at=1000 * US),)
    ),
    # node 1's firmware crashes at t=500 us and the NIC watchdog
    # reboots it 150 us later; queued work drains, nothing is lost
    "fw-crash": lambda seed: FaultPlan(
        seed=seed,
        fw_crashes=(
            FirmwareCrash(node=1, at=us(500), restart_after=us(150)),
        ),
    ),
}


def plan_names() -> list[str]:
    """Names accepted by :func:`named_plan` (and ``repro chaos --plan``)."""
    return sorted(_NAMED_PLANS)


def named_plan(name: str, *, seed: int = 0) -> FaultPlan:
    """Look up a canned fault plan by name."""
    try:
        factory = _NAMED_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; choose from {', '.join(plan_names())}"
        ) from None
    return factory(seed)
