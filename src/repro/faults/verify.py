"""Payload-integrity verification under a fault plan.

Runs a fresh two-node machine with the reliable transport enabled and
ping-pongs a patterned PtlPut of every requested size from A to B: B
snapshots the received bytes and only then acks with a 1-byte put back,
so A never overwrites a payload the fabric may still need to deliver
(or retransmit) before B has recorded it.  This is how ``repro chaos``
proves "all payloads delivered intact" — NetPIPE endpoints reuse
buffers for timing, so integrity is checked in this dedicated exchange
instead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..fw.firmware import ExhaustionPolicy
from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..portals import (
    PTL_MD_THRESH_INF,
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
    ProcessId,
)
from .plan import FaultPlan
from .report import fault_report

__all__ = ["verify_payload_integrity"]

_PT = 4
_DATA_BITS = 0x1234
_ACK_BITS = 0x4321
_ANY = ProcessId(PTL_NID_ANY, PTL_PID_ANY)


def _pattern(n: int, seed: int) -> np.ndarray:
    return ((np.arange(seed, seed + n) * 131 + 17) % 256).astype(np.uint8)


def _make_target(api, proc, bits, size):
    eq = yield from api.PtlEQAlloc(256)
    me = yield from api.PtlMEAttach(_PT, _ANY, bits)
    buf = proc.alloc(size)
    yield from api.PtlMDAttach(
        me,
        buf,
        # MANAGE_REMOTE: every put lands at its initiator-supplied offset
        # (0), so each exchange reuses the buffer instead of walking it
        options=MDOptions.OP_PUT | MDOptions.TRUNCATE | MDOptions.MANAGE_REMOTE,
        eq=eq,
        threshold=PTL_MD_THRESH_INF,
    )
    return eq, buf


def _wait_kind(api, eq, kind):
    while True:
        ev = yield from api.PtlEQWait(eq)
        if ev.kind == kind:
            return ev


def verify_payload_integrity(
    plan: FaultPlan,
    sizes: list[int],
    *,
    config: SeaStarConfig = DEFAULT_CONFIG,
    policy: ExhaustionPolicy = ExhaustionPolicy.GO_BACK_N,
) -> dict[str, Any]:
    """Ping-pong one patterned put per size under ``plan``; compare bytes.

    Returns ``{"ok", "checked", "mismatches", "machine", "report"}``;
    ``mismatches`` lists ``(nbytes, first_bad_offset)`` pairs.
    """
    # imported here, not at module scope: machine.builder itself imports
    # repro.faults, and this module rides in via the package __init__
    from ..machine.builder import build_pair

    cfg = config.replace(reliable_transport=True)
    machine, na, nb = build_pair(cfg, policy=policy, fault_plan=plan)
    pa, pb = na.create_process(), nb.create_process()
    received: list[bytes] = []
    bufsize = max(max(sizes), 1)

    def receiver(proc):
        api = proc.api
        data_eq, data_buf = yield from _make_target(
            api, proc, _DATA_BITS, bufsize
        )
        ack_eq = yield from api.PtlEQAlloc(256)
        ack_buf = proc.alloc(1)
        ack_md = yield from api.PtlMDBind(
            ack_buf, eq=ack_eq, threshold=PTL_MD_THRESH_INF
        )
        for nbytes in sizes:
            yield from _wait_kind(api, data_eq, EventKind.PUT_END)
            received.append(bytes(data_buf[:bufsize][:nbytes]))
            yield from api.PtlPut(ack_md, pa.id, _PT, _ACK_BITS, length=1)
            yield from _wait_kind(api, ack_eq, EventKind.SEND_END)
        return True

    def sender(proc, target):
        api = proc.api
        ack_eq, _ack_buf = yield from _make_target(api, proc, _ACK_BITS, 1)
        data_eq = yield from api.PtlEQAlloc(256)
        data_buf = proc.alloc(bufsize)
        data_md = yield from api.PtlMDBind(
            data_buf, eq=data_eq, threshold=PTL_MD_THRESH_INF
        )
        for i, nbytes in enumerate(sizes):
            data_buf[:nbytes] = _pattern(nbytes, seed=i + 1)
            yield from api.PtlPut(data_md, target, _PT, _DATA_BITS, length=nbytes)
            yield from _wait_kind(api, data_eq, EventKind.SEND_END)
            yield from _wait_kind(api, ack_eq, EventKind.PUT_END)
        return True

    hr = pb.spawn(receiver)
    hs = pa.spawn(sender, pb.id)
    machine.run()
    for handle, who in ((hr, "receiver"), (hs, "sender")):
        if not handle.triggered:
            raise RuntimeError(f"integrity {who} did not finish (hang)")
        if not handle.ok:
            raise handle.value

    mismatches: list[tuple[int, int]] = []
    for i, nbytes in enumerate(sizes):
        want = bytes(_pattern(nbytes, seed=i + 1))
        got = received[i] if i < len(received) else b""
        if got != want:
            bad = next(
                (j for j, (a, b) in enumerate(zip(got, want)) if a != b),
                min(len(got), len(want)),
            )
            mismatches.append((nbytes, bad))

    return {
        "ok": not mismatches,
        "checked": len(sizes),
        "mismatches": mismatches,
        "machine": machine,
        "report": fault_report(machine),
    }
