"""The live fault injector: a FaultPlan interpreted against a fabric.

One injector serves a whole :class:`~repro.machine.builder.Machine`.  The
fabric consults it at the serialization stage of every pipe (drop /
corrupt / outage decisions) and switches its arrival stage into
store-and-forward reassembly so that a damaged message is refused as a
unit — the model of the SeaStar's end-to-end 32-bit CRC, which covers
the whole message and is checked at the receiving NIC before anything is
handed to Portals.

The injector's RNG is private and consumed in wire order, so a given
(plan, workload) pair replays identically.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..sim import Counters, Simulator
from .plan import ChunkAction, FaultPlan, LinkOutage, OutageMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fw.firmware import Firmware
    from ..net.packet import WireChunk

__all__ = ["FaultInjector"]

#: meta key set on a chunk whose payload the injector damaged; the
#: receiving pipe's reassembly stage treats it as an end-to-end CRC
#: mismatch for the whole message.
CRC_CORRUPT = "crc_corrupt"


class FaultInjector:
    """Applies a :class:`FaultPlan` to live traffic, keeping score."""

    def __init__(self, sim: Simulator, plan: FaultPlan):
        if plan.is_noop():
            # builders treat no-op plans as "no injector"; constructing
            # one anyway is almost certainly a wiring mistake
            raise ValueError("refusing to build an injector for a no-op plan")
        self.sim = sim
        self.plan = plan
        self.counters = Counters()
        self._rng = random.Random(plan.seed)
        self._chunk_index = 0
        self._script = {f.index: f.action for f in plan.script}
        self._stall_outages = tuple(
            o for o in plan.outages if o.mode is OutageMode.STALL
        )
        # a whole-node death takes every link touching the node dark, in
        # both directions, forever — synthesized as permanent DROP
        # outages so the fabric needs no death-specific code
        death_outages = []
        for death in plan.node_deaths:
            death_outages.append(
                LinkOutage(start=death.at, src=death.node, mode=OutageMode.DROP)
            )
            death_outages.append(
                LinkOutage(start=death.at, dst=death.node, mode=OutageMode.DROP)
            )
        self._drop_outages = (
            tuple(o for o in plan.outages if o.mode is OutageMode.DROP)
            + tuple(death_outages)
        )

    # ------------------------------------------------------------------
    # Fabric-facing hooks
    # ------------------------------------------------------------------
    def stall_until(self, src: int, dst: int) -> Optional[int]:
        """Latest end of any STALL outage covering (src, dst) right now.

        The pipe's serializer holds the chunk until that time (re-asking,
        since windows can chain).  ``None`` when the link is up.
        """
        now = self.sim.now
        until: Optional[int] = None
        for outage in self._stall_outages:
            if outage.covers(src, dst, now):
                if outage.end is None:
                    # a permanent STALL: park "forever" (the serializer
                    # re-checks each window, so just push far out)
                    return now + (1 << 62)
                if until is None or outage.end > until:
                    until = outage.end
        return until

    def chunk_fate(self, chunk: "WireChunk") -> bool:
        """Decide one chunk's fate at serialization time.

        Returns ``True`` to deliver the chunk (possibly after marking it
        corrupt) and ``False`` to drop it on the floor.  Exactly one RNG
        draw per probabilistic knob per chunk, in a fixed order, keeps
        replay deterministic.
        """
        index = self._chunk_index
        self._chunk_index += 1
        now = self.sim.now

        scripted = self._script.get(index)
        if scripted is ChunkAction.DROP:
            self.counters.incr("chunks_dropped")
            self.counters.incr("scripted_faults")
            return False
        if scripted is ChunkAction.CORRUPT:
            chunk.meta[CRC_CORRUPT] = True
            self.counters.incr("chunks_corrupted")
            self.counters.incr("scripted_faults")
            return True

        for outage in self._drop_outages:
            if outage.covers(chunk.src, chunk.dst, now):
                self.counters.incr("chunks_dropped")
                self.counters.incr("outage_drops")
                return False

        if self.plan.drop_prob > 0.0 and self._rng.random() < self.plan.drop_prob:
            self.counters.incr("chunks_dropped")
            self.counters.incr("random_drops")
            return False
        if (
            self.plan.corrupt_prob > 0.0
            and self._rng.random() < self.plan.corrupt_prob
        ):
            chunk.meta[CRC_CORRUPT] = True
            self.counters.incr("chunks_corrupted")
        return True

    def note_stall(self, duration: int) -> None:
        """Account time a serializer spent parked behind a STALL outage."""
        self.counters.incr("stall_time_ps", duration)

    # ------------------------------------------------------------------
    # Node-facing hooks
    # ------------------------------------------------------------------
    def attach_node(self, firmware: "Firmware") -> None:
        """Register a node's firmware with the injector.

        Starts the control-pool squeeze process (if the plan asks for
        one), schedules node deaths and firmware crashes landing on this
        node, and arms the peer-death monitor on *every* firmware when
        the plan contains a permanent death or sets ``peer_timeout``
        explicitly (a permanent link kill is indistinguishable from a
        dead peer to the survivor).
        """
        plan = self.plan
        if plan.control_pool_steal > 0:
            self.sim.process(
                self._squeeze_control_pool(firmware),
                name=f"fault:pool-squeeze:{firmware.node_id}",
            )
        for death in plan.node_deaths:
            if death.node == firmware.node_id:
                self.sim.process(
                    self._crash_firmware(
                        firmware, at=death.at, restart_after=None, death=True
                    ),
                    name=f"fault:node-death:{firmware.node_id}",
                )
        for crash in plan.fw_crashes:
            if crash.node == firmware.node_id:
                self.sim.process(
                    self._crash_firmware(
                        firmware,
                        at=crash.at,
                        restart_after=crash.restart_after,
                        death=False,
                    ),
                    name=f"fault:fw-crash:{firmware.node_id}",
                )
        timeout = plan.effective_peer_timeout()
        if timeout is not None and (
            plan.permanent_death_nodes() or plan.peer_timeout is not None
        ):
            # Armed for permanent deaths, and whenever the plan opts in
            # explicitly — e.g. a permanent link kill looks like a dead
            # peer from the survivor's side and needs the same sweep.
            firmware.enable_peer_monitor(timeout)

    def _crash_firmware(
        self,
        firmware: "Firmware",
        *,
        at: int,
        restart_after: Optional[int],
        death: bool,
    ):
        """Deliver one scheduled crash/death to a firmware."""
        if at > 0:
            yield at
        firmware.crash(restart_after)
        if death:
            self.counters.incr("node_deaths")
        elif restart_after is None:
            self.counters.incr("fw_kills")
        else:
            self.counters.incr("fw_crash_restarts")

    def _squeeze_control_pool(self, firmware: "Firmware"):
        """Steal internal pendings for a window, then hand them back.

        Models a control/mailbox overrun: while the pool is squeezed the
        firmware cannot source ACK/REPLY/NAK messages and its existing
        ``control_drops`` + retry machinery has to carry the load.
        """
        plan = self.plan
        if plan.steal_start > 0:
            yield plan.steal_start
        stolen = []
        for _ in range(plan.control_pool_steal):
            pending = firmware.internal_pool.alloc()
            if pending is None:
                break
            stolen.append(pending)
        self.counters.incr("control_pendings_stolen", len(stolen))
        if plan.steal_end is None or not stolen:
            return
        remaining = plan.steal_end - self.sim.now
        if remaining > 0:
            yield remaining
        for pending in stolen:
            firmware.internal_pool.free(pending)
        self.counters.incr("control_pendings_returned", len(stolen))
