"""Fault injection and reliability validation (``repro.faults``).

The paper's stack carries two reliability layers the rest of the
simulation only *accounts* for: the per-link 16-bit CRC with retry and
the end-to-end 32-bit CRC.  This package turns them into exercised code
paths: a seeded :class:`FaultPlan` describes chunk loss, corruption,
link flaps/kills and control-pool squeezes; a :class:`FaultInjector`
applies it to a live fabric; the firmware detects the damage (CRC NAKs,
sequence gaps), retransmits with exponential backoff, and degrades to a
``PTL_NI_FAIL`` event when retries exhaust.

Usage::

    from repro.faults import FaultPlan, named_plan
    from repro.machine.builder import build_pair
    from repro.fw.firmware import ExhaustionPolicy

    cfg = DEFAULT_CONFIG.replace(reliable_transport=True)
    machine, a, b = build_pair(
        cfg,
        policy=ExhaustionPolicy.GO_BACK_N,
        fault_plan=named_plan("drop-1pct"),
    )

With ``fault_plan=None`` (or ``FaultPlan.none()``) no injector is built
and every code path — and therefore every simulated timestamp — is
bit-identical to a machine that never imported this package.
"""

from .campaign import (
    CampaignConfig,
    campaign_document,
    fault_classes,
    format_campaign_report,
    run_campaign,
    run_one_plan,
    spec_for_plan,
)
from .injector import FaultInjector
from .plan import (
    ChunkAction,
    FaultPlan,
    FirmwareCrash,
    LinkOutage,
    NodeDeath,
    OutageMode,
    ScriptedFault,
    named_plan,
    plan_names,
)
from .report import fault_report, format_fault_report
from .verify import verify_payload_integrity

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FirmwareCrash",
    "LinkOutage",
    "NodeDeath",
    "OutageMode",
    "ChunkAction",
    "ScriptedFault",
    "named_plan",
    "plan_names",
    "fault_report",
    "format_fault_report",
    "verify_payload_integrity",
    "CampaignConfig",
    "campaign_document",
    "fault_classes",
    "format_campaign_report",
    "run_campaign",
    "run_one_plan",
    "spec_for_plan",
]
