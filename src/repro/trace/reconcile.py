"""Reconcile the measured span timeline against the analytic budget.

:func:`repro.analysis.breakdown.put_latency_breakdown` adds up the
one-way put path from config constants; :func:`~repro.trace.harness.
trace_put` measures the same path from the simulation's span timeline.
This module pins the two together: every analytic stage must be covered
by a measured span, and the covered spans must sum to the simulated
one-way latency within a small tolerance.  Any change that adds, drops
or moves a path stage now has to update both sides coherently — the
instrumentation cannot silently drift from the paper-facing arithmetic.

Span granularity is coarser than the analytic table (one kernel span
covers trap + send processing + mailbox write), so the mapping groups
breakdown stages per span.  Only the inline small-put path (``nbytes <=
config.small_msg_bytes``) is reconciled: beyond it the breakdown itself
approximates payload pipelining, so span-level equality is not expected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.breakdown import breakdown_by_name
from ..sim.monitor import Span
from ..sim.units import to_us
from .harness import TraceResult

__all__ = ["ReconcileRow", "ReconcileReport", "reconcile_put", "format_reconcile"]


#: (span name, side) -> analytic stages the span covers.  Side is which
#: node the span must live on: the sender ("src") or receiver ("dst").
#: Order follows the message down the path.
STAGE_MAP: list[tuple[str, str, tuple[str, ...]]] = [
    ("host.api_call", "src", ("API call (user space)",)),
    (
        "host.tx_kernel",
        "src",
        (
            "trap into Catamount QK",
            "kernel send processing",
            "mailbox command write (HT)",
        ),
    ),
    (
        "fw.tx_cmd",
        "src",
        (
            "poll + dispatch (tx cmd)",
            "tx command processing",
            "TX DMA program",
        ),
    ),
    ("txdma.fetch", "src", ("header fetch from host (HT read)",)),
    ("txdma.chunk", "src", ("header packet TX engine",)),
    ("wire.serialize", "src", ("header serialization",)),
    ("wire.flight", "src", ("router hops",)),
    ("rxdma.header", "dst", ("header packet RX engine",)),
    (
        "fw.rx",
        "dst",
        (
            "poll + dispatch (rx header)",
            "rx header processing",
            "event post to kernel EQ",
            "interrupt raise",
        ),
    ),
    ("host.interrupt", "dst", ("INTERRUPT",)),
    ("host.drain_event", "dst", ("drain event",)),
    ("host.match", "dst", ("Portals matching",)),
    ("host.deliver", "dst", ("inline deposit + PUT_END delivery",)),
    ("host.eq_poll", "dst", ("application EQ poll",)),
]


@dataclass(frozen=True)
class ReconcileRow:
    """One span matched against the analytic stages it covers."""

    span_name: str
    side: str
    stages: tuple[str, ...]
    analytic_ps: int
    measured_ps: int


@dataclass(frozen=True)
class ReconcileReport:
    """Outcome of reconciling one traced put."""

    rows: list[ReconcileRow]
    analytic_total_ps: int
    measured_total_ps: int
    latency_ps: int
    """Simulated one-way latency (the root ``message.put`` span)."""

    tolerance: float

    @property
    def measured_error(self) -> float:
        """Relative gap between covered spans and the one-way latency."""
        return abs(self.measured_total_ps - self.latency_ps) / self.latency_ps

    @property
    def ok(self) -> bool:
        return self.measured_error <= self.tolerance


def _select(spans: list[Span], name: str, node: int, msg_id: int | None) -> Span:
    """The span reconciliation uses for (``name``, ``node``).

    Spans carrying a message id must carry *the* message's id; spans
    without one (interrupt, EQ poll — shared infrastructure) match by
    name and node alone.  When several qualify the last is used: the put
    path touches each stage once, and where repetition is inherent (the
    receiver polls its EQ before and after the message) the final
    occurrence is the one the message's delivery paid for.
    """
    matching = [
        s
        for s in spans
        if s.name == name
        and s.node == node
        and s.t1 is not None
        and (s.msg_id is None or msg_id is None or s.msg_id == msg_id)
    ]
    if not matching:
        raise ValueError(f"no closed {name!r} span on node {node}")
    return matching[-1]


def reconcile_put(result: TraceResult, *, tolerance: float = 0.05) -> ReconcileReport:
    """Match ``result``'s spans against the analytic breakdown.

    Raises ValueError when a stage has no covering span (the coverage
    check) or when the put is too large for the inline path.
    """
    if result.nbytes > result.config.small_msg_bytes:
        raise ValueError(
            f"reconciliation covers the inline path only "
            f"(nbytes <= {result.config.small_msg_bytes}, got {result.nbytes})"
        )
    budget = breakdown_by_name(result.config, nbytes=result.nbytes, hops=result.hops)
    src = result.root.node
    dst_nodes = {s.node for s in result.spans if s.node != src and s.node >= 0}
    if len(dst_nodes) != 1:
        raise ValueError(f"expected one receiver node, saw {sorted(dst_nodes)}")
    (dst,) = dst_nodes
    msg_id = _put_msg_id(result.spans, src)

    rows: list[ReconcileRow] = []
    covered: set[str] = set()
    for span_name, side, stages in STAGE_MAP:
        node = src if side == "src" else dst
        span = _select(result.spans, span_name, node, msg_id)
        rows.append(
            ReconcileRow(
                span_name=span_name,
                side=side,
                stages=stages,
                analytic_ps=sum(budget[s] for s in stages),
                measured_ps=span.duration,
            )
        )
        covered.update(stages)
    uncovered = set(budget) - covered
    if uncovered:
        raise ValueError(f"analytic stages not covered by spans: {sorted(uncovered)}")
    return ReconcileReport(
        rows=rows,
        analytic_total_ps=sum(r.analytic_ps for r in rows),
        measured_total_ps=sum(r.measured_ps for r in rows),
        latency_ps=result.latency_ps,
        tolerance=tolerance,
    )


def _put_msg_id(spans: list[Span], src: int) -> int | None:
    """The wire message id of the traced put.

    The firmware backfills it onto the sender's ``host.tx_kernel`` span
    once the chunker assigns it; fall back to unfiltered matching if the
    backfill is somehow absent."""
    for span in spans:
        if span.name == "host.tx_kernel" and span.node == src:
            return span.msg_id
    return None


def format_reconcile(report: ReconcileReport) -> str:
    """Render the reconciliation as an aligned text table."""
    lines = [
        f"{'span':<18} {'side':<4} {'measured us':>12} {'analytic us':>12}",
        "-" * 50,
    ]
    for row in report.rows:
        lines.append(
            f"{row.span_name:<18} {row.side:<4}"
            f" {to_us(row.measured_ps):>12.3f} {to_us(row.analytic_ps):>12.3f}"
        )
    lines.append("-" * 50)
    lines.append(
        f"{'TOTAL':<18} {'':<4}"
        f" {to_us(report.measured_total_ps):>12.3f}"
        f" {to_us(report.analytic_total_ps):>12.3f}"
    )
    lines.append(
        f"simulated one-way latency {to_us(report.latency_ps):.3f} us; covered"
        f" spans within {report.measured_error:.1%}"
        f" (tolerance {report.tolerance:.0%}):"
        f" {'OK' if report.ok else 'MISMATCH'}"
    )
    return "\n".join(lines)
