"""Message-level tracing: span timelines for the put path.

Built on :class:`repro.sim.SpanTracer`, this package turns a traced run
into three artifacts:

* a Chrome trace-event JSON document (:mod:`~repro.trace.export`) that
  loads directly into Perfetto / ``chrome://tracing``, with one
  "process" per node and one "thread" per component (app, kernel, irq,
  fw, txdma, rxdma, wire, flight, eq);
* per-stage simulated-latency aggregates (:mod:`~repro.trace.aggregate`)
  — count / mean / p99 over every span of each name;
* a reconciliation (:mod:`~repro.trace.reconcile`) of the measured span
  timeline for one small put against the analytic budget of
  :func:`repro.analysis.breakdown.put_latency_breakdown`, the guard that
  keeps the instrumentation and the paper-facing arithmetic telling the
  same story.

:func:`~repro.trace.harness.trace_put` is the entry point: it builds a
traced two-node machine, runs a single NetPIPE-style put, and returns
the spans plus the measured one-way latency.
"""

from .aggregate import StageStats, aggregate_stages, format_stage_table
from .export import export_chrome_trace, validate_chrome_trace
from .harness import TraceResult, trace_put
from .reconcile import ReconcileReport, ReconcileRow, format_reconcile, reconcile_put

__all__ = [
    "StageStats",
    "aggregate_stages",
    "format_stage_table",
    "export_chrome_trace",
    "validate_chrome_trace",
    "TraceResult",
    "trace_put",
    "ReconcileReport",
    "ReconcileRow",
    "format_reconcile",
    "reconcile_put",
]
