"""Single-message traced runs.

:func:`trace_put` is the measurement the rest of the package consumes:
build a two-node pair with tracing on, run exactly one NetPIPE-style put
(same endpoint code as the benchmark harness, EVENT_START_DISABLE MDs,
per-round bound transmit MD), and wrap the put in a root ``message.put``
span opened at the sender's API call and closed when the receiver's
application observes PUT_END — the one-way latency, measured the way
NetPIPE defines it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..machine.builder import build_pair
from ..netpipe.modules import _PutEndpoint
from ..sim import Event as SimEvent
from ..sim.monitor import Span

__all__ = ["TraceResult", "trace_put"]


@dataclass
class TraceResult:
    """Everything a traced single-put run produced."""

    nbytes: int
    hops: int
    config: SeaStarConfig
    spans: list[Span]
    root: Span
    """The ``message.put`` span: sender API call to receiver delivery."""

    @property
    def latency_ps(self) -> int:
        """Measured one-way latency (the root span's duration)."""
        return self.root.duration


def trace_put(
    nbytes: int = 1,
    *,
    hops: int = 1,
    config: SeaStarConfig = DEFAULT_CONFIG,
) -> TraceResult:
    """Run one traced put of ``nbytes`` and return its span timeline.

    The sender holds its put until the receiver's setup (EQ, match
    entry, MD) is complete — a zero-cost simulation barrier, not a wire
    message, so the timeline contains exactly one message plus its
    completion traffic and no warm-up noise.
    """
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")
    machine, node_a, node_b = build_pair(config, hops=hops, trace=True)
    tracer = machine.tracer
    assert tracer is not None
    proc_a = node_a.create_process()
    proc_b = node_b.create_process()
    ep_a = _PutEndpoint(proc_a, proc_b.id, nbytes)
    ep_b = _PutEndpoint(proc_b, proc_a.id, nbytes)
    ready = SimEvent(machine.sim)
    root_holder: list[Optional[Span]] = [None]

    def sender():
        yield from ep_a.setup()
        yield from ep_a.begin_round(nbytes)
        yield ready
        root_holder[0] = tracer.begin(
            "message.put", node=node_a.node_id, component="message", nbytes=nbytes
        )
        yield from ep_a.send(nbytes)
        # retire the transmit pending (SEND_END) so teardown is legal
        yield from ep_a.end_round()

    def receiver():
        yield from ep_b.setup()
        yield from ep_b.begin_round(nbytes)
        ready.succeed()
        yield from ep_b.recv(nbytes)
        tracer.end(root_holder[0])
        yield from ep_b.end_round()

    pa = machine.sim.process(sender(), name="trace:sender")
    pb = machine.sim.process(receiver(), name="trace:receiver")
    machine.run()
    for side, proc in (("sender", pa), ("receiver", pb)):
        if not proc.triggered:
            raise RuntimeError(f"traced put deadlocked on the {side} side")
        if not proc.ok:
            raise proc.value
    root = root_holder[0]
    assert root is not None and root.t1 is not None
    return TraceResult(
        nbytes=nbytes, hops=hops, config=config, spans=list(tracer.spans), root=root
    )
