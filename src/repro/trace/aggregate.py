"""Per-stage latency aggregation over a span timeline.

Groups closed spans by name and reduces each group to count / mean /
p99 of the simulated durations — the measured counterpart of the
analytic budget table in :mod:`repro.analysis.breakdown`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..sim.monitor import Span
from ..sim.units import to_us

__all__ = ["StageStats", "aggregate_stages", "format_stage_table"]


@dataclass(frozen=True)
class StageStats:
    """Reduction of every span sharing one name."""

    name: str
    count: int
    total_ps: int
    mean_ps: float
    p99_ps: int

    @property
    def mean_us(self) -> float:
        return to_us(int(self.mean_ps))

    @property
    def p99_us(self) -> float:
        return to_us(self.p99_ps)


def _p99(durations: list[int]) -> int:
    """Nearest-rank 99th percentile (exact max for < 100 samples)."""
    ordered = sorted(durations)
    rank = math.ceil(0.99 * len(ordered))
    return ordered[rank - 1]


def aggregate_stages(spans: Iterable[Span]) -> list[StageStats]:
    """Reduce ``spans`` to per-name stats, ordered by first occurrence.

    Open spans are skipped: they have no duration yet.  Instants (zero
    duration) are real samples — an ``eq.post`` costs nothing but its
    count matters.
    """
    groups: dict[str, list[int]] = {}
    for span in spans:
        if span.t1 is None:
            continue
        groups.setdefault(span.name, []).append(span.duration)
    return [
        StageStats(
            name=name,
            count=len(durations),
            total_ps=sum(durations),
            mean_ps=sum(durations) / len(durations),
            p99_ps=_p99(durations),
        )
        for name, durations in groups.items()
    ]


def format_stage_table(stats: list[StageStats]) -> str:
    """Render the aggregate as an aligned text table."""
    lines = [
        f"{'stage':<18} {'count':>6} {'mean us':>9} {'p99 us':>9} {'total us':>9}",
        "-" * 55,
    ]
    for s in stats:
        lines.append(
            f"{s.name:<18} {s.count:>6} {s.mean_us:>9.3f} {s.p99_us:>9.3f}"
            f" {to_us(s.total_ps):>9.3f}"
        )
    return "\n".join(lines)
