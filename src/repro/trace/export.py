"""Chrome trace-event JSON export.

The output follows the Trace Event Format's "JSON object" flavor: a
``traceEvents`` list of complete (``ph: "X"``) and instant (``ph: "i"``)
events plus ``process_name`` / ``thread_name`` metadata.  Nodes map to
trace "processes" and components to "threads", so Perfetto renders the
two-node put path as parallel swimlanes.

Timestamps convert from simulated picoseconds to the format's
microseconds; at the simulator's integer-ps resolution the conversion is
exact, so exports are deterministic byte for byte.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from ..sim.monitor import Span

__all__ = ["export_chrome_trace", "validate_chrome_trace"]

#: fixed swimlane order; unknown components sort after these, by name
_COMPONENT_ORDER = [
    "message",
    "app",
    "kernel",
    "irq",
    "eq",
    "fw",
    "txdma",
    "rxdma",
    "ht",
    "wire",
    "flight",
]


def _tid_map(spans: Iterable[Span]) -> dict[tuple[int, str], int]:
    """Assign a stable integer thread id per (node, component)."""
    rank = {c: i for i, c in enumerate(_COMPONENT_ORDER)}
    keys = sorted(
        {(s.node, s.component) for s in spans},
        key=lambda k: (k[0], rank.get(k[1], len(rank)), k[1]),
    )
    return {key: tid for tid, key in enumerate(keys)}


def export_chrome_trace(spans: Iterable[Span], *, path: Optional[str] = None) -> dict:
    """Render ``spans`` as a Chrome trace-event document.

    Returns the document as a dict; when ``path`` is given it is also
    written there as JSON (sorted keys, so output is deterministic).
    Open spans (``t1 is None``) are exported with zero duration rather
    than dropped, so a truncated run is still inspectable.

    Wire message ids are renumbered densely (1, 2, ...) in order of
    first appearance: the simulator's id counter is process-global, so
    raw ids depend on what ran earlier — renumbering makes identical
    runs export identical documents.
    """
    spans = list(spans)
    tids = _tid_map(spans)
    msg_renumber: dict[int, int] = {}
    for span in spans:
        if span.msg_id is not None and span.msg_id not in msg_renumber:
            msg_renumber[span.msg_id] = len(msg_renumber) + 1
    events: list[dict] = []
    for node in sorted({n for n, _ in tids}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
    for (node, component), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": node,
                "tid": tid,
                "args": {"name": component},
            }
        )
    for span in spans:
        args = dict(span.args)
        if span.msg_id is not None:
            args["msg_id"] = msg_renumber[span.msg_id]
        event = {
            "name": span.name,
            "pid": span.node,
            "tid": tids[(span.node, span.component)],
            "ts": span.t0 / 1e6,
            "args": args,
        }
        if span.t1 == span.t0:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (span.t1 - span.t0) / 1e6 if span.t1 is not None else 0.0
        events.append(event)
    doc = {"traceEvents": events, "displayTimeUnit": "ns"}
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=1)
            fh.write("\n")
    return doc


def validate_chrome_trace(doc: dict) -> None:
    """Check ``doc`` against the trace-event schema; raises ValueError.

    Covers the subset this exporter emits: the checks Perfetto actually
    enforces on load (required keys, numeric ts/dur, known phases).
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be a dict with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where}: missing {key!r}")
        ph = event["ph"]
        if ph not in ("X", "i", "M"):
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: 'ts' must be a number")
        if event["ts"] < 0:
            raise ValueError(f"{where}: negative timestamp")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: 'dur' must be a number >= 0")
