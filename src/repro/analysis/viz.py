"""Terminal plots for NetPIPE series.

NetPIPE's output is meant to be plotted; this renders the log-x curves
of Figures 4-7 directly in the terminal so `python -m repro netpipe
--plot` and the sweep example can show shape, not just tables.  Pure
text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..netpipe.runner import Series

__all__ = ["ascii_chart", "plot_series"]

_GLYPHS = "*o+x#@%&"


def ascii_chart(
    xs: Sequence[float],
    ys_list: Sequence[Sequence[float]],
    labels: Sequence[str],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = True,
    logy: bool = False,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more (x, y) curves as an ASCII scatter chart."""
    if not xs or not ys_list:
        raise ValueError("nothing to plot")
    if any(len(ys) != len(xs) for ys in ys_list):
        raise ValueError("every series must have one y per x")

    def fx(x: float) -> float:
        return math.log10(max(x, 1e-12)) if logx else x

    def fy(y: float) -> float:
        return math.log10(max(y, 1e-12)) if logy else y

    x0, x1 = fx(min(xs)), fx(max(xs))
    all_y = [y for ys in ys_list for y in ys]
    y0, y1 = fy(min(all_y)), fy(max(all_y))
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, ys in enumerate(ys_list):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            col = round((fx(x) - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - round((fy(y) - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{(10 ** y1 if logy else y1):.4g}"
    bottom_label = f"{(10 ** y0 if logy else y0):.4g}"
    pad = max(len(top_label), len(bottom_label), len(ylabel)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    left = f"{(10 ** x0 if logx else x0):.4g}"
    right = f"{(10 ** x1 if logx else x1):.4g}"
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * pad + f"  {left}" + " " * max(1, width - len(left) - len(right)) + right
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}" for i, label in enumerate(labels)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def plot_series(
    series_list: Sequence[Series],
    *,
    latency: bool = False,
    title: Optional[str] = None,
    **chart_kw,
) -> str:
    """Chart NetPIPE series (bandwidth by default, latency on request)."""
    xs = series_list[0].sizes()
    for s in series_list:
        if s.sizes() != list(xs):
            raise ValueError("series were measured over different sizes")
    ys_list = [
        s.latencies_us() if latency else s.bandwidths() for s in series_list
    ]
    labels = [s.module for s in series_list]
    default_title = (
        f"{series_list[0].pattern}: "
        + ("one-way latency (us)" if latency else "bandwidth (MB/s)")
    )
    return ascii_chart(
        xs,
        ys_list,
        labels,
        title=title if title is not None else default_title,
        ylabel="us" if latency else "MB/s",
        **chart_kw,
    )
