"""Analytic latency decomposition of the generic-mode put path.

The paper explains its Figure 4 numbers by adding up path components
("a significant amount of the current latency is due to interrupt
processing by the host processor").  This module writes that arithmetic
down explicitly: given a :class:`SeaStarConfig`, it produces the
stage-by-stage budget for a small put, in the order the message
traverses the stack.

Two uses:

* human inspection — ``python -m repro.analysis.breakdown`` prints the
  budget table, the reproduction's equivalent of the paper's overhead
  narrative;
* regression defense — ``tests/test_breakdown.py`` asserts the analytic
  total stays within a few percent of the *simulated* latency, so any
  change that silently adds or drops a path stage is caught even if the
  calibration tests still pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..sim.units import to_us

__all__ = [
    "Stage",
    "put_latency_breakdown",
    "breakdown_by_name",
    "breakdown_total_us",
    "format_breakdown",
]


@dataclass(frozen=True)
class Stage:
    """One component of the one-way path."""

    where: str  # "host", "fw", "wire"
    name: str
    cost_ps: int

    @property
    def cost_us(self) -> float:
        """Cost in microseconds."""
        return to_us(self.cost_ps)


def put_latency_breakdown(
    config: SeaStarConfig = DEFAULT_CONFIG,
    *,
    nbytes: int = 1,
    hops: int = 1,
) -> list[Stage]:
    """The stage list for a generic-mode put of ``nbytes`` (Catamount).

    Only small messages (no payload pipelining effects) are decomposed;
    for ``nbytes`` above the piggyback limit the two-interrupt structure
    is included but payload streaming overlap is approximated as the
    serial deposit of the payload packets — accurate to a few percent up
    to ~2 KB, a lower bound beyond that (the simulation pipelines the
    payload against the host path).
    """
    cfg = config
    inline = nbytes <= cfg.small_msg_bytes
    stages: list[Stage] = [
        Stage("host", "API call (user space)", cfg.host_api_overhead),
        Stage("host", "trap into Catamount QK", cfg.trap_overhead),
        Stage("host", "kernel send processing", cfg.host_tx_overhead),
        Stage("host", "mailbox command write (HT)", cfg.ht_write_latency),
        Stage("fw", "poll + dispatch (tx cmd)", cfg.fw_poll_dispatch),
        Stage("fw", "tx command processing", cfg.fw_tx_cmd),
        Stage("fw", "TX DMA program", cfg.fw_tx_dma_setup),
        Stage("fw", "header fetch from host (HT read)", cfg.ht_read_latency),
        Stage("wire", "header packet TX engine", cfg.tx_dma_per_packet),
        Stage("wire", "header serialization", cfg.link_packet_time()),
        Stage("wire", "router hops", hops * cfg.hop_latency),
        Stage("wire", "header packet RX engine", cfg.rx_dma_per_packet),
        Stage("fw", "poll + dispatch (rx header)", cfg.fw_poll_dispatch),
        Stage("fw", "rx header processing", cfg.fw_rx_header),
        Stage("fw", "event post to kernel EQ", cfg.fw_event_post),
        Stage("fw", "interrupt raise", cfg.fw_interrupt_raise),
        Stage("host", "INTERRUPT", cfg.interrupt_overhead),
        Stage("host", "drain event", cfg.host_interrupt_event),
        Stage("host", "Portals matching", cfg.host_match_overhead),
    ]
    if inline:
        stages += [
            Stage("host", "inline deposit + PUT_END delivery",
                  cfg.host_event_overhead * 2),
        ]
    else:
        npackets = cfg.packets_for(nbytes)
        stages += [
            Stage("host", "receive command (deposit)",
                  cfg.host_rx_cmd_overhead + cfg.ht_write_latency),
            Stage("fw", "poll + dispatch (rx cmd)", cfg.fw_poll_dispatch),
            Stage("fw", "rx command + RX DMA program",
                  cfg.fw_rx_cmd + cfg.fw_rx_dma_setup),
            Stage("wire", f"payload deposit ({npackets} packets)",
                  npackets * cfg.rx_dma_per_packet),
            Stage("fw", "completion event + interrupt raise",
                  cfg.fw_poll_dispatch + cfg.fw_event_post
                  + cfg.fw_interrupt_raise),
            Stage("host", "SECOND INTERRUPT", cfg.interrupt_overhead),
            Stage("host", "drain event + PUT_END delivery",
                  cfg.host_interrupt_event + cfg.host_event_overhead * 2),
        ]
    stages.append(Stage("host", "application EQ poll", cfg.host_eq_poll))
    return stages


def breakdown_by_name(
    config: SeaStarConfig = DEFAULT_CONFIG, *, nbytes: int = 1, hops: int = 1
) -> dict[str, int]:
    """The stage list as a name -> cost_ps mapping.

    Consumed by :mod:`repro.trace.reconcile`, which matches analytic
    stages against measured spans by name; duplicate stage names would
    make that mapping ambiguous, so they are rejected here.
    """
    stages = put_latency_breakdown(config, nbytes=nbytes, hops=hops)
    by_name: dict[str, int] = {}
    for stage in stages:
        if stage.name in by_name:
            raise ValueError(f"duplicate breakdown stage name {stage.name!r}")
        by_name[stage.name] = stage.cost_ps
    return by_name


def breakdown_total_us(
    config: SeaStarConfig = DEFAULT_CONFIG, *, nbytes: int = 1, hops: int = 1
) -> float:
    """Sum of the analytic stage costs in microseconds."""
    return sum(
        s.cost_us for s in put_latency_breakdown(config, nbytes=nbytes, hops=hops)
    )


def format_breakdown(
    config: SeaStarConfig = DEFAULT_CONFIG, *, nbytes: int = 1, hops: int = 1
) -> str:
    """Render the budget as the table the paper's narrative implies."""
    stages = put_latency_breakdown(config, nbytes=nbytes, hops=hops)
    total = sum(s.cost_ps for s in stages)
    lines = [
        f"Generic-mode put, {nbytes} B, {hops} hop(s): "
        f"analytic one-way budget",
        f"{'where':<6} {'stage':<40} {'us':>8} {'share':>7}",
        "-" * 64,
    ]
    for s in stages:
        lines.append(
            f"{s.where:<6} {s.name:<40} {s.cost_us:>8.3f}"
            f" {s.cost_ps / total:>6.1%}"
        )
    lines.append("-" * 64)
    lines.append(f"{'':<6} {'TOTAL':<40} {to_us(total):>8.3f}")
    by_where: dict[str, int] = {}
    for s in stages:
        by_where[s.where] = by_where.get(s.where, 0) + s.cost_ps
    for where, cost in sorted(by_where.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {where:<5} subtotal: {to_us(cost):7.3f} us "
                     f"({cost / total:.1%})")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_breakdown(nbytes=1))
    print()
    print(format_breakdown(nbytes=1024))
