"""Result analysis and the paper's reference numbers."""

from .anchors import (
    bandwidth_anchors,
    figure_metrics,
    latency_anchors,
    paper_anchor,
)
from .breakdown import (
    Stage,
    breakdown_total_us,
    format_breakdown,
    put_latency_breakdown,
)
from .metrics import (
    half_bandwidth_point,
    latency_at,
    monotone_fraction,
    peak_bandwidth,
)
from .paper import PAPER, PaperNumbers
from .report import format_machine_report, machine_report, node_report
from .viz import ascii_chart, plot_series

__all__ = [
    "Stage",
    "put_latency_breakdown",
    "breakdown_total_us",
    "format_breakdown",
    "peak_bandwidth",
    "half_bandwidth_point",
    "latency_at",
    "monotone_fraction",
    "PAPER",
    "PaperNumbers",
    "machine_report",
    "node_report",
    "format_machine_report",
    "ascii_chart",
    "plot_series",
    "latency_anchors",
    "bandwidth_anchors",
    "figure_metrics",
    "paper_anchor",
]
