"""Machine run reports: what every component did during a simulation.

After any run, :func:`machine_report` collects the counters the stack
keeps everywhere — interrupts and traps per host, firmware message and
recovery counts, DMA packet counts, pool high-water marks, SRAM
occupancy, CPU utilization — into one structured dict, and
:func:`format_machine_report` renders it for humans.  This is the
observability surface a systems person reaches for when a number looks
wrong ("how many interrupts did that take?").
"""

from __future__ import annotations

from typing import Any

from ..machine.builder import Machine
from ..sim.units import to_us

__all__ = ["node_report", "machine_report", "format_machine_report"]


def node_report(node) -> dict[str, Any]:
    """Structured snapshot of one node's counters and utilization."""
    fw = node.firmware
    generic = fw.generic
    report: dict[str, Any] = {
        "node_id": node.node_id,
        "os": node.os_type.value,
        "host": {
            "interrupts": node.opteron.counters["interrupts"],
            "interrupts_coalesced": node.opteron.counters["interrupts_coalesced"],
            "traps": node.opteron.counters["traps"],
            "syscalls": node.opteron.counters["syscalls"],
            "busy_us": to_us(node.opteron.busy_time),
            "utilization": node.opteron.utilization(),
        },
        "kernel": dict(node.kernel.counters.snapshot()),
        "firmware": {
            "counters": dict(fw.counters.snapshot()),
            "heartbeat": fw.control.heartbeat,
            "ppc_busy_us": to_us(node.seastar.ppc.busy_time),
            "ppc_utilization": node.seastar.ppc.utilization(),
            "sources_in_use": fw.control.sources.in_use,
            "sources_high_water": fw.control.sources.high_water,
        },
        "dma": {
            "tx_messages": node.seastar.tx.counters["messages"],
            "tx_packets": node.seastar.tx.counters["packets"],
            "rx_headers": (
                node.seastar.rx.counters["headers"] if node.seastar.rx else 0
            ),
            "rx_packets": (
                node.seastar.rx.counters["packets"] if node.seastar.rx else 0
            ),
            "rx_stalls": (
                node.seastar.rx.counters["stalls"] if node.seastar.rx else 0
            ),
        },
        "sram": {
            "used": node.seastar.sram.used_bytes,
            "free": node.seastar.sram.free_bytes,
        },
    }
    if generic is not None:
        report["firmware"]["rx_pendings_high_water"] = generic.rx_pendings.high_water
        report["firmware"]["rx_pendings_in_use"] = generic.rx_pendings.in_use
    return report


def machine_report(machine: Machine) -> dict[str, Any]:
    """Reports for every booted node plus fabric-level totals."""
    link = machine.fabric.link.snapshot()
    report = {
        "sim_time_us": to_us(machine.now),
        "fabric": {
            "chunks_sent": machine.fabric.counters["chunks_sent"],
            "packets_sent": machine.fabric.counters["packets_sent"],
            "chunks_dropped": machine.fabric.counters["chunks_dropped"],
            "link_packets": link["packets_carried"],
            "link_retries": link["retries"],
        },
        "nodes": [
            node_report(node) for _, node in sorted(machine.nodes.items())
        ],
    }
    injector = getattr(machine, "injector", None)
    if injector is not None:
        from ..faults.report import fault_report

        report["faults"] = fault_report(machine)
    return report


def format_machine_report(machine: Machine) -> str:
    """Human-readable rendering of :func:`machine_report`."""
    data = machine_report(machine)
    lines = [
        f"simulated time: {data['sim_time_us']:.1f} us",
        f"fabric: {data['fabric']['packets_sent']} packets in "
        f"{data['fabric']['chunks_sent']} chunks"
        + (
            f", {data['fabric']['link_retries']} link retries"
            if data["fabric"]["link_retries"]
            else ""
        ),
    ]
    for node in data["nodes"]:
        host = node["host"]
        fw = node["firmware"]
        dma = node["dma"]
        lines.append(
            f"node {node['node_id']} ({node['os']}): "
            f"irq={host['interrupts']} (+{host['interrupts_coalesced']} coalesced) "
            f"traps={host['traps']} host_busy={host['busy_us']:.1f}us "
            f"({host['utilization']:.0%})"
        )
        lines.append(
            f"  fw: tx_msgs={fw['counters'].get('tx_messages', 0)} "
            f"rx_hdrs={fw['counters'].get('rx_headers', 0)} "
            f"heartbeat={fw['heartbeat']} "
            f"ppc={fw['ppc_busy_us']:.1f}us ({fw['ppc_utilization']:.0%})"
        )
        lines.append(
            f"  dma: tx {dma['tx_packets']} pkts / rx {dma['rx_packets']} pkts"
            f" (stalls {dma['rx_stalls']}); "
            f"sram {node['sram']['used']}/{node['sram']['used'] + node['sram']['free']} B"
        )
        recovery = {
            k: v
            for k, v in fw["counters"].items()
            if k.startswith(
                ("naks", "retransmits", "gobackn", "exhausted", "sacks",
                 "crc_errors", "transport_losses", "timeout_retransmits",
                 "backoff_time", "duplicates", "control_drops")
            )
        }
        if recovery:
            lines.append(f"  recovery: {recovery}")
    faults = data.get("faults")
    if faults is not None:
        injected = faults.get("injected", {})
        if injected:
            lines.append(f"faults injected: {injected}")
    return "\n".join(lines)
