"""Series analysis: peak bandwidth, half-bandwidth point, curve checks.

These are the quantities the paper quotes from its figures: peak
bandwidth at 8 MB, the message size where half of peak is reached (~7 KB
ping-pong, ~5 KB streaming), and the 1-byte latencies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netpipe.runner import Series

__all__ = [
    "peak_bandwidth",
    "half_bandwidth_point",
    "latency_at",
    "monotone_fraction",
]


def peak_bandwidth(series: Series) -> float:
    """Largest bandwidth (MB/s) in the sweep."""
    bw = series.bandwidths()
    if not bw:
        raise ValueError("empty series")
    return max(bw)


def half_bandwidth_point(series: Series, *, peak: Optional[float] = None) -> int:
    """Smallest message size reaching half of peak bandwidth.

    Interpolates linearly (in size) between the bracketing measured
    points, which is how one reads the number off a NetPIPE curve.
    """
    points = series.points
    if not points:
        raise ValueError("empty series")
    target = (peak if peak is not None else peak_bandwidth(series)) / 2.0
    prev = None
    for p in points:
        bw = p.bandwidth_mb_s
        if bw >= target:
            if prev is None:
                return p.nbytes
            n0, b0 = prev
            if bw == b0:
                return p.nbytes
            frac = (target - b0) / (bw - b0)
            return round(n0 + frac * (p.nbytes - n0))
        prev = (p.nbytes, bw)
    raise ValueError("series never reaches half of peak")


def latency_at(series: Series, nbytes: int) -> float:
    """One-way latency (us) at the smallest measured size >= ``nbytes``."""
    for p in series.points:
        if p.nbytes >= nbytes:
            return p.latency_us
    raise ValueError(f"no measured size >= {nbytes}")


def monotone_fraction(values: Sequence[float]) -> float:
    """Fraction of consecutive steps that do not decrease.

    Bandwidth curves should be near-monotone; this gives a robust check
    that tolerates perturbation jitter."""
    if len(values) < 2:
        return 1.0
    good = sum(1 for a, b in zip(values, values[1:]) if b >= a * 0.98)
    return good / (len(values) - 1)
