"""The paper's published numbers, as structured data.

One place for every value the reproduction is compared against, so
EXPERIMENTS.md, the benchmarks and the calibration tests all agree on
what "the paper says".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PAPER", "PaperNumbers"]


@dataclass(frozen=True)
class PaperNumbers:
    """Published measurements from CLUSTER'05 Figures 4-7 and the text."""

    # Figure 4: one-byte one-way latencies (us)
    put_latency_us: float = 5.39
    get_latency_us: float = 6.60
    mpich1_latency_us: float = 7.97
    mpich2_latency_us: float = 8.40

    small_msg_bytes: int = 12
    """User bytes that ride in the header packet (the Figure 4 step)."""

    # Figure 5: uni-directional ping-pong
    put_peak_mb_s: float = 1108.76
    half_bw_pingpong_bytes: int = 7 * 1024

    # Figure 6: streaming
    half_bw_stream_bytes: int = 5 * 1024

    # Figure 7: bi-directional
    put_bidir_peak_mb_s: float = 2203.19

    # Section 3.3 overheads
    trap_ns: float = 75.0
    interrupt_us: float = 2.0

    # Section 4.2 firmware structures
    num_sources: int = 1024
    num_generic_pendings: int = 1274
    sram_kb: int = 384

    # Section 2 rates
    link_gb_s: float = 2.5
    ht_peak_gb_s: float = 2.8
    mpi_latency_req_nearest_us: float = 2.0
    mpi_latency_req_farthest_us: float = 5.0


PAPER = PaperNumbers()
"""Singleton with the paper's values."""
