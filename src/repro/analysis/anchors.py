"""Anchor extraction: the scalar numbers a measured series is judged by.

Each figure of the paper is summarized by a handful of scalars (1-byte
latency, peak bandwidth, half-bandwidth point, the 12-byte step).  The
``bench_fig*.py`` benches print them next to the paper's published
values; the benchrunner's golden-baseline comparator stores and diffs
exactly the same quantities.  This module is the single source for how
those scalars are derived from a :class:`~repro.netpipe.runner.Series`
and for which published number each one corresponds to.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netpipe.runner import Series
from .metrics import half_bandwidth_point, latency_at, peak_bandwidth
from .paper import PAPER

__all__ = [
    "latency_anchors",
    "bandwidth_anchors",
    "figure_metrics",
    "paper_anchor",
]


def latency_anchors(series: Series, *, step: bool = False) -> Dict[str, float]:
    """Scalar anchors of a latency sweep (Figure 4 style).

    Always reports the 1-byte one-way latency; with ``step=True`` also
    the jump across the header-piggyback boundary (12 -> 13 bytes).
    """
    out: Dict[str, float] = {"latency_1b_us": latency_at(series, 1)}
    boundary = PAPER.small_msg_bytes
    if step and boundary in series.sizes():
        out["piggyback_step_us"] = latency_at(series, boundary + 1) - latency_at(
            series, boundary
        )
    return out


def bandwidth_anchors(series: Series) -> Dict[str, float]:
    """Scalar anchors of a bandwidth sweep (Figures 5-7 style)."""
    out: Dict[str, float] = {"peak_mb_s": peak_bandwidth(series)}
    try:
        out["half_bw_bytes"] = float(half_bandwidth_point(series))
    except ValueError:
        # a truncated sweep may never reach half of its own peak
        pass
    return out


def figure_metrics(figure: str, variant: str, series: Series) -> Dict[str, float]:
    """Anchor metrics for one (figure, variant) measured series."""
    if figure == "fig4":
        return latency_anchors(series, step=variant == "put")
    return bandwidth_anchors(series)


#: (figure, variant, metric) -> the paper's published value, where the
#: paper publishes one.  Used for context columns in reports/diffs.
_PAPER_ANCHORS: Dict[tuple, float] = {
    ("fig4", "put", "latency_1b_us"): PAPER.put_latency_us,
    ("fig4", "get", "latency_1b_us"): PAPER.get_latency_us,
    ("fig4", "mpich1", "latency_1b_us"): PAPER.mpich1_latency_us,
    ("fig4", "mpich2", "latency_1b_us"): PAPER.mpich2_latency_us,
    ("fig5", "put", "peak_mb_s"): PAPER.put_peak_mb_s,
    ("fig5", "put", "half_bw_bytes"): float(PAPER.half_bw_pingpong_bytes),
    ("fig6", "put", "half_bw_bytes"): float(PAPER.half_bw_stream_bytes),
    ("fig7", "put", "peak_mb_s"): PAPER.put_bidir_peak_mb_s,
}


def paper_anchor(figure: str, variant: str, metric: str) -> Optional[float]:
    """The paper's published value for a metric, if it has one."""
    return _PAPER_ANCHORS.get((figure, variant, metric))
