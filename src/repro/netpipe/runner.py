"""NetPIPE measurement patterns and result types.

Three patterns, matching Figures 4-7:

* **ping-pong** — alternating exchange; reported latency is half the
  round trip, reported bandwidth is message bytes over half the round
  trip (Figures 4 and 5);
* **stream** — uni-directional back-to-back messages, timed at the
  receiver (Figure 6);
* **bi-directional** — both sides exchange simultaneously; reported
  bandwidth counts both directions (Figure 7).

All times are *simulated* picoseconds from the DES clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..fw.firmware import ExhaustionPolicy
from ..hw.config import DEFAULT_CONFIG, SeaStarConfig
from ..machine.builder import build_pair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan
from ..oskern.kernel import OSType
from ..sim import rate_mb_s, to_us
from .sizes import netpipe_sizes

__all__ = ["Measurement", "Series", "NetPipeRunner", "run_series"]


@dataclass(frozen=True)
class Measurement:
    """One (pattern, size) data point."""

    pattern: str
    nbytes: int
    total_ps: int
    repeats: int
    bytes_moved: int

    @property
    def latency_us(self) -> float:
        """One-way latency in microseconds (ping-pong convention: half
        the average round trip)."""
        if self.pattern == "pingpong":
            return to_us(self.total_ps) / (2 * self.repeats)
        return to_us(self.total_ps) / self.repeats

    @property
    def bandwidth_mb_s(self) -> float:
        """Throughput in MB/s (MB = 2**20, NetPIPE convention).

        For ping-pong, NetPIPE reports bytes over *half* the round trip
        (the one-way transfer time), so a large-message ping-pong
        approaches the link's uni-directional rate."""
        if self.pattern == "pingpong":
            return rate_mb_s(2 * self.bytes_moved, self.total_ps)
        return rate_mb_s(self.bytes_moved, self.total_ps)


@dataclass
class Series:
    """A full size sweep for one module + pattern."""

    module: str
    pattern: str
    points: list[Measurement]

    def sizes(self) -> list[int]:
        """Message sizes measured."""
        return [p.nbytes for p in self.points]

    def latencies_us(self) -> list[float]:
        """One-way latencies (us) per size."""
        return [p.latency_us for p in self.points]

    def bandwidths(self) -> list[float]:
        """Bandwidths (MB/s) per size."""
        return [p.bandwidth_mb_s for p in self.points]


def _stream_count(nbytes: int) -> int:
    """Messages per streaming measurement: enough to reach steady state,
    bounded so huge sizes stay tractable."""
    target = 512 * 1024
    return max(4, min(64, target // max(1, nbytes)))


class NetPipeRunner:
    """Drives one module through one pattern over a size schedule."""

    def __init__(
        self,
        module,
        *,
        config: SeaStarConfig = DEFAULT_CONFIG,
        os_type: OSType = OSType.CATAMOUNT,
        policy: ExhaustionPolicy = ExhaustionPolicy.PANIC,
        hops: int = 1,
        repeats: int = 3,
        warmup: int = 1,
        trace: bool = False,
        metrics: bool = False,
        fault_plan: "FaultPlan | None" = None,
        bulk_events: Optional[bool] = None,
    ):
        self.module = module
        self.config = config
        self.os_type = os_type
        self.policy = policy
        self.hops = hops
        self.repeats = repeats
        self.warmup = warmup
        self.trace = trace
        self.metrics = metrics
        self.fault_plan = fault_plan
        self.bulk_events = bulk_events
        #: the machine of the most recent :meth:`run` (chaos reporting)
        self.machine = None
        #: per-size measurement windows ``(nbytes, t0, t1)`` of the most
        #: recent :meth:`run` — the timed portion only (warmup excluded),
        #: which is what utilization attribution integrates over
        self.windows: list[tuple[int, int, int]] = []

    def run(self, pattern: str, sizes: Optional[Sequence[int]] = None) -> Series:
        """Execute the sweep; returns the measured series."""
        sizes = list(sizes if sizes is not None else netpipe_sizes())
        if not sizes:
            raise ValueError("no sizes to measure")
        machine, node_a, node_b = build_pair(
            self.config,
            os_type=self.os_type,
            policy=self.policy,
            hops=self.hops,
            trace=self.trace,
            metrics=self.metrics,
            fault_plan=self.fault_plan,
            bulk_events=self.bulk_events,
        )
        self.machine = machine
        self.windows = []
        max_bytes = max(sizes)
        ep_a, ep_b = self.module.make_endpoints(machine, node_a, node_b, max_bytes)
        points: list[Measurement] = []
        if pattern == "pingpong":
            a, b = self._pingpong(ep_a, ep_b, sizes, points)
        elif pattern == "stream":
            a, b = self._stream(ep_a, ep_b, sizes, points)
        elif pattern == "bidir":
            a, b = self._bidir(ep_a, ep_b, sizes, points)
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
        pa = machine.sim.process(a, name="netpipe:a")
        pb = machine.sim.process(b, name="netpipe:b")
        machine.run()
        for side, proc in (("a", pa), ("b", pb)):
            if not proc.triggered:
                raise RuntimeError(f"NetPIPE side {side} deadlocked")
            if not proc.ok:
                raise proc.value
        return Series(module=self.module.name, pattern=pattern, points=points)

    # -- patterns -----------------------------------------------------------
    def _pingpong(self, ep_a, ep_b, sizes, points):
        reps, warm = self.repeats, self.warmup

        def side_a():
            yield from ep_a.setup()
            for n in sizes:
                yield from ep_a.begin_round(n)
                for _ in range(warm):
                    yield from ep_a.send(n)
                    yield from ep_a.recv(n)
                t0 = ep_a_now()
                for _ in range(reps):
                    yield from ep_a.send(n)
                    yield from ep_a.recv(n)
                t1 = ep_a_now()
                points.append(Measurement("pingpong", n, t1 - t0, reps, n * reps))
                self.windows.append((n, t0, t1))
                yield from ep_a.end_round()

        def side_b():
            yield from ep_b.setup()
            for n in sizes:
                yield from ep_b.begin_round(n)
                for _ in range(warm + reps):
                    yield from ep_b.recv(n)
                    yield from ep_b.send(n)
                yield from ep_b.end_round()

        ep_a_now = lambda: ep_a.proc.sim.now if hasattr(ep_a, "proc") else ep_a.mpi.sim.now  # noqa: E731
        return side_a(), side_b()

    def _stream(self, ep_a, ep_b, sizes, points):
        warm = self.warmup

        def side_a():  # sender
            yield from ep_a.setup()
            for n in sizes:
                count = _stream_count(n)
                yield from ep_a.begin_round(n)
                for _ in range(warm):
                    yield from ep_a.send(n)
                # Sync: wait for the receiver's go-ahead, so the timed
                # window at the receiver starts before any timed message
                # is on the wire.
                yield from ep_a.recv(1)
                for _ in range(count):
                    yield from ep_a.send(n)
                # Round-boundary handshake: wait for the receiver's ack.
                yield from ep_a.recv(1)
                yield from ep_a.flush_sends(warm + count)
                yield from ep_a.end_round()

        def side_b():  # receiver (times the stream)
            yield from ep_b.setup()
            for n in sizes:
                count = _stream_count(n)
                yield from ep_b.begin_round(n)
                recv = getattr(ep_b, "stream_recv", None)
                for _ in range(warm):
                    if recv is not None:
                        yield from recv(n, warm)
                    else:
                        yield from ep_b.recv(n)
                yield from ep_b.send(1)
                t0 = ep_b_now()
                remaining = count
                for _ in range(count):
                    if recv is not None:
                        yield from recv(n, remaining)
                    else:
                        yield from ep_b.recv(n)
                    remaining -= 1
                t1 = ep_b_now()
                points.append(Measurement("stream", n, t1 - t0, count, n * count))
                self.windows.append((n, t0, t1))
                yield from ep_b.send(1)
                yield from ep_b.end_round()

        ep_b_now = lambda: ep_b.proc.sim.now if hasattr(ep_b, "proc") else ep_b.mpi.sim.now  # noqa: E731
        return side_a(), side_b()

    def _bidir(self, ep_a, ep_b, sizes, points):
        reps, warm = self.repeats, self.warmup

        def side(ep, record):
            def body():
                yield from ep.setup()
                for n in sizes:
                    yield from ep.begin_round(n)
                    for _ in range(warm):
                        yield from ep.exchange(n)
                    t0 = now(ep)
                    for _ in range(reps):
                        yield from ep.exchange(n)
                    if record:
                        t1 = now(ep)
                        points.append(
                            Measurement("bidir", n, t1 - t0, reps, 2 * n * reps)
                        )
                        self.windows.append((n, t0, t1))
                    yield from ep.end_round()

            return body()

        def now(ep):
            return ep.proc.sim.now if hasattr(ep, "proc") else ep.mpi.sim.now

        return side(ep_a, True), side(ep_b, False)


def run_series(
    module,
    pattern: str,
    sizes: Optional[Sequence[int]] = None,
    **runner_kw,
) -> Series:
    """One-call convenience: build a runner and execute the sweep."""
    return NetPipeRunner(module, **runner_kw).run(pattern, sizes)
