"""NetPIPE harness: the measurement methodology of the paper's section 5.2."""

from .modules import (
    NETPIPE_PORTAL,
    MPIModule,
    PortalsEndpoint,
    PortalsGetModule,
    PortalsPutModule,
)
from .runner import Measurement, NetPipeRunner, Series, run_series
from .sizes import decade_sizes, netpipe_sizes

__all__ = [
    "netpipe_sizes",
    "decade_sizes",
    "PortalsPutModule",
    "PortalsGetModule",
    "MPIModule",
    "PortalsEndpoint",
    "NETPIPE_PORTAL",
    "Measurement",
    "Series",
    "NetPipeRunner",
    "run_series",
]
