"""NetPIPE message-size schedule.

NetPIPE does not sweep a fixed interval: it visits powers of two and the
midpoints between them, and *perturbs* each base size by a few bytes to
probe buffer-alignment effects (section 5.2: "NetPIPE varies the message
size interval ... to cover a disparate set of features, such as buffer
alignment").
"""

from __future__ import annotations

__all__ = ["netpipe_sizes", "decade_sizes"]


def netpipe_sizes(
    min_bytes: int = 1,
    max_bytes: int = 8 * 1024 * 1024,
    *,
    perturbation: int = 3,
) -> list[int]:
    """The classic NetPIPE schedule.

    Bases are powers of two and 1.5x powers of two; each base ``b``
    contributes ``b - p``, ``b`` and ``b + p``.  Results are clipped to
    ``[min_bytes, max_bytes]``, deduplicated and sorted.
    """
    if min_bytes < 1 or max_bytes < min_bytes:
        raise ValueError("need 1 <= min_bytes <= max_bytes")
    bases: set[int] = set()
    power = 1
    while power <= max_bytes:
        bases.add(power)
        mid = power + power // 2
        if mid <= max_bytes:
            bases.add(mid)
        power *= 2
    sizes: set[int] = set()
    for base in bases:
        for cand in (base - perturbation, base, base + perturbation):
            if min_bytes <= cand <= max_bytes:
                sizes.add(cand)
    sizes.add(min_bytes)
    sizes.add(max_bytes)
    return sorted(sizes)


def decade_sizes(
    min_bytes: int = 1, max_bytes: int = 8 * 1024 * 1024
) -> list[int]:
    """A coarse power-of-two-only schedule (fast benchmark runs)."""
    if min_bytes < 1 or max_bytes < min_bytes:
        raise ValueError("need 1 <= min_bytes <= max_bytes")
    sizes = []
    n = 1
    while n <= max_bytes:
        if n >= min_bytes:
            sizes.append(n)
        n *= 2
    if not sizes or sizes[-1] != max_bytes:
        # No power of two fell inside the range (e.g. [5, 7]), or the
        # range does not end on one: always include the endpoint.
        sizes.append(max_bytes)
    return sizes
