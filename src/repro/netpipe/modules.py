"""NetPIPE transport modules.

We developed a Portals-level module for NetPIPE (exactly as the paper's
authors did for NetPIPE 3.6.2) plus an MPI module, so all four curves of
Figures 4-7 come from the same measurement harness:

* :class:`PortalsPutModule` — one-sided puts ("put" curve);
* :class:`PortalsGetModule` — one-sided gets ("get" curve);
* :class:`MPIModule` — MPI send/recv over either MPICH flavor.

Each module builds a symmetric pair of *endpoints*.  An endpoint exposes
``setup`` / ``begin_round(n)`` / ``send(n)`` / ``recv(n)`` /
``exchange(n)`` / ``end_round`` coroutines; the runner drives them in the
ping-pong, streaming and bi-directional patterns.

Per the paper: "This module creates a memory descriptor for receiving
messages on a Portal with a single match entry attached.  The memory
descriptor is created once for each round of messages ... so the setup
overhead ... is not included in the measurement."  ``begin_round`` is
that per-round MD creation point.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..machine.builder import Machine
from ..machine.node import Node
from ..mpi.pt2pt import MPICH1, MPIFlavor, MPIProcess
from ..oskern.process import HostProcess
from ..portals.constants import (
    PTL_NID_ANY,
    PTL_PID_ANY,
    EventKind,
    MDOptions,
)
from ..portals.header import ProcessId

__all__ = [
    "NETPIPE_PORTAL",
    "PortalsEndpoint",
    "PortalsPutModule",
    "PortalsGetModule",
    "MPIModule",
]

#: Portal-table index the NetPIPE Portals module claims for itself.
NETPIPE_PORTAL = 4

_MATCH_BITS = 0x4E455450  # "NETP"


class PortalsEndpoint:
    """Shared machinery for the put and get Portals endpoints."""

    def __init__(self, proc: HostProcess, peer: ProcessId, max_bytes: int):
        self.proc = proc
        self.api = proc.api
        self.sim = proc.sim
        self.peer = peer
        self.max_bytes = max_bytes
        self.eq = None
        self.rx_buf: Optional[np.ndarray] = None
        self.tx_buf: Optional[np.ndarray] = None
        self.tx_md = None
        self._counts: dict[EventKind, int] = {}
        self._waiting: dict[EventKind, int] = {}

    # -- event plumbing ----------------------------------------------------
    def _note(self, kind: EventKind) -> None:
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def _await_kind(self, kind: EventKind) -> Generator:
        """Consume one event of ``kind`` (draining others into counters).

        Each endpoint is driven by a single process, so plain counter
        consumption is race-free."""
        while self._counts.get(kind, 0) == 0:
            ev = yield from self.api.PtlEQWait(self.eq)
            self._note(ev.kind)
        self._counts[kind] -= 1

    def end_round(self) -> Generator:
        """Tear down the per-round transmit MD.

        Outstanding completions (e.g. SEND_ENDs the ping-pong loop never
        waits for) are drained first so the unlink is legal."""
        if self.tx_md is not None and self.tx_md.active:
            while self.tx_md.pending_ops > 0:
                ev = yield from self.api.PtlEQWait(self.eq)
                self._note(ev.kind)
            yield from self.api.PtlMDUnlink(self.tx_md)
        self.tx_md = None


class _PutEndpoint(PortalsEndpoint):
    """Ping-pong/stream endpoint exchanging PtlPut messages."""

    def setup(self) -> Generator:
        api = self.api
        self.eq = yield from api.PtlEQAlloc(512)
        self.rx_buf = self.proc.alloc(self.max_bytes)
        self.tx_buf = self.proc.alloc(self.max_bytes)
        me = yield from api.PtlMEAttach(
            NETPIPE_PORTAL, ProcessId(PTL_NID_ANY, PTL_PID_ANY), _MATCH_BITS
        )
        yield from api.PtlMDAttach(
            me,
            self.rx_buf,
            options=(
                MDOptions.OP_PUT
                | MDOptions.TRUNCATE
                | MDOptions.MANAGE_REMOTE
                | MDOptions.EVENT_START_DISABLE
            ),
            eq=self.eq,
        )

    def begin_round(self, nbytes: int) -> Generator:
        self.tx_md = yield from self.api.PtlMDBind(
            self.tx_buf[:nbytes],
            options=MDOptions.EVENT_START_DISABLE,
            eq=self.eq,
        )

    def send(self, nbytes: int) -> Generator:
        yield from self.api.PtlPut(
            self.tx_md,
            self.peer,
            NETPIPE_PORTAL,
            _MATCH_BITS,
            length=nbytes,
            remote_offset=0,
        )

    def recv(self, nbytes: int) -> Generator:
        yield from self._await_kind(EventKind.PUT_END)

    def exchange(self, nbytes: int) -> Generator:
        """Bi-directional step: fire our put, then absorb the peer's."""
        yield from self.send(nbytes)
        yield from self.recv(nbytes)

    def flush_sends(self, count: int) -> Generator:
        """Stream mode: wait until ``count`` SEND_END events have landed
        (all transmit pendings retired)."""
        for _ in range(count):
            yield from self._await_kind(EventKind.SEND_END)


class _GetEndpoint(PortalsEndpoint):
    """Endpoint where data moves via PtlGet (receiver-initiated).

    ``send`` waits for the peer to *take* our data (GET_END on the
    exposed buffer); ``recv`` performs the get.  A get is inherently a
    blocking round trip, which is why the streaming curve for gets
    collapses (Figure 6) — nothing pipelines.
    """

    def setup(self) -> Generator:
        api = self.api
        self.eq = yield from api.PtlEQAlloc(512)
        self.rx_buf = self.proc.alloc(self.max_bytes)
        self.tx_buf = self.proc.alloc(self.max_bytes)
        me = yield from api.PtlMEAttach(
            NETPIPE_PORTAL, ProcessId(PTL_NID_ANY, PTL_PID_ANY), _MATCH_BITS
        )
        yield from api.PtlMDAttach(
            me,
            self.tx_buf,
            options=(
                MDOptions.OP_GET
                | MDOptions.MANAGE_REMOTE
                | MDOptions.EVENT_START_DISABLE
            ),
            eq=self.eq,
        )

    def begin_round(self, nbytes: int) -> Generator:
        self.tx_md = yield from self.api.PtlMDBind(
            self.rx_buf[:nbytes],
            options=MDOptions.EVENT_START_DISABLE,
            eq=self.eq,
        )

    def send(self, nbytes: int) -> Generator:
        yield from self._await_kind(EventKind.GET_END)

    def recv(self, nbytes: int) -> Generator:
        yield from self.api.PtlGet(
            self.tx_md,
            self.peer,
            NETPIPE_PORTAL,
            _MATCH_BITS,
            length=nbytes,
            remote_offset=0,
        )
        yield from self._await_kind(EventKind.REPLY_END)

    def exchange(self, nbytes: int) -> Generator:
        yield from self.recv(nbytes)
        yield from self.send(nbytes)

    def flush_sends(self, count: int) -> Generator:
        if False:  # gets complete synchronously in recv
            yield


class _MPIEndpoint:
    """NetPIPE endpoint speaking MPI send/recv."""

    STREAM_WINDOW = 16
    TAG = 1001

    def __init__(self, mpi: MPIProcess, peer_rank: int, max_bytes: int):
        self.mpi = mpi
        self.peer_rank = peer_rank
        self.max_bytes = max_bytes
        self.tx_buf: Optional[np.ndarray] = None
        self.rx_buf: Optional[np.ndarray] = None
        self._window: list = []

    def setup(self) -> Generator:
        yield from self.mpi.init()
        self.tx_buf = self.mpi.proc.alloc(self.max_bytes)
        self.rx_buf = self.mpi.proc.alloc(self.max_bytes)

    def begin_round(self, nbytes: int) -> Generator:
        if False:
            yield

    def send(self, nbytes: int) -> Generator:
        yield from self.mpi.send(self.tx_buf[:nbytes], self.peer_rank, tag=self.TAG)

    def recv(self, nbytes: int) -> Generator:
        yield from self.mpi.recv(
            self.rx_buf[:nbytes], source=self.peer_rank, tag=self.TAG
        )

    def exchange(self, nbytes: int) -> Generator:
        yield from self.mpi.sendrecv(
            self.tx_buf[:nbytes],
            self.peer_rank,
            self.rx_buf[:nbytes],
            source=self.peer_rank,
            tag=self.TAG,
        )

    def stream_recv(self, nbytes: int, remaining: int) -> Generator:
        """Windowed receive for streaming: keep a prepost window so eager
        floods never outrun the unexpected buffers."""
        while len(self._window) < min(self.STREAM_WINDOW, remaining):
            self._window.append(
                self.mpi.irecv(
                    self.rx_buf[:nbytes], source=self.peer_rank, tag=self.TAG
                )
            )
        req = self._window.pop(0)
        yield from req.wait()

    def flush_sends(self, count: int) -> Generator:
        if False:
            yield

    def end_round(self) -> Generator:
        for req in self._window:
            yield from req.wait()
        self._window.clear()


class PortalsPutModule:
    """Factory for the "put" curve endpoints."""

    name = "put"

    def __init__(self, *, accelerated: bool = False):
        self.accelerated = accelerated

    def make_endpoints(self, machine: Machine, a: Node, b: Node, max_bytes: int):
        pa = a.create_process(accelerated=self.accelerated)
        pb = b.create_process(accelerated=self.accelerated)
        return (
            _PutEndpoint(pa, pb.id, max_bytes),
            _PutEndpoint(pb, pa.id, max_bytes),
        )


class PortalsGetModule:
    """Factory for the "get" curve endpoints."""

    name = "get"

    def __init__(self, *, accelerated: bool = False):
        self.accelerated = accelerated

    def make_endpoints(self, machine: Machine, a: Node, b: Node, max_bytes: int):
        pa = a.create_process(accelerated=self.accelerated)
        pb = b.create_process(accelerated=self.accelerated)
        return (
            _GetEndpoint(pa, pb.id, max_bytes),
            _GetEndpoint(pb, pa.id, max_bytes),
        )


class MPIModule:
    """Factory for the MPI curves (pick the flavor)."""

    def __init__(self, flavor: MPIFlavor = MPICH1):
        self.flavor = flavor
        self.name = flavor.name

    def make_endpoints(self, machine: Machine, a: Node, b: Node, max_bytes: int):
        pa = a.create_process()
        pb = b.create_process()
        ids = [pa.id, pb.id]
        m0 = MPIProcess(pa, 0, ids, flavor=self.flavor, config=machine.config)
        m1 = MPIProcess(pb, 1, ids, flavor=self.flavor, config=machine.config)
        return (
            _MPIEndpoint(m0, 1, max_bytes),
            _MPIEndpoint(m1, 0, max_bytes),
        )
