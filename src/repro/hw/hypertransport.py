"""HyperTransport cave model.

The SeaStar talks to the Opteron over 800 MHz HyperTransport: 3.2 GB/s
theoretical per direction, ~2.8 GB/s peak payload (section 2).  Crossing HT
is the reason for two design rules the paper calls out:

* the firmware **never reads host memory** on the normal path (a read is a
  high-latency round trip, ``ht_read_latency``), it only writes; and
* the host must program the DMA engines *indirectly* via mailbox commands,
  because "transactions across the HyperTransport bus require too much time
  to allow the host processor to program these engines".

This module provides those cost calculators plus byte-rate transfer times.
Each direction of HT is its own capacity-1 resource so sustained DMA reads
(TX) and writes (RX) are serialized within a direction but independent
across directions — which is what lets Figure 7's bi-directional test reach
2x the uni-directional rate.
"""

from __future__ import annotations

from ..sim import Resource, Simulator
from ..sim.units import transfer_time
from .config import SeaStarConfig

__all__ = ["HyperTransport"]


class HyperTransport:
    """Timing model for one node's HT link between Opteron and SeaStar."""

    def __init__(self, sim: Simulator, config: SeaStarConfig):
        self.sim = sim
        self.config = config
        self.to_nic = Resource(sim, capacity=1, name="ht:to_nic")
        self.to_host = Resource(sim, capacity=1, name="ht:to_host")
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.trace_node = -1
        """Node id used for span attribution (set by the node builder)."""
        self.m_to_nic = None
        """Optional metrics :class:`~repro.metrics.Timeline` (DMA reads)."""
        self.m_to_host = None
        """Optional metrics :class:`~repro.metrics.Timeline` (DMA writes)."""

    def write_latency(self) -> int:
        """Posted-write latency (host->NIC command, NIC->host event), ps."""
        return self.config.ht_write_latency

    def read_latency(self) -> int:
        """Round-trip read latency (the expensive operation the firmware
        avoids), ps."""
        return self.config.ht_read_latency

    def payload_time(self, nbytes: int) -> int:
        """Pure transfer time for ``nbytes`` at HT payload rate, ps."""
        return transfer_time(nbytes, self.config.ht_bytes_per_s)

    def dma_read(self, nbytes: int):
        """Coroutine: NIC reads ``nbytes`` from host memory (TX path)."""
        tracer = self.tracer
        span = (
            tracer.begin("ht.read", node=self.trace_node, component="ht",
                         nbytes=nbytes)
            if tracer is not None else None
        )
        cost = self.read_latency() + self.payload_time(nbytes)
        yield from self.to_nic.use(cost)
        if tracer is not None:
            tracer.end(span)
        if self.m_to_nic is not None:
            # Service time only — any queueing wait inside use() is not
            # HT occupancy.
            self.m_to_nic.add(self.sim.now - cost, self.sim.now)

    def dma_write(self, nbytes: int):
        """Coroutine: NIC writes ``nbytes`` to host memory (RX path)."""
        tracer = self.tracer
        span = (
            tracer.begin("ht.write", node=self.trace_node, component="ht",
                         nbytes=nbytes)
            if tracer is not None else None
        )
        cost = self.write_latency() + self.payload_time(nbytes)
        yield from self.to_host.use(cost)
        if tracer is not None:
            tracer.end(span)
        if self.m_to_host is not None:
            self.m_to_host.add(self.sim.now - cost, self.sim.now)
