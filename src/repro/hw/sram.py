"""SeaStar local SRAM accounting.

The SeaStar has 384 KB of on-chip scratch SRAM (section 2) and the firmware
does **no dynamic allocation**: every structure is carved out of named pools
at initialization (section 4.2).  :class:`SramAllocator` reproduces that
discipline — pools are reserved once, reservation beyond capacity fails,
and occupancy follows the paper's formula

    M = S * Ssize + sum_i(P_i * Psize)

which `tests` and `benchmarks/bench_inline_sram.py` check directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SramAllocator", "SramExhausted", "SramPool"]


class SramExhausted(RuntimeError):
    """A pool reservation exceeded the 384 KB of local SRAM."""


@dataclass(frozen=True)
class SramPool:
    """One named, fixed-size reservation."""

    name: str
    count: int
    item_bytes: int

    @property
    def total_bytes(self) -> int:
        """Bytes this pool occupies."""
        return self.count * self.item_bytes


class SramAllocator:
    """Tracks named pool reservations against a fixed capacity."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("SRAM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._pools: dict[str, SramPool] = {}
        self.m_occupancy = None
        """Optional metrics :class:`~repro.metrics.Gauge` of used bytes."""
        self.m_now = None
        """Clock callable for :attr:`m_occupancy` samples (the allocator
        itself is simulator-agnostic; the node builder wires ``sim.now``)."""

    @property
    def used_bytes(self) -> int:
        """Total bytes reserved across all pools."""
        return sum(p.total_bytes for p in self._pools.values())

    @property
    def free_bytes(self) -> int:
        """Unreserved capacity."""
        return self.capacity_bytes - self.used_bytes

    def reserve(self, name: str, count: int, item_bytes: int) -> SramPool:
        """Reserve ``count`` items of ``item_bytes`` each under ``name``.

        Raises :class:`SramExhausted` if the reservation does not fit and
        :class:`ValueError` on a duplicate pool name — the firmware never
        resizes a pool at runtime.
        """
        if name in self._pools:
            raise ValueError(f"pool {name!r} already reserved")
        if count < 0 or item_bytes < 0:
            raise ValueError("pool sizes must be non-negative")
        pool = SramPool(name, count, item_bytes)
        if pool.total_bytes > self.free_bytes:
            raise SramExhausted(
                f"pool {name!r} needs {pool.total_bytes} B but only "
                f"{self.free_bytes} B of {self.capacity_bytes} B remain"
            )
        self._pools[name] = pool
        if self.m_occupancy is not None and self.m_now is not None:
            self.m_occupancy.sample(self.m_now(), self.used_bytes)
        return pool

    def pool(self, name: str) -> SramPool:
        """Look up a reservation by name."""
        return self._pools[name]

    def pools(self) -> dict[str, SramPool]:
        """Snapshot of all reservations."""
        return dict(self._pools)

    def occupancy_report(self) -> str:
        """Multi-line human-readable occupancy summary."""
        lines = [f"SeaStar SRAM: {self.used_bytes}/{self.capacity_bytes} bytes"]
        for pool in sorted(self._pools.values(), key=lambda p: -p.total_bytes):
            lines.append(
                f"  {pool.name:<24} {pool.count:>6} x {pool.item_bytes:>5} B"
                f" = {pool.total_bytes:>8} B"
            )
        return "\n".join(lines)
