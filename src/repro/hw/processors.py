"""Processor models: the embedded PowerPC 440 and the host Opteron.

Both are :class:`repro.sim.CPU` resources — single execution contexts whose
handlers run to completion.  The Opteron adds the interrupt mechanism whose
~2 us cost dominates the paper's generic-mode latency story, and the trap
mechanism (75 ns NULL trap under Catamount).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import CPU, Counters, Event, Simulator
from .config import SeaStarConfig

__all__ = ["PowerPC440", "Opteron"]


class PowerPC440(CPU):
    """The SeaStar's embedded dual-issue 500 MHz PowerPC 440.

    The firmware is single threaded (section 4.3): handlers acquire this
    resource and run to completion, so concurrent hardware events naturally
    serialize through it.
    """

    def __init__(self, sim: Simulator, config: SeaStarConfig, name: str = "ppc"):
        super().__init__(sim, name=name, clock_hz=config.ppc_clock_hz)
        self.config = config

    def handler(self, cost: int) -> Generator[Event, Any, None]:
        """Run one firmware handler of ``cost`` ps, including the poll/
        dispatch overhead of the main loop."""
        yield from self.execute(self.config.fw_poll_dispatch + cost)


class Opteron(CPU):
    """The host processor with interrupt and trap cost modeling.

    Interrupt semantics follow section 4.1: raising an interrupt starts a
    kernel-context execution that pays ``interrupt_overhead`` once and then
    runs the supplied handler body (which typically drains *all* new events
    from the generic EQ).  Interrupt work queues ahead of application work
    but does not preempt a handler already running.
    """

    def __init__(self, sim: Simulator, config: SeaStarConfig, name: str = "host"):
        super().__init__(sim, name=name, clock_hz=config.host_clock_hz)
        self.config = config
        self.counters = Counters()
        self._interrupt_pending = False
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.trace_node = -1
        """Node id used for span attribution (set by the node builder)."""

    # -- traps ---------------------------------------------------------------
    def trap(self, extra_cost: int = 0) -> Generator[Event, Any, None]:
        """Enter the kernel from user space (Catamount NULL-trap cost)."""
        self.counters.incr("traps")
        yield from self.execute(
            self.config.trap_overhead + extra_cost, priority=CPU.PRIO_KERNEL
        )

    def syscall(self, extra_cost: int = 0) -> Generator[Event, Any, None]:
        """Linux system-call entry/exit (heavier than a Catamount trap)."""
        self.counters.incr("syscalls")
        yield from self.execute(
            self.config.linux_syscall_overhead + extra_cost,
            priority=CPU.PRIO_KERNEL,
        )

    # -- interrupts ------------------------------------------------------------
    def raise_interrupt(
        self,
        handler: Callable[[], Generator[Event, Any, Any]],
        *,
        coalesce: bool = True,
    ) -> Optional[Event]:
        """Deliver an interrupt; ``handler`` runs in interrupt context.

        If ``coalesce`` is true and an interrupt is already pending (raised
        but its handler has not started), the new one is dropped — the
        running/pending handler will observe the new work when it drains
        the event queue, exactly the paper's "processes all of the new
        events ... each time it is invoked".  Returns the handler process
        (an event) or None when coalesced away.

        Accounting invariant (property-tested): every call increments
        exactly one of ``interrupts`` / ``interrupts_coalesced``, so
        ``interrupt_raises == interrupts + interrupts_coalesced`` holds
        in every ordering of raises, grants, and handler deaths.
        """
        self.counters.incr("interrupt_raises")
        if coalesce and self._interrupt_pending:
            self.counters.incr("interrupts_coalesced")
            return None
        self._interrupt_pending = True
        self.counters.incr("interrupts")
        return self.sim.process(self._interrupt_body(handler), name="irq")

    def _interrupt_body(self, handler):
        req = self.request(priority=CPU.PRIO_INTERRUPT)
        try:
            yield req
        except BaseException:
            # Killed (chaos machinery / Process.interrupt) before the CPU
            # grant: no handler will ever start, so a latched pending flag
            # would coalesce every future interrupt into this corpse.
            # Unlatch and withdraw the queued CPU claim.
            self._interrupt_pending = False
            self.release(req)
            raise
        # Handler is now committed to run; new interrupts must be delivered.
        self._interrupt_pending = False
        try:
            tracer = self.tracer
            span = (
                tracer.begin("host.interrupt", node=self.trace_node,
                             component="irq")
                if tracer is not None else None
            )
            cost = self.config.interrupt_overhead
            yield cost
            self.busy_time += cost
            if self.m_busy is not None:
                # This busy site bypasses execute()/charge(), so it must
                # feed the metrics timeline itself.
                self.m_busy.add(self.sim.now - cost, self.sim.now)
            if tracer is not None:
                tracer.end(span)
            yield from handler()
        finally:
            self.release(req)
