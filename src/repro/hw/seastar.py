"""SeaStar ASIC assembly.

Bundles the blocks of Figure 1 — TX/RX DMA engines, the embedded PowerPC,
local SRAM and the HyperTransport cave — behind one object per node.  The
router itself lives in :mod:`repro.net` (it is shared fabric state); the
SeaStar holds this node's attachment port.

The RX engine needs the firmware's new-header entry point, so construction
is two-phase: build the SeaStar, then :meth:`attach_firmware`.
"""

from __future__ import annotations

from typing import Callable

from ..net.fabric import Fabric, NetworkPort
from ..net.packet import WireChunk
from ..sim import Simulator
from .config import SeaStarConfig
from .dma import RxDmaEngine, TxDmaEngine
from .hypertransport import HyperTransport
from .processors import PowerPC440
from .sram import SramAllocator

__all__ = ["SeaStar"]


class SeaStar:
    """One node's network interface chip."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        fabric: Fabric,
        node_id: int,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.port: NetworkPort = fabric.attach(node_id)
        self.ppc = PowerPC440(sim, config, name=f"ppc:{node_id}")
        self.sram = SramAllocator(config.sram_bytes)
        self.ht = HyperTransport(sim, config)
        self.tx = TxDmaEngine(sim, config, fabric, node_id)
        self.rx: RxDmaEngine | None = None

    def attach_firmware(self, on_header: Callable[[WireChunk], None]) -> RxDmaEngine:
        """Wire the firmware's new-message handler into the RX engine.

        Must be called exactly once before any traffic arrives.
        """
        if self.rx is not None:
            raise RuntimeError("firmware already attached to this SeaStar")
        self.rx = RxDmaEngine(self.sim, self.config, self.port, on_header)
        return self.rx
