"""Calibrated machine configuration for the XT3 / SeaStar model.

Every timing constant the simulation uses lives here, in one frozen
dataclass, so an experiment's hardware assumptions are a single value that
can be swapped, perturbed (ablations) or recalibrated.

Where each number comes from
----------------------------
Paper-stated (section 2 and 3.3 of the CLUSTER'05 paper):

* 64-byte router packets; 16-bit per-link CRC with retry; 32-bit end-to-end
  CRC (modeled as accounting only).
* Link payload rate: 2.5 GB/s per direction.
* HyperTransport: 3.2 GB/s theoretical, 2.8 GB/s peak payload.
* Embedded PowerPC 440 at 500 MHz, dual-issue, 384 KB local SRAM.
* Host: 2.0 GHz Opteron, 4 GB of memory.
* NULL-trap into Catamount: ~75 ns.
* Interrupt cost: "at least 2 us each".
* 12 bytes of user data fit in the 64-byte header packet (the small-message
  optimization of Figure 4).
* 1,024 global source structures; 1,274 pendings for the generic process.

Derived from the paper's measurements:

* ``tx_dma_per_packet`` / ``rx_dma_per_packet``: the measured uni-directional
  peak of 1108.76 MB/s for 8 MB puts implies an effective per-64-byte-packet
  processing time of 64 B / 1108.76 MB/s = 55.05 ns on the critical
  packet-processing path.  Figure 7 (2203.19 MB/s bi-directional) shows the
  TX and RX engines sustain this independently, so both directions carry the
  same per-packet cost and do not share a budget.

Fitted residuals (software path costs the paper does not itemize):

* Host kernel / firmware handler costs.  These are constrained to land the
  1-byte put one-way latency at 5.39 us with exactly the interrupt structure
  the paper describes, and are each plausible for a few hundred instructions
  on the respective processor.  ``tests/test_calibration.py`` pins the
  resulting headline numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..sim.units import GB, KB, NS, US, ns, us

__all__ = ["SeaStarConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class SeaStarConfig:
    """All hardware/software cost parameters for one simulated machine.

    Instances are immutable; use :meth:`replace` to derive variants for
    ablation studies (e.g. ``cfg.replace(small_msg_bytes=0)`` disables the
    header-piggyback optimization).
    """

    # ------------------------------------------------------------------
    # Structural parameters (paper section 2 / 4.2)
    # ------------------------------------------------------------------
    packet_bytes: int = 64
    """Router packet payload granularity (64-byte packets)."""

    header_bytes: int = 64
    """Size of the Portals wire header (one full packet)."""

    small_msg_bytes: int = 12
    """User bytes that piggyback in the header packet (Fig. 4 step)."""

    sram_bytes: int = 384 * KB
    """SeaStar local scratch SRAM capacity."""

    num_sources: int = 1024
    """Global source structures pre-allocated by the firmware."""

    num_generic_pendings: int = 1274
    """Pending structures allocated to the generic firmware process."""

    source_struct_bytes: int = 32
    """Size of one source structure (Fig. 3 annotates 32 bytes)."""

    pending_struct_bytes: int = 64
    """Size of one lower pending structure in SRAM (Fig. 3: current state
    + buffer info)."""

    generic_tx_pendings: int = 637
    """Host-managed transmit pendings for the generic process (half of the
    1,274 total the paper reports)."""

    generic_rx_pendings: int = 637
    """Firmware-managed receive pendings for the generic process."""

    accel_tx_pendings: int = 128
    """Transmit pendings per accelerated process (limited NIC resources
    allow only one or two such processes per node)."""

    accel_rx_pendings: int = 128
    """Receive pendings per accelerated process."""

    fw_internal_pendings: int = 64
    """Firmware-owned pool for ACK/REPLY/NAK control messages."""

    tx_fifo_packets: int = 32
    """Depth of the TX FIFO in packets (transmit yields when full)."""

    rx_buffer_packets: int = 64
    """NIC-side receive buffering per flow before backpressure."""

    # ------------------------------------------------------------------
    # Clock rates
    # ------------------------------------------------------------------
    host_clock_hz: float = 2.0e9
    """AMD Opteron host clock (Red Storm nodes: 2.0 GHz)."""

    ppc_clock_hz: float = 0.5e9
    """Embedded PowerPC 440 clock (500 MHz)."""

    # ------------------------------------------------------------------
    # Data-path rates (paper section 2) and derived per-packet costs
    # ------------------------------------------------------------------
    link_bytes_per_s: float = 2.5 * GB
    """Per-direction link payload rate (2.5 GB/s)."""

    ht_bytes_per_s: float = 2.8 * GB
    """HyperTransport peak payload rate (2.8 GB/s)."""

    tx_dma_per_packet: int = ns(55.05)
    """TX DMA engine effective per-packet processing time.

    64 B / 55.05 ns = 1109 MB/s — the measured uni-directional peak.  This
    is the pipeline bottleneck for large transfers.
    """

    rx_dma_per_packet: int = ns(22.9)
    """RX DMA engine effective per-packet deposit time.

    Bounded by the HT payload rate (64 B / 2.8 GB/s): the receive side
    drains faster than the transmit side feeds it, so the TX engine sets
    the 1109 MB/s steady-state peak while buffered bursts deposit at HT
    speed — this asymmetry is what pulls the ping-pong half-bandwidth
    point down toward the paper's ~7 KB."""

    hop_latency: int = ns(45)
    """Per-router-hop fall-through latency."""

    chunk_bytes: int = 1 * KB
    """Simulation granularity for large transfers.

    Payload DMA is simulated in chunks of this many bytes (one event per
    chunk, duration = packets-in-chunk x per-packet cost).  Set to
    ``packet_bytes`` for exact per-packet simulation (tests verify the
    chunked timing matches it; 1 KB keeps the mid-size latency batching
    error small enough that the Figure 5 half-bandwidth knee lands on
    the paper's ~7 KB).  Raise to 4-16 KB for faster coarse sweeps.
    """

    # ------------------------------------------------------------------
    # Host software path costs (paper section 3.3 + fitted)
    # ------------------------------------------------------------------
    interrupt_overhead: int = us(2.0)
    """Cost to take one interrupt on the host ("at least 2 us each")."""

    trap_overhead: int = ns(75)
    """NULL-trap into the Catamount kernel (paper: ~75 ns)."""

    linux_syscall_overhead: int = ns(250)
    """System-call entry/exit on the Linux service/compute nodes (heavier
    than the Catamount NULL trap)."""

    host_api_overhead: int = ns(100)
    """User-space Portals API call bookkeeping before crossing into the
    library (argument marshalling, handle checks)."""

    host_tx_overhead: int = ns(450)
    """Kernel-side send processing: build header, allocate TX pending,
    validate MD, format the transmit command."""

    host_match_overhead: int = ns(300)
    """Portals matching on the host for one incoming header (walk match
    list, MD checks) — the 'Portals processing' of section 3.3."""

    host_rx_cmd_overhead: int = ns(300)
    """Format and issue the receive (deposit) command after a match."""

    host_event_overhead: int = ns(200)
    """Deliver one Portals event to a process EQ from the kernel."""

    host_eq_poll: int = ns(60)
    """One user-space EQ poll (read next slot, check validity)."""

    host_interrupt_event: int = ns(150)
    """Incremental cost per additional EQ event drained in one interrupt
    (the handler processes all new events per invocation, section 4.1)."""

    host_page_cmd_overhead: int = ns(120)
    """Linux only: per-page cost to pin + translate + push one DMA mapping
    to the NIC (Catamount memory is physically contiguous and needs none).
    """

    host_get_reply_setup: int = ns(250)
    """Target-side cost to turn a matched GET into a reply transmit
    command (reply pending allocation plus the mailbox result-FIFO
    handshake)."""

    page_bytes: int = 4096
    """Linux page size, for per-page DMA command accounting."""

    # ------------------------------------------------------------------
    # HyperTransport crossing costs
    # ------------------------------------------------------------------
    ht_write_latency: int = ns(100)
    """Posted write crossing HT (host -> NIC mailbox, NIC -> host event)."""

    ht_read_latency: int = ns(200)
    """Round-trip read across HT (why the firmware never reads host
    memory in normal operation, section 4.2)."""

    # ------------------------------------------------------------------
    # Firmware handler costs (PowerPC 440, fitted; each ~100-300 insns)
    # ------------------------------------------------------------------
    fw_poll_dispatch: int = ns(75)
    """Main-loop poll + dispatch to a handler."""

    fw_tx_cmd: int = ns(350)
    """Process one transmit command: pending lookup/init, source alloc,
    enqueue on the TX pending list."""

    fw_tx_dma_setup: int = ns(150)
    """Program the TX DMA engine for one message."""

    fw_rx_header: int = ns(450)
    """Process one arriving header: source hash lookup/alloc, process
    lookup, RX pending alloc, write header to the upper pending."""

    fw_rx_cmd: int = ns(300)
    """Process one receive (deposit) command from the host."""

    fw_rx_dma_setup: int = ns(200)
    """Program the RX DMA engine for one message."""

    fw_event_post: int = ns(150)
    """Compose and write one event into a host EQ across HT."""

    fw_interrupt_raise: int = ns(50)
    """Assert the host interrupt line."""

    fw_match_overhead: int = ns(700)
    """Accelerated mode: perform Portals matching in firmware (slower
    per-operation than the host CPU, but saves the interrupt)."""

    fw_release_cmd: int = ns(100)
    """Process one release-pending command from the host."""

    # ------------------------------------------------------------------
    # Resource-exhaustion recovery (go-back-N extension; section 4.3
    # describes this protocol as in progress — we implement it)
    # ------------------------------------------------------------------
    gobackn_backoff: int = us(10)
    """Sender delay before retransmitting NACKed messages."""

    gobackn_max_retries: int = 100
    """Retransmission attempts before declaring the message failed."""

    gobackn_backoff_factor: float = 2.0
    """Exponential growth of the retransmit backoff: attempt ``n`` waits
    ``gobackn_backoff * factor**n`` (capped by ``gobackn_backoff_max``).
    A factor of 1.0 recovers the old fixed-delay behaviour."""

    gobackn_backoff_max: int = us(500)
    """Upper bound on any single retransmit backoff delay."""

    reliable_transport: bool = False
    """Enable the timeout-driven retransmit engine (sender watchdogs plus
    receiver-side cumulative transport acks).  Off for performance runs —
    the paper's wire is lossless — and switched on by fault-injection
    experiments, where chunks really do vanish."""

    retransmit_timeout: int = us(50)
    """Base sender watchdog delay before an unacknowledged message is
    retransmitted (scaled up with the message's expected wire time and
    grown exponentially per attempt)."""

    # ------------------------------------------------------------------
    # Reliability model
    # ------------------------------------------------------------------
    link_crc_retry_prob: float = 0.0
    """Per-packet probability of a link-level 16-bit CRC retry (fault
    injection knob; 0 for performance runs)."""

    link_retry_penalty: int = ns(500)
    """Extra latency for one link-level retry."""

    fw_crc_check: int = ns(250)
    """Firmware cost to verify the end-to-end 32-bit CRC verdict for one
    arriving message and stage the NAK/teardown when it fails.  Charged
    only on the fault path: the wire computes the CRC in hardware, so a
    clean message pays nothing extra (matching the paper's treatment of
    the end-to-end CRC as free in the common case)."""

    # ------------------------------------------------------------------
    # MPI library costs (fitted to Fig. 4's 7.97 / 8.40 us MPI latencies)
    # ------------------------------------------------------------------
    mpich1_overhead: int = ns(1960)
    """Per-operation MPICH-1.2.6 library overhead (half charged at entry,
    half at completion)."""

    mpich2_overhead: int = ns(2390)
    """Per-operation MPICH2 library overhead."""

    host_copy_bytes_per_s: float = 4.0 * GB
    """Host memcpy rate (unexpected-message copy-out in the MPI library)."""

    mpi_header_bytes: int = 32
    """MPI envelope bytes carried ahead of user payload."""

    mpi_eager_limit: int = 128 * KB
    """Rendezvous threshold: messages above this use RTS + PtlGet."""

    def __post_init__(self) -> None:
        if self.small_msg_bytes >= self.packet_bytes:
            raise ValueError("small_msg_bytes must fit inside one packet")
        if self.chunk_bytes % self.packet_bytes != 0:
            raise ValueError("chunk_bytes must be a multiple of packet_bytes")
        if self.chunk_bytes < self.packet_bytes:
            raise ValueError("chunk_bytes must be >= packet_bytes")
        # Memoized derived costs: these are consulted per chunk on the
        # hottest simulation paths, so the round/max arithmetic is done
        # once here.  The dataclass is frozen, so the cached values can
        # never go stale; object.__setattr__ is the sanctioned way to
        # populate a frozen instance from __post_init__.
        link_pkt = max(1, round(self.packet_bytes * 1e12 / self.link_bytes_per_s))
        ht_pkt = max(1, round(self.packet_bytes * 1e12 / self.ht_bytes_per_s))
        object.__setattr__(self, "_link_packet_time", link_pkt)
        object.__setattr__(self, "_ht_packet_time", ht_pkt)
        object.__setattr__(
            self,
            "_bottleneck_per_packet",
            max(self.tx_dma_per_packet, self.rx_dma_per_packet, link_pkt, ht_pkt),
        )

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def packets_for(self, nbytes: int) -> int:
        """Number of 64-byte payload packets for an ``nbytes`` message body.

        The header always occupies its own packet and is not counted here;
        payload that piggybacks in the header (≤ ``small_msg_bytes``)
        contributes zero payload packets.
        """
        if nbytes <= self.small_msg_bytes:
            return 0
        return -(-nbytes // self.packet_bytes)

    def link_packet_time(self) -> int:
        """Serialization time of one packet on a link (ps; memoized)."""
        return self._link_packet_time  # type: ignore[attr-defined]

    def ht_packet_time(self) -> int:
        """Transfer time of one packet's payload across HT (ps; memoized)."""
        return self._ht_packet_time  # type: ignore[attr-defined]

    def bottleneck_per_packet(self) -> int:
        """Largest per-packet stage time on the TX->wire->RX pipeline
        (memoized)."""
        return self._bottleneck_per_packet  # type: ignore[attr-defined]

    def peak_bandwidth_mb_s(self) -> float:
        """Asymptotic pipeline bandwidth implied by the per-packet costs."""
        return (self.packet_bytes / (1024 * 1024)) / (
            self.bottleneck_per_packet() / 1e12
        )

    def replace(self, **changes) -> "SeaStarConfig":
        """Derive a modified configuration (for ablations)."""
        return dataclasses.replace(self, **changes)


DEFAULT_CONFIG = SeaStarConfig()
"""The calibrated Red Storm configuration used by all paper experiments."""
