"""SeaStar and node hardware models (Figure 1 of the paper)."""

from .config import DEFAULT_CONFIG, SeaStarConfig
from .dma import DepositPlan, RxDmaEngine, Transmission, TxDmaEngine
from .hypertransport import HyperTransport
from .processors import Opteron, PowerPC440
from .seastar import SeaStar
from .sram import SramAllocator, SramExhausted, SramPool

__all__ = [
    "SeaStarConfig",
    "DEFAULT_CONFIG",
    "SeaStar",
    "TxDmaEngine",
    "RxDmaEngine",
    "Transmission",
    "DepositPlan",
    "HyperTransport",
    "PowerPC440",
    "Opteron",
    "SramAllocator",
    "SramPool",
    "SramExhausted",
]
