"""TX and RX DMA engine models.

The engines are the SeaStar's workhorses: the TX engine reads message data
from host memory over HT and packetizes it onto the wire; the RX engine
de-multiplexes arriving packets into host buffers *according to commands
programmed by the firmware* (section 4.3).  Both are modeled as single
processes with an effective per-64-byte-packet processing cost that was
derived from the paper's measured peak bandwidth (see
``SeaStarConfig.tx_dma_per_packet``) — that one number subsumes the HT
transfer, engine occupancy and link serialization of the steady-state
pipeline, which is why per-chunk HT time is *not* charged separately (it
would double count the bottleneck).  One HT round-trip latency is charged
per message for the initial descriptor/data fetch.

Key behavioural points reproduced:

* All transmits serialize through a single TX FIFO regardless of
  destination (paper: section 4.3) — the engine is one process.
* A transmit yields when the wire backs up (the fabric window models the
  TX FIFO filling).
* The RX engine can only deposit a message once the firmware has
  programmed a :class:`DepositPlan` for it; payload chunks of an
  unprogrammed message stall the engine (head-of-line), which is the
  mechanism behind both the generic-mode latency shape and the resource-
  exhaustion scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..net.fabric import Fabric, NetworkPort
from ..net.packet import WireChunk
from ..sim import Channel, Counters, Event, Simulator
from .config import SeaStarConfig

__all__ = ["Transmission", "DepositPlan", "TxDmaEngine", "RxDmaEngine"]


@dataclass(eq=False)
class Transmission:
    """One message queued on the TX engine."""

    chunks: list[WireChunk]
    on_sent: Callable[["Transmission"], None]
    """Invoked when the last chunk has been handed to the wire — the point
    at which the firmware unlinks the TX pending and posts completion."""

    tag: Any = None
    """Opaque firmware context (the lower pending)."""

    started_at: Optional[int] = None
    finished_at: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Payload bytes (including any inline header payload)."""
        return sum(c.nbytes for c in self.chunks)


@dataclass(eq=False)
class DepositPlan:
    """Firmware-programmed instructions for depositing one message.

    ``dest`` is a writable NumPy byte view (or None to discard);
    ``accept_bytes`` bounds how much of the body is stored (truncation —
    the rest is discarded, "implicitly the number of bytes to discard" in
    the paper's receive-command description).
    """

    msg_id: int
    dest: Optional[np.ndarray]
    accept_bytes: int
    on_complete: Callable[["DepositPlan"], None]
    tag: Any = None
    deposited_bytes: int = 0
    discarded_bytes: int = 0
    meta: dict = field(default_factory=dict)


class TxDmaEngine:
    """Transmit side: streams queued transmissions onto the fabric."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        fabric: Fabric,
        node_id: int,
    ):
        self.sim = sim
        self.config = config
        self.fabric = fabric
        self.node_id = node_id
        self.queue: Channel = Channel(sim, name=f"txq:{node_id}")
        self.counters = Counters()
        self.busy_time = 0
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.m_busy = None
        """Optional metrics :class:`~repro.metrics.Timeline` (chunk engine)."""
        self.m_fetch = None
        """Optional metrics timeline for the per-message HT header fetch."""
        self.m_msg_bytes = None
        """Optional metrics :class:`~repro.metrics.Histogram` of message sizes."""
        sim.process(self._run(), name=f"txdma:{node_id}")

    def submit(self, tx: Transmission) -> None:
        """Enqueue a message for transmission (firmware-side call)."""
        if not tx.chunks:
            raise ValueError("transmission has no chunks")
        self.queue.put(tx)
        self.counters.incr("submitted")

    def _run(self):
        cfg = self.config
        sim = self.sim
        queue_get = self.queue.get
        fabric_send = self.fabric.send
        counts = self.counters.counts()
        per_packet = cfg.tx_dma_per_packet
        ht_read = cfg.ht_read_latency
        while True:
            tx: Transmission = yield queue_get()
            tx.started_at = sim.now
            tracer = self.tracer
            m_busy = self.m_busy
            span = (
                tracer.begin("txdma.fetch", node=self.node_id,
                             component="txdma", msg_id=tx.chunks[0].msg_id)
                if tracer is not None else None
            )
            # Initial fetch of header/descriptor from host memory.
            # (int yields are flattened sleeps — see repro.sim.core)
            yield ht_read
            if tracer is not None:
                tracer.end(span)
            if self.m_fetch is not None:
                self.m_fetch.add(sim.now - ht_read, sim.now)
            for chunk in tx.chunks:
                cspan = (
                    tracer.begin("txdma.chunk", node=self.node_id,
                                 component="txdma", msg_id=chunk.msg_id,
                                 seq=chunk.seq, npackets=chunk.npackets)
                    if tracer is not None else None
                )
                npackets = chunk.npackets
                cost = npackets * per_packet
                yield cost
                self.busy_time += cost
                if m_busy is not None:
                    m_busy.add(sim.now - cost, sim.now)
                # Blocks when the wire window (TX FIFO) is full: the
                # transmit state machine "yields ... until there is more
                # room in the FIFO".
                yield fabric_send(chunk)
                if tracer is not None:
                    tracer.end(cspan)
                counts["packets"] += npackets
            tx.finished_at = sim.now
            counts["messages"] += 1
            if self.m_msg_bytes is not None:
                self.m_msg_bytes.observe(tx.total_bytes)
            tx.on_sent(tx)


class RxDmaEngine:
    """Receive side: consumes arriving chunks from the node's port.

    Header chunks are handed to ``on_header`` (the firmware's new-message
    handler).  Payload chunks wait for their :class:`DepositPlan`, then are
    copied into the destination buffer with per-packet cost.
    """

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        port: NetworkPort,
        on_header: Callable[[WireChunk], None],
    ):
        self.sim = sim
        self.config = config
        self.port = port
        self.on_header = on_header
        self.counters = Counters()
        self.busy_time = 0
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.m_busy = None
        """Optional metrics :class:`~repro.metrics.Timeline` (header+deposit)."""
        self._plans: dict[int, DepositPlan] = {}
        self._plan_waiter: Optional[tuple[int, Event]] = None
        sim.process(self._run(), name=f"rxdma:{port.node_id}")

    # -- firmware interface ---------------------------------------------------
    def program(self, plan: DepositPlan) -> None:
        """Install the deposit plan for ``plan.msg_id`` (firmware call)."""
        if plan.msg_id in self._plans:
            raise ValueError(f"message {plan.msg_id} already programmed")
        self._plans[plan.msg_id] = plan
        if self._plan_waiter is not None and self._plan_waiter[0] == plan.msg_id:
            _, event = self._plan_waiter
            self._plan_waiter = None
            event.succeed(plan)

    def pending_plans(self) -> int:
        """Number of installed-but-unfinished plans."""
        return len(self._plans)

    # -- engine ----------------------------------------------------------------
    def _run(self):
        cfg = self.config
        sim = self.sim
        rx_get = self.port.rx.get
        plans = self._plans
        counts = self.counters.counts()
        per_packet = cfg.rx_dma_per_packet
        deposit = self._deposit
        while True:
            chunk: WireChunk = yield rx_get()
            tracer = self.tracer
            m_busy = self.m_busy
            if chunk.is_header:
                span = (
                    tracer.begin("rxdma.header", node=self.port.node_id,
                                 component="rxdma", msg_id=chunk.msg_id)
                    if tracer is not None else None
                )
                cost = chunk.npackets * per_packet
                yield cost
                self.busy_time += cost
                if m_busy is not None:
                    m_busy.add(sim.now - cost, sim.now)
                if tracer is not None:
                    tracer.end(span)
                counts["headers"] += 1
                self.on_header(chunk)
                continue
            plan = plans.get(chunk.msg_id)
            if plan is None:
                # Head-of-line stall until the firmware programs the engine
                # for this message (generic mode: after the host interrupt
                # and match).  Subsequent traffic backs up behind us,
                # backpressuring the wire.
                waiter = Event(sim)
                self._plan_waiter = (chunk.msg_id, waiter)
                counts["stalls"] += 1
                plan = yield waiter
            npackets = chunk.npackets
            span = (
                tracer.begin("rxdma.deposit", node=self.port.node_id,
                             component="rxdma", msg_id=chunk.msg_id,
                             seq=chunk.seq, npackets=npackets)
                if tracer is not None else None
            )
            cost = npackets * per_packet
            yield cost
            self.busy_time += cost
            if m_busy is not None:
                m_busy.add(sim.now - cost, sim.now)
            if tracer is not None:
                tracer.end(span)
            counts["packets"] += npackets
            deposit(plan, chunk)
            if chunk.is_last:
                del plans[chunk.msg_id]
                counts["messages"] += 1
                plan.on_complete(plan)

    def _deposit(self, plan: DepositPlan, chunk: WireChunk) -> None:
        """Copy the accepted portion of a payload chunk to host memory."""
        start = chunk.payload_offset
        nbytes = chunk.nbytes
        end = start + nbytes
        dest = plan.dest
        if end <= plan.accept_bytes:
            # common case: the whole chunk is accepted
            if nbytes > 0 and dest is not None and chunk.payload is not None:
                dest[start:end] = chunk.payload
            plan.deposited_bytes += nbytes
            return
        take = max(0, plan.accept_bytes - start)
        if take > 0 and dest is not None and chunk.payload is not None:
            dest[start : start + take] = chunk.payload[:take]
        plan.deposited_bytes += take
        plan.discarded_bytes += nbytes - take
