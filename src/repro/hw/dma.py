"""TX and RX DMA engine models.

The engines are the SeaStar's workhorses: the TX engine reads message data
from host memory over HT and packetizes it onto the wire; the RX engine
de-multiplexes arriving packets into host buffers *according to commands
programmed by the firmware* (section 4.3).  Both are modeled as single
processes with an effective per-64-byte-packet processing cost that was
derived from the paper's measured peak bandwidth (see
``SeaStarConfig.tx_dma_per_packet``) — that one number subsumes the HT
transfer, engine occupancy and link serialization of the steady-state
pipeline, which is why per-chunk HT time is *not* charged separately (it
would double count the bottleneck).  One HT round-trip latency is charged
per message for the initial descriptor/data fetch.

Key behavioural points reproduced:

* All transmits serialize through a single TX FIFO regardless of
  destination (paper: section 4.3) — the engine is one process.
* A transmit yields when the wire backs up (the fabric window models the
  TX FIFO filling).
* The RX engine can only deposit a message once the firmware has
  programmed a :class:`DepositPlan` for it; payload chunks of an
  unprogrammed message stall the engine (head-of-line), which is the
  mechanism behind both the generic-mode latency shape and the resource-
  exhaustion scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..net.fabric import Fabric, NetworkPort
from ..net.packet import WireChunk, bulk_run_end
from ..sim import Channel, Counters, Event, Simulator
from .config import SeaStarConfig

__all__ = ["Transmission", "DepositPlan", "TxDmaEngine", "RxDmaEngine"]


@dataclass(eq=False)
class Transmission:
    """One message queued on the TX engine."""

    chunks: list[WireChunk]
    on_sent: Callable[["Transmission"], None]
    """Invoked when the last chunk has been handed to the wire — the point
    at which the firmware unlinks the TX pending and posts completion."""

    tag: Any = None
    """Opaque firmware context (the lower pending)."""

    started_at: Optional[int] = None
    finished_at: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Payload bytes (including any inline header payload)."""
        return sum(c.nbytes for c in self.chunks)


@dataclass(eq=False)
class DepositPlan:
    """Firmware-programmed instructions for depositing one message.

    ``dest`` is a writable NumPy byte view (or None to discard);
    ``accept_bytes`` bounds how much of the body is stored (truncation —
    the rest is discarded, "implicitly the number of bytes to discard" in
    the paper's receive-command description).
    """

    msg_id: int
    dest: Optional[np.ndarray]
    accept_bytes: int
    on_complete: Callable[["DepositPlan"], None]
    tag: Any = None
    deposited_bytes: int = 0
    discarded_bytes: int = 0
    meta: dict = field(default_factory=dict)


class TxDmaEngine:
    """Transmit side: streams queued transmissions onto the fabric."""

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        fabric: Fabric,
        node_id: int,
    ):
        self.sim = sim
        self.config = config
        self.fabric = fabric
        self.node_id = node_id
        self.queue: Channel = Channel(sim, name=f"txq:{node_id}")
        self.counters = Counters()
        self.busy_time = 0
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.m_busy = None
        """Optional metrics :class:`~repro.metrics.Timeline` (chunk engine)."""
        self.m_fetch = None
        """Optional metrics timeline for the per-message HT header fetch."""
        self.m_msg_bytes = None
        """Optional metrics :class:`~repro.metrics.Histogram` of message sizes."""
        sim.process(self._run(), name=f"txdma:{node_id}")

    def submit(self, tx: Transmission) -> None:
        """Enqueue a message for transmission (firmware-side call)."""
        if not tx.chunks:
            raise ValueError("transmission has no chunks")
        self.queue.put(tx)
        self.counters.incr("submitted")

    def _run(self):
        cfg = self.config
        sim = self.sim
        queue_get = self.queue.get
        fabric_send = self.fabric.send
        counts = self.counters.counts()
        per_packet = cfg.tx_dma_per_packet
        ht_read = cfg.ht_read_latency
        while True:
            tx: Transmission = yield queue_get()
            tx.started_at = sim.now
            tracer = self.tracer
            m_busy = self.m_busy
            span = (
                tracer.begin("txdma.fetch", node=self.node_id,
                             component="txdma", msg_id=tx.chunks[0].msg_id)
                if tracer is not None else None
            )
            # Initial fetch of header/descriptor from host memory.
            # (int yields are flattened sleeps — see repro.sim.core)
            yield ht_read
            if tracer is not None:
                tracer.end(span)
            if self.m_fetch is not None:
                self.m_fetch.add(sim.now - ht_read, sim.now)
            chunks = tx.chunks
            n = len(chunks)
            # A span tracer or busy timeline on this engine observes every
            # chunk boundary, so the whole message runs chunk-exact.
            may_bulk = sim.bulk_events and tracer is None and m_busy is None
            i = 0
            while i < n:
                chunk = chunks[i]
                cspan = (
                    tracer.begin("txdma.chunk", node=self.node_id,
                                 component="txdma", msg_id=chunk.msg_id,
                                 seq=chunk.seq, npackets=chunk.npackets)
                    if tracer is not None else None
                )
                npackets = chunk.npackets
                cost = npackets * per_packet
                yield cost
                self.busy_time += cost
                if m_busy is not None:
                    m_busy.add(sim.now - cost, sim.now)
                if may_bulk and not chunk.is_header:
                    # The previous chunk drained during this chunk's cost
                    # sleep (the clean-pipe inequality _bulk_ready checks),
                    # so the pipe is provably quiescent right now — the one
                    # point where batching is sound.  The run-final chunk
                    # always goes through the real pipeline so a trailing
                    # odd-size chunk overlaps an in-transit predecessor
                    # exactly as on the chunk-exact path.
                    end = bulk_run_end(chunks, i)
                    nbulk = end - 1 - i
                    if nbulk >= 1:
                        ready = self._bulk_ready(chunk, npackets, cost)
                        if ready is not None:
                            # one heap record stands in for nbulk full
                            # release/transit/deposit cycles
                            yield nbulk * cost
                            self.busy_time += nbulk * cost
                            self._bulk_commit(ready, chunks, i, end - 1, counts)
                            sim.note_bulk(10 * nbulk - 1)
                            i = end - 1
                            chunk = chunks[i]
                # Blocks when the wire window (TX FIFO) is full: the
                # transmit state machine "yields ... until there is more
                # room in the FIFO".
                yield fabric_send(chunk)
                if tracer is not None:
                    tracer.end(cspan)
                counts["packets"] += chunk.npackets
                i += 1
            tx.finished_at = sim.now
            counts["messages"] += 1
            if self.m_msg_bytes is not None:
                self.m_msg_bytes.observe(tx.total_bytes)
            tx.on_sent(tx)

    # -- bulk event batching --------------------------------------------------
    def _bulk_ready(self, chunk: WireChunk, npackets: int, cost: int):
        """Prove the (src, dst) pipe is unobserved, clean, and fast enough.

        Returns ``(rx_engine, plan)`` when a run of ``npackets``-sized
        chunks may be batched, else None.  The conditions mirror, one for
        one, every way a per-chunk boundary could be observed or could
        interleave with other traffic:

        * no span tracer, metrics registry, or fault injector anywhere on
          the path (engine-level observers are checked by the caller);
        * no stochastic link retries (the RNG must be drawn per chunk);
        * exactly two attached ports — a third node could share the wire
          counters mid-run;
        * the clean-pipe inequality: one chunk's TX cost covers its whole
          serialize + flight + deposit transit, so the previous chunk has
          provably drained by the time the next is released;
        * serializer, in-flight window, arrival process, and RX engine all
          parked empty on their stores;
        * the receiver's :class:`DepositPlan` already programmed (a
          head-of-line stall must run chunk-exact).
        """
        fabric = self.fabric
        if (
            fabric.tracer is not None
            or fabric.metrics is not None
            or fabric.injector is not None
            or len(fabric.ports) != 2
        ):
            return None
        cfg = self.config
        if cfg.link_crc_retry_prob > 0.0:
            return None
        pipe = fabric._pipes.get((chunk.src, chunk.dst))
        if pipe is None or pipe.hops < 1:
            return None
        link = fabric.link
        transit = link.chunk_transit_time(npackets, pipe.hops)
        if cost < transit + npackets * cfg.rx_dma_per_packet:
            return None
        window = pipe.window
        if window._items or window._putters or not window._getters:
            return None
        in_flight = pipe._in_flight
        if in_flight._items or in_flight._putters or not in_flight._getters:
            return None
        port = fabric.ports.get(chunk.dst)
        if port is None:
            return None
        rx_engine = port.rx_engine
        if (
            rx_engine is None
            or rx_engine.tracer is not None
            or rx_engine.m_busy is not None
            or rx_engine._plan_waiter is not None
        ):
            return None
        rx_store = port.rx
        if rx_store._items or rx_store._putters or not rx_store._getters:
            return None
        plan = rx_engine._plans.get(chunk.msg_id)
        if plan is None:
            return None
        return rx_engine, plan

    def _bulk_commit(self, ready, chunks: list[WireChunk], start: int,
                     end: int, counts) -> None:
        """Commit the side effects of ``chunks[start:end]`` released in bulk.

        Every counter, busy-time, and deposit mutation the chunk-exact
        path would have made across those release/transit/deposit cycles,
        applied in one pass; the caller has already slept the batched TX
        cost and verified via :meth:`_bulk_ready` that nothing else could
        have touched the pipe in between.
        """
        nbulk = end - start
        npackets = chunks[start].npackets
        fabric = self.fabric
        counts["packets"] += npackets * nbulk
        fcounts = fabric.counters.counts()
        fcounts["chunks_sent"] += nbulk
        fcounts["packets_sent"] += npackets * nbulk
        fcounts["chunks_delivered"] += nbulk
        fabric.link.carry(npackets, nbulk)
        port = fabric.ports[chunks[start].dst]
        pcounts = port.stats.counts()
        pcounts["chunks_received"] += nbulk
        pcounts["packets_received"] += npackets * nbulk
        rx_engine, plan = ready
        rx_engine.busy_time += npackets * self.config.rx_dma_per_packet * nbulk
        rx_engine.counters.counts()["packets"] += npackets * nbulk
        deposit = rx_engine._deposit
        for k in range(start, end):
            deposit(plan, chunks[k])


class RxDmaEngine:
    """Receive side: consumes arriving chunks from the node's port.

    Header chunks are handed to ``on_header`` (the firmware's new-message
    handler).  Payload chunks wait for their :class:`DepositPlan`, then are
    copied into the destination buffer with per-packet cost.
    """

    def __init__(
        self,
        sim: Simulator,
        config: SeaStarConfig,
        port: NetworkPort,
        on_header: Callable[[WireChunk], None],
    ):
        self.sim = sim
        self.config = config
        self.port = port
        self.on_header = on_header
        self.counters = Counters()
        self.busy_time = 0
        self.tracer = None
        """Optional machine-wide :class:`~repro.sim.SpanTracer`."""
        self.m_busy = None
        """Optional metrics :class:`~repro.metrics.Timeline` (header+deposit)."""
        self._plans: dict[int, DepositPlan] = {}
        self._plan_waiter: Optional[tuple[int, Event]] = None
        # the TX-side bulk gate reaches the receive engine through the port
        port.rx_engine = self
        sim.process(self._run(), name=f"rxdma:{port.node_id}")

    # -- firmware interface ---------------------------------------------------
    def program(self, plan: DepositPlan) -> None:
        """Install the deposit plan for ``plan.msg_id`` (firmware call)."""
        if plan.msg_id in self._plans:
            raise ValueError(f"message {plan.msg_id} already programmed")
        self._plans[plan.msg_id] = plan
        if self._plan_waiter is not None and self._plan_waiter[0] == plan.msg_id:
            _, event = self._plan_waiter
            self._plan_waiter = None
            event.succeed(plan)

    def pending_plans(self) -> int:
        """Number of installed-but-unfinished plans."""
        return len(self._plans)

    # -- engine ----------------------------------------------------------------
    def _run(self):
        cfg = self.config
        sim = self.sim
        rx_get = self.port.rx.get
        plans = self._plans
        counts = self.counters.counts()
        per_packet = cfg.rx_dma_per_packet
        deposit = self._deposit
        while True:
            chunk: WireChunk = yield rx_get()
            tracer = self.tracer
            m_busy = self.m_busy
            if chunk.is_header:
                span = (
                    tracer.begin("rxdma.header", node=self.port.node_id,
                                 component="rxdma", msg_id=chunk.msg_id)
                    if tracer is not None else None
                )
                cost = chunk.npackets * per_packet
                yield cost
                self.busy_time += cost
                if m_busy is not None:
                    m_busy.add(sim.now - cost, sim.now)
                if tracer is not None:
                    tracer.end(span)
                counts["headers"] += 1
                self.on_header(chunk)
                continue
            plan = plans.get(chunk.msg_id)
            if plan is None:
                # Head-of-line stall until the firmware programs the engine
                # for this message (generic mode: after the host interrupt
                # and match).  Subsequent traffic backs up behind us,
                # backpressuring the wire.
                waiter = Event(sim)
                self._plan_waiter = (chunk.msg_id, waiter)
                counts["stalls"] += 1
                plan = yield waiter
            npackets = chunk.npackets
            span = (
                tracer.begin("rxdma.deposit", node=self.port.node_id,
                             component="rxdma", msg_id=chunk.msg_id,
                             seq=chunk.seq, npackets=npackets)
                if tracer is not None else None
            )
            cost = npackets * per_packet
            yield cost
            self.busy_time += cost
            if m_busy is not None:
                m_busy.add(sim.now - cost, sim.now)
            if tracer is not None:
                tracer.end(span)
            counts["packets"] += npackets
            deposit(plan, chunk)
            if chunk.is_last:
                del plans[chunk.msg_id]
                counts["messages"] += 1
                plan.on_complete(plan)

    def _deposit(self, plan: DepositPlan, chunk: WireChunk) -> None:
        """Copy the accepted portion of a payload chunk to host memory."""
        start = chunk.payload_offset
        nbytes = chunk.nbytes
        end = start + nbytes
        dest = plan.dest
        if end <= plan.accept_bytes:
            # common case: the whole chunk is accepted
            if nbytes > 0 and dest is not None and chunk.payload is not None:
                dest[start:end] = chunk.payload
            plan.deposited_bytes += nbytes
            return
        take = max(0, plan.accept_bytes - start)
        if take > 0 and dest is not None and chunk.payload is not None:
            dest[start : start + take] = chunk.payload[:take]
        plan.deposited_bytes += take
        plan.discarded_bytes += nbytes - take
