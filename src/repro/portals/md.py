"""Memory descriptors.

An MD describes a region of a process's memory plus the rules for using
it: which operations may land in it, how offsets are managed, when it
expires (threshold), and which event queue hears about activity.  MDs are
either *attached* to a match entry (making the memory a target) or *bound*
free-floating (making it a source for put/get initiations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .constants import PTL_MD_THRESH_INF, MDOptions
from .errors import PtlMDIllegal

__all__ = ["MemoryDescriptor", "md_from_buffer"]

_md_ids = itertools.count(1)


@dataclass(eq=False)
class MemoryDescriptor:
    """One memory descriptor.

    ``buffer`` must be a 1-D uint8 NumPy array (a view into the owning
    process's memory).  ``threshold`` counts remaining permitted
    operations; ``PTL_MD_THRESH_INF`` never exhausts.
    """

    buffer: Optional[np.ndarray]
    threshold: int = PTL_MD_THRESH_INF
    options: MDOptions = MDOptions(0)
    user_ptr: Any = None
    eq: Any = None  # EventQueue | None
    md_id: int = 0
    local_offset: int = 0
    active: bool = True
    unlink_when_exhausted: bool = False
    pending_ops: int = 0
    """Operations in flight against this MD (guards PtlMDUnlink)."""

    on_unlink: Any = None
    """Callback fired exactly once when the MD retires (explicit or
    auto-unlink) — the API layer uses it to release the NI's MD slot."""

    def __post_init__(self) -> None:
        if self.buffer is not None:
            if self.buffer.dtype != np.uint8 or self.buffer.ndim != 1:
                raise PtlMDIllegal("MD buffer must be a 1-D uint8 array")
        if self.threshold != PTL_MD_THRESH_INF and self.threshold < 0:
            raise PtlMDIllegal(f"negative MD threshold: {self.threshold}")
        if self.md_id == 0:
            self.md_id = next(_md_ids)

    @property
    def length(self) -> int:
        """Bytes the MD spans."""
        return 0 if self.buffer is None else int(self.buffer.shape[0])

    @property
    def exhausted(self) -> bool:
        """True once the threshold has been consumed."""
        return self.threshold == 0

    def accepts(self, *, is_put: bool) -> bool:
        """Can this MD be the target of the given operation kind now?"""
        if not self.active or self.exhausted:
            return False
        needed = MDOptions.OP_PUT if is_put else MDOptions.OP_GET
        return bool(self.options & needed)

    def consume_threshold(self) -> None:
        """Spend one threshold unit (no-op when infinite)."""
        if self.threshold == PTL_MD_THRESH_INF:
            return
        if self.threshold <= 0:
            raise PtlMDIllegal("threshold consumed below zero")
        self.threshold -= 1

    def region(self, offset: int, nbytes: int) -> np.ndarray:
        """Writable/readable view of ``nbytes`` at ``offset``."""
        if offset < 0 or offset + nbytes > self.length:
            raise PtlMDIllegal(
                f"region [{offset}, {offset + nbytes}) outside MD of "
                f"length {self.length}"
            )
        return self.buffer[offset : offset + nbytes]

    def events_enabled(self, *, start: bool) -> bool:
        """Should a START (or END) event be generated for this MD?"""
        if self.eq is None:
            return False
        flag = (
            MDOptions.EVENT_START_DISABLE if start else MDOptions.EVENT_END_DISABLE
        )
        return not (self.options & flag)


def md_from_buffer(
    buffer: Optional[np.ndarray],
    *,
    threshold: int = PTL_MD_THRESH_INF,
    options: MDOptions = MDOptions.OP_PUT,
    user_ptr: Any = None,
    eq: Any = None,
    unlink: bool = False,
) -> MemoryDescriptor:
    """Convenience constructor mirroring filling in a ``ptl_md_t``."""
    return MemoryDescriptor(
        buffer=buffer,
        threshold=threshold,
        options=options,
        user_ptr=user_ptr,
        eq=eq,
        unlink_when_exhausted=unlink,
    )
