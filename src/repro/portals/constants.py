"""Portals 3.3 constants.

Names follow the Portals 3.3 specification (SAND99-2959 and the 2002 CAC
paper, refs [5] and [6] of the reproduced paper) so code written against
this module reads like code written against the C API.
"""

from __future__ import annotations

import enum

__all__ = [
    "PTL_NID_ANY",
    "PTL_PID_ANY",
    "PTL_IFACE_DEFAULT",
    "PTL_MD_THRESH_INF",
    "PTL_ACK_REQ",
    "PTL_NOACK_REQ",
    "PTL_UNLINK",
    "PTL_RETAIN",
    "PTL_INS_BEFORE",
    "PTL_INS_AFTER",
    "MDOptions",
    "EventKind",
    "MsgType",
    "NIFailType",
    "PTL_PT_INDEX_ANY",
]

# -- wildcards ---------------------------------------------------------------
PTL_NID_ANY: int = -1
"""Matches any node id in a match entry's source criterion."""

PTL_PID_ANY: int = -1
"""Matches any process id in a match entry's source criterion."""

PTL_PT_INDEX_ANY: int = -1
"""Any portal-table index (administrative interfaces only)."""

PTL_IFACE_DEFAULT: int = 0
"""The default network interface number."""

PTL_MD_THRESH_INF: int = -1
"""Infinite memory-descriptor threshold (never exhausts)."""

# -- acknowledgement requests ---------------------------------------------------
PTL_ACK_REQ: int = 1
"""Request an acknowledgement for a put."""

PTL_NOACK_REQ: int = 0
"""No acknowledgement requested."""

# -- unlink behaviour ------------------------------------------------------------
PTL_UNLINK: int = 1
"""Unlink the ME/MD automatically once exhausted."""

PTL_RETAIN: int = 0
"""Keep the ME/MD linked when exhausted."""

# -- match-list insertion position ---------------------------------------------
PTL_INS_BEFORE: int = 0
"""Insert the new match entry before the reference entry."""

PTL_INS_AFTER: int = 1
"""Insert the new match entry after the reference entry."""


class MDOptions(enum.IntFlag):
    """Memory-descriptor option flags (PTL_MD_*)."""

    OP_PUT = 0x01
    """The MD may be the target of put operations."""

    OP_GET = 0x02
    """The MD may be the target of get operations."""

    TRUNCATE = 0x04
    """Accept messages longer than the available space, truncated."""

    MANAGE_REMOTE = 0x08
    """Use the initiator-supplied offset instead of the locally managed
    (auto-incrementing) offset."""

    EVENT_START_DISABLE = 0x10
    """Suppress *_START events for this MD."""

    EVENT_END_DISABLE = 0x20
    """Suppress *_END events for this MD."""

    ACK_DISABLE = 0x40
    """Never send acknowledgements for operations on this MD."""


class EventKind(enum.Enum):
    """Portals event types delivered to event queues."""

    GET_START = "PTL_EVENT_GET_START"
    GET_END = "PTL_EVENT_GET_END"
    PUT_START = "PTL_EVENT_PUT_START"
    PUT_END = "PTL_EVENT_PUT_END"
    REPLY_START = "PTL_EVENT_REPLY_START"
    REPLY_END = "PTL_EVENT_REPLY_END"
    SEND_START = "PTL_EVENT_SEND_START"
    SEND_END = "PTL_EVENT_SEND_END"
    ACK = "PTL_EVENT_ACK"
    UNLINK = "PTL_EVENT_UNLINK"


class MsgType(enum.Enum):
    """Wire-level message kinds."""

    PUT = "put"
    GET = "get"
    REPLY = "reply"
    ACK = "ack"
    NAK = "nak"
    """Go-back-N negative acknowledgement (resource-exhaustion recovery —
    the protocol the paper describes as in progress)."""

    SACK = "sack"
    """Cumulative transport acknowledgement ("all requests through
    sequence N accepted"), sent by receivers when the reliable transport
    is enabled so sender watchdogs can retire retransmission state.
    Purely firmware-to-firmware; never surfaces as a Portals event."""


class NIFailType(enum.Enum):
    """Failure annotations on events (ni_fail_type)."""

    OK = "PTL_NI_OK"
    DROPPED = "PTL_NI_DROPPED"
    FAIL = "PTL_NI_FAIL"
