"""The portal table: the per-process array of match lists."""

from __future__ import annotations

from .errors import PtlPtIndexInvalid
from .me import MatchList

__all__ = ["PortalTable"]


class PortalTable:
    """A process's portal table.

    Each index holds an independent match list.  Upper layers conventionally
    reserve indices for themselves (our MPI uses one for point-to-point and
    one for rendezvous source exposure, NetPIPE uses index 4).
    """

    DEFAULT_SIZE = 64

    def __init__(self, size: int = DEFAULT_SIZE):
        if size < 1:
            raise ValueError("portal table needs at least one entry")
        self.size = size
        self._lists: list[MatchList] = [MatchList() for _ in range(size)]

    def __len__(self) -> int:
        return self.size

    def match_list(self, ptl_index: int) -> MatchList:
        """The match list at ``ptl_index``."""
        if not 0 <= ptl_index < self.size:
            raise PtlPtIndexInvalid(
                f"portal index {ptl_index} outside table of size {self.size}"
            )
        return self._lists[ptl_index]

    def total_entries(self) -> int:
        """Match entries across the whole table (resource accounting)."""
        return sum(len(ml) for ml in self._lists)
