"""Portals 3.3 — the paper's primary contribution.

Data structures (MDs, MEs, EQs, the portal table), matching semantics,
the wire header, and the functional API applications call.
"""

from .api import PortalsAPI
from .constants import (
    PTL_ACK_REQ,
    PTL_IFACE_DEFAULT,
    PTL_INS_AFTER,
    PTL_INS_BEFORE,
    PTL_MD_THRESH_INF,
    PTL_NID_ANY,
    PTL_NOACK_REQ,
    PTL_PID_ANY,
    PTL_RETAIN,
    PTL_UNLINK,
    EventKind,
    MDOptions,
    MsgType,
    NIFailType,
)
from .eq import EventQueue
from .errors import (
    NicPanic,
    PortalsError,
    PtlEQDropped,
    PtlEQEmpty,
    PtlHandleInvalid,
    PtlMDIllegal,
    PtlMDInUse,
    PtlNoInit,
    PtlNoSpace,
    PtlProcessInvalid,
    PtlPtIndexInvalid,
    PtlSegvError,
)
from .events import PortalsEvent
from .header import PortalsHeader, ProcessId
from .matching import MatchResult, MatchStatus, commit_operation, match_request
from .md import MemoryDescriptor, md_from_buffer
from .me import MatchEntry, MatchList, bits_match, source_match
from .ni import NetworkInterface, NILimits
from .table import PortalTable

__all__ = [
    "PortalsAPI",
    "ProcessId",
    "PortalsHeader",
    "PortalsEvent",
    "EventQueue",
    "MemoryDescriptor",
    "md_from_buffer",
    "MatchEntry",
    "MatchList",
    "bits_match",
    "source_match",
    "PortalTable",
    "NetworkInterface",
    "NILimits",
    "MatchResult",
    "MatchStatus",
    "match_request",
    "commit_operation",
    "EventKind",
    "MDOptions",
    "MsgType",
    "NIFailType",
    "PTL_ACK_REQ",
    "PTL_NOACK_REQ",
    "PTL_NID_ANY",
    "PTL_PID_ANY",
    "PTL_MD_THRESH_INF",
    "PTL_UNLINK",
    "PTL_RETAIN",
    "PTL_INS_BEFORE",
    "PTL_INS_AFTER",
    "PTL_IFACE_DEFAULT",
    "PortalsError",
    "PtlNoInit",
    "PtlNoSpace",
    "PtlHandleInvalid",
    "PtlMDInUse",
    "PtlMDIllegal",
    "PtlEQEmpty",
    "PtlEQDropped",
    "PtlPtIndexInvalid",
    "PtlProcessInvalid",
    "PtlSegvError",
    "NicPanic",
]
