"""The functional Portals 3.3 API.

This is the interface applications program against — the modeled
equivalent of ``portals3.h``.  Every method is a simulation coroutine
(``yield from api.PtlPut(...)``) because even user-space bookkeeping costs
time; the heavy lifting and its timing live behind the *bridge*, the Cray
abstraction (section 3.2) that routes API calls to the Portals library
over the path appropriate for the process type:

* ``qkbridge`` — Catamount application, 75 ns trap into the QK;
* ``ukbridge`` — Linux user process, syscall into the kernel library;
* ``kbridge``  — Linux kernel client (Lustre), direct function call;
* accelerated — commands posted straight to the firmware mailbox.

The API object performs user-space validation and state bookkeeping, then
defers to the bridge.  Data-movement calls return as soon as the command
is issued (Portals is asynchronous); completion arrives via event queues.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from ..sim import Simulator
from .constants import (
    PTL_ACK_REQ,
    PTL_MD_THRESH_INF,
    MDOptions,
)
from .eq import EventQueue
from .errors import (
    PtlHandleInvalid,
    PtlMDIllegal,
    PtlMDInUse,
    PtlProcessInvalid,
)
from .header import ProcessId
from .md import MemoryDescriptor
from .me import MatchEntry
from .ni import NetworkInterface

__all__ = ["PortalsAPI"]


class PortalsAPI:
    """Portals 3.3 operations bound to one process's NI and bridge."""

    def __init__(self, sim: Simulator, ni: NetworkInterface, bridge: Any):
        self.sim = sim
        self.ni = ni
        self.bridge = bridge

    # ------------------------------------------------------------------
    # Identity and interface status
    # ------------------------------------------------------------------
    def PtlGetId(self) -> Generator:
        """Return this process's (nid, pid)."""
        yield from self.bridge.admin()
        return self.ni.id

    def PtlNIStatus(self, register: str = "drops") -> Generator:
        """Read one NI status register (spec: ptl_sr_index_t).

        Registers: ``drops`` (messages dropped at this NI) and any other
        counter the stack maintains on the NI.
        """
        yield from self.bridge.admin()
        return self.ni.counters[register]

    def PtlNIDist(self, target: ProcessId) -> Generator:
        """Network distance (hops) to ``target``'s node.

        The spec exposes this so upper layers can make locality-aware
        decisions; we answer from the routing tables via the bridge.
        """
        yield from self.bridge.admin()
        return self.bridge.distance(target)

    # ------------------------------------------------------------------
    # Event queues
    # ------------------------------------------------------------------
    def PtlEQAlloc(self, count: int) -> Generator:
        """Allocate an event queue of ``count`` entries."""
        yield from self.bridge.admin()
        self.ni.register_eq()
        eq = EventQueue(self.sim, count)
        tracer = getattr(self.bridge, "tracer", None)
        if tracer is not None:
            eq.tracer = tracer
            eq.trace_node = self.bridge.node_id
        return eq

    def PtlEQFree(self, eq: EventQueue) -> Generator:
        """Release an event queue."""
        yield from self.bridge.admin()
        if eq.freed:
            raise PtlHandleInvalid("EQ already freed")
        eq.freed = True
        self.ni.unregister_eq()

    def PtlEQGet(self, eq: EventQueue) -> Generator:
        """Non-blocking event read; raises PtlEQEmpty when none.

        Charges one user-space poll (reading the next slot — events post
        atomically, so no lock or trap is needed)."""
        yield from self.bridge.eq_poll()
        self._check_eq(eq)
        return eq.get()

    def PtlEQWait(self, eq: EventQueue) -> Generator:
        """Block until an event is available, then return it."""
        self._check_eq(eq)
        while True:
            yield from self.bridge.eq_poll()
            event = eq.try_get()
            if event is not None:
                return event
            yield eq.wait_signal()

    def PtlEQPoll(self, eqs: list[EventQueue], timeout: Optional[int] = None) -> Generator:
        """Wait on several EQs; returns ``(eq, event)`` or ``None`` on
        timeout (``timeout`` in ps)."""
        for eq in eqs:
            self._check_eq(eq)
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            yield from self.bridge.eq_poll()
            for eq in eqs:
                event = eq.try_get()
                if event is not None:
                    return eq, event
            signals = [eq.wait_signal() for eq in eqs]
            if deadline is not None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    return None
                signals.append(self.sim.timeout(remaining))
            yield self.sim.any_of(signals)

    @staticmethod
    def _check_eq(eq: EventQueue) -> None:
        if eq.freed:
            raise PtlHandleInvalid("operation on freed EQ")

    # ------------------------------------------------------------------
    # Match entries
    # ------------------------------------------------------------------
    def PtlMEAttach(
        self,
        ptl_index: int,
        match_id: ProcessId,
        match_bits: int,
        ignore_bits: int = 0,
        *,
        unlink: bool = False,
        position_head: bool = False,
    ) -> Generator:
        """Create a match entry on portal ``ptl_index``.

        ``position_head`` selects PTL_INS at the head of the list; the
        default appends at the tail (spec: PTL_INS_AFTER existing
        entries), which is what overflow/unexpected entries want.
        """
        yield from self.bridge.admin()
        self.ni.register_me()
        me = MatchEntry(
            match_id=match_id,
            match_bits=match_bits,
            ignore_bits=ignore_bits,
            unlink_on_use=unlink,
            on_unlink=self.ni.unregister_me,
        )
        mlist = self.ni.table.match_list(ptl_index)
        if position_head:
            mlist.attach_head(me)
        else:
            mlist.attach_tail(me)
        me.ptl_index = ptl_index
        return me

    def PtlMEInsert(
        self,
        base: MatchEntry,
        match_id: ProcessId,
        match_bits: int,
        ignore_bits: int = 0,
        *,
        unlink: bool = False,
        after: bool = False,
    ) -> Generator:
        """Insert a new entry relative to an existing one."""
        yield from self.bridge.admin()
        if not base.linked:
            raise PtlHandleInvalid("reference match entry is unlinked")
        self.ni.register_me()
        me = MatchEntry(
            match_id=match_id,
            match_bits=match_bits,
            ignore_bits=ignore_bits,
            unlink_on_use=unlink,
            on_unlink=self.ni.unregister_me,
        )
        mlist = self.ni.table.match_list(base.ptl_index)
        mlist.insert(base, me, after=after)
        me.ptl_index = base.ptl_index
        return me

    def PtlMEUnlink(self, me: MatchEntry) -> Generator:
        """Remove a match entry (and detach its MD)."""
        yield from self.bridge.admin()
        if not me.linked:
            raise PtlHandleInvalid("match entry already unlinked")
        mlist = self.ni.table.match_list(me.ptl_index)
        mlist.unlink(me)
        if me.on_unlink is not None:
            callback, me.on_unlink = me.on_unlink, None
            callback()
        md = me.md
        if md is not None and md.active:
            md.active = False
            if md.on_unlink is not None:
                callback, md.on_unlink = md.on_unlink, None
                callback()
        me.md = None

    # ------------------------------------------------------------------
    # Memory descriptors
    # ------------------------------------------------------------------
    def PtlMDAttach(
        self,
        me: MatchEntry,
        buffer: Optional[np.ndarray],
        *,
        threshold: int = PTL_MD_THRESH_INF,
        options: MDOptions = MDOptions.OP_PUT,
        user_ptr: Any = None,
        eq: Optional[EventQueue] = None,
        unlink: bool = False,
    ) -> Generator:
        """Attach an MD to a match entry, making its memory a target."""
        yield from self.bridge.admin()
        if not me.linked:
            raise PtlHandleInvalid("cannot attach MD to unlinked ME")
        if me.md is not None and me.md.active:
            raise PtlMDInUse("match entry already has an active MD")
        self.ni.register_md()
        md = MemoryDescriptor(
            buffer=buffer,
            threshold=threshold,
            options=options,
            user_ptr=user_ptr,
            eq=eq,
            unlink_when_exhausted=unlink,
            on_unlink=self.ni.unregister_md,
        )
        self.bridge.prepare_md(md)
        me.md = md
        return md

    def PtlMDBind(
        self,
        buffer: Optional[np.ndarray],
        *,
        threshold: int = PTL_MD_THRESH_INF,
        options: MDOptions = MDOptions(0),
        user_ptr: Any = None,
        eq: Optional[EventQueue] = None,
    ) -> Generator:
        """Create a free-floating MD (initiator side of put/get)."""
        yield from self.bridge.admin()
        self.ni.register_md()
        md = MemoryDescriptor(
            buffer=buffer,
            threshold=threshold,
            options=options,
            user_ptr=user_ptr,
            eq=eq,
            on_unlink=self.ni.unregister_md,
        )
        self.bridge.prepare_md(md)
        return md

    def PtlMDUnlink(self, md: MemoryDescriptor) -> Generator:
        """Release an MD; fails if operations are still in flight."""
        yield from self.bridge.admin()
        if not md.active:
            raise PtlHandleInvalid("MD already unlinked")
        if md.pending_ops > 0:
            raise PtlMDInUse(f"{md.pending_ops} operations outstanding")
        md.active = False
        if md.on_unlink is not None:
            callback, md.on_unlink = md.on_unlink, None
            callback()

    def PtlMDUpdate(
        self,
        md: MemoryDescriptor,
        *,
        new_threshold: Optional[int] = None,
        test_eq: Optional[EventQueue] = None,
    ) -> Generator:
        """Conditionally update an MD.

        If ``test_eq`` is given and non-empty the update is refused
        (returns False), mirroring the spec's atomic test-and-update used
        to close races between posting receives and draining events.
        """
        yield from self.bridge.admin()
        if not md.active:
            raise PtlHandleInvalid("MD is unlinked")
        if test_eq is not None and test_eq.pending > 0:
            return False
        if new_threshold is not None:
            md.threshold = new_threshold
        return True

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def PtlPut(
        self,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int = 0,
        *,
        ack_req: int = 0,
        remote_offset: int = 0,
        hdr_data: int = 0,
        local_offset: int = 0,
        length: Optional[int] = None,
    ) -> Generator:
        """Initiate a put from ``md`` to the matched memory at ``target``.

        Asynchronous: returns once the transmit command is issued.  A
        SEND_END event (and an ACK event, if ``ack_req=PTL_ACK_REQ`` and
        the target cooperates) arrives on ``md.eq``.
        """
        self._check_md_source(md, local_offset, length)
        nbytes = md.length - local_offset if length is None else length
        if target.nid < 0 or target.pid < 0:
            raise PtlProcessInvalid(f"bad target {target}")
        md.consume_threshold()
        md.pending_ops += 1
        yield from self.bridge.send_put(
            md=md,
            target=target,
            ptl_index=ptl_index,
            match_bits=match_bits,
            ack_req=ack_req == PTL_ACK_REQ,
            remote_offset=remote_offset,
            hdr_data=hdr_data,
            local_offset=local_offset,
            length=nbytes,
        )

    def PtlGet(
        self,
        md: MemoryDescriptor,
        target: ProcessId,
        ptl_index: int,
        match_bits: int = 0,
        *,
        remote_offset: int = 0,
        local_offset: int = 0,
        length: Optional[int] = None,
    ) -> Generator:
        """Initiate a get: fetch matched data at ``target`` into ``md``.

        Asynchronous: a REPLY_END event on ``md.eq`` signals the data has
        landed.
        """
        self._check_md_source(md, local_offset, length)
        nbytes = md.length - local_offset if length is None else length
        if target.nid < 0 or target.pid < 0:
            raise PtlProcessInvalid(f"bad target {target}")
        md.consume_threshold()
        md.pending_ops += 1
        yield from self.bridge.send_get(
            md=md,
            target=target,
            ptl_index=ptl_index,
            match_bits=match_bits,
            remote_offset=remote_offset,
            local_offset=local_offset,
            length=nbytes,
        )

    @staticmethod
    def _check_md_source(
        md: MemoryDescriptor, local_offset: int, length: Optional[int]
    ) -> None:
        if not md.active:
            raise PtlHandleInvalid("initiating on unlinked MD")
        if md.exhausted:
            raise PtlMDIllegal("MD threshold exhausted")
        end = md.length if length is None else local_offset + length
        if local_offset < 0 or end > md.length:
            raise PtlMDIllegal(
                f"local region [{local_offset}, {end}) outside MD length {md.length}"
            )
