"""The Portals wire header.

One 64-byte header packet precedes every message (section 4.3: "The header
is first DMA'ed out of the upper pending, followed by the payload").  The
header carries everything the target needs for matching; crucially, unlike
other one-sided interfaces, **the target of an operation is not a virtual
address** — the destination is resolved by matching these fields against
Portals structures at the receiver (section 3).

Up to 12 bytes of user payload ride along in the header packet
(``inline_data``), the small-message optimization responsible for the step
at 12 bytes in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from .constants import MsgType

__all__ = ["ProcessId", "PortalsHeader"]


@dataclass(frozen=True, order=True)
class ProcessId:
    """A Portals process identity: (node id, process id)."""

    nid: int
    pid: int

    def __str__(self) -> str:
        return f"{self.nid}:{self.pid}"


@dataclass(eq=False)
class PortalsHeader:
    """Fields of the 64-byte wire header.

    ``initiator_ctx`` is the initiator-side pending id echoed back in
    REPLY/ACK/NAK messages so the initiating NIC can complete the
    operation without a lookup by match bits.
    """

    op: MsgType
    src: ProcessId
    dst: ProcessId
    ptl_index: int = 0
    match_bits: int = 0
    length: int = 0
    """Payload length requested/carried (rlength at the target)."""

    offset: int = 0
    """Remote offset (honored only when the target MD manages the remote
    offset, PTL_MD_MANAGE_REMOTE)."""

    hdr_data: int = 0
    """64 bits of out-of-band user data carried on puts (MPI builds its
    envelope from this plus the match bits)."""

    ack_req: bool = False
    initiator_ctx: Optional[int] = None
    inline_data: Optional[np.ndarray] = None
    """Up to 12 bytes of payload piggybacked in the header packet."""

    wire_seq: int = 0
    """Per-(src,dst) firmware sequence number (go-back-N ordering)."""

    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("message length must be >= 0")
        if self.offset < 0:
            raise ValueError("remote offset must be >= 0")
        if self.inline_data is not None and len(self.inline_data) > 12:
            raise ValueError("inline header payload is limited to 12 bytes")

    @property
    def is_request(self) -> bool:
        """True for initiator-originated operations (PUT/GET)."""
        return self.op in (MsgType.PUT, MsgType.GET)
