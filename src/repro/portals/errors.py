"""Portals error conditions.

The C API returns ``PTL_*`` status codes; idiomatic Python raises.  Every
exception here corresponds to a spec return code (noted in the docstring)
so tests can assert precise failure modes.
"""

from __future__ import annotations

__all__ = [
    "PortalsError",
    "PtlHandleInvalid",
    "PtlNoInit",
    "PtlNoSpace",
    "PtlMDInUse",
    "PtlMDIllegal",
    "PtlEQEmpty",
    "PtlEQDropped",
    "PtlPtIndexInvalid",
    "PtlProcessInvalid",
    "PtlSegvError",
    "NicPanic",
]


class PortalsError(RuntimeError):
    """Base class for all Portals failures (generic PTL_FAIL)."""


class PtlNoInit(PortalsError):
    """PTL_NO_INIT: the interface was used before PtlNIInit."""


class PtlHandleInvalid(PortalsError):
    """PTL_HANDLE_INVALID: a stale or foreign object handle was used."""


class PtlNoSpace(PortalsError):
    """PTL_NO_SPACE: a resource limit (MEs, MDs, EQs, pendings) was hit."""


class PtlMDInUse(PortalsError):
    """PTL_MD_IN_USE: unlink attempted while operations are outstanding."""


class PtlMDIllegal(PortalsError):
    """PTL_MD_ILLEGAL: malformed memory descriptor."""


class PtlEQEmpty(PortalsError):
    """PTL_EQ_EMPTY: non-blocking get on an empty event queue."""


class PtlEQDropped(PortalsError):
    """PTL_EQ_DROPPED: events were lost to EQ overflow before this get."""


class PtlPtIndexInvalid(PortalsError):
    """PTL_PT_INDEX_INVALID: portal table index out of range."""


class PtlProcessInvalid(PortalsError):
    """PTL_PROCESS_INVALID: malformed or unknown target process id."""


class PtlSegvError(PortalsError):
    """PTL_SEGV: an MD referenced memory outside the process's region."""


class NicPanic(RuntimeError):
    """Firmware resource exhaustion with recovery disabled.

    The paper (section 4.3): "The current approach is to panic the node,
    which results in application failure."  Raised by the firmware model
    when a free list empties in ``panic`` mode.
    """
