"""The per-process network interface object.

A process's NI owns all of its Portals state: identity, the portal table,
and the registries (with limits) of MDs, MEs and EQs.  In generic mode
this state is manipulated by the OS kernel; in accelerated mode the match
structures are mirrored to the firmware — either way the *state* lives
here and the execution context merely charges different processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Counters
from .errors import PtlNoSpace
from .header import ProcessId
from .table import PortalTable

__all__ = ["NILimits", "NetworkInterface"]


@dataclass(frozen=True)
class NILimits:
    """Resource limits reported/enforced by PtlNIInit."""

    max_mds: int = 1024
    max_mes: int = 4096
    max_eqs: int = 64
    pt_size: int = PortalTable.DEFAULT_SIZE
    max_md_iovecs: int = 1
    """Portals 3.3 on SeaStar: accelerated mode does not support
    non-contiguous buffers; generic mode handles paging OS-side."""


@dataclass
class NetworkInterface:
    """All Portals state for one (nid, pid)."""

    id: ProcessId
    limits: NILimits = field(default_factory=NILimits)
    accelerated: bool = False
    """True when this process runs in accelerated mode (firmware-side
    matching, polled completion — section 3.3 'future work', implemented
    here as an extension)."""

    def __post_init__(self) -> None:
        self.table = PortalTable(self.limits.pt_size)
        self.counters = Counters()
        self._md_count = 0
        self._me_count = 0
        self._eq_count = 0

    # -- registry accounting (PtlNoSpace enforcement) ------------------------
    def register_md(self) -> None:
        """Account one new MD against the limit."""
        if self._md_count >= self.limits.max_mds:
            raise PtlNoSpace(f"NI {self.id}: MD limit {self.limits.max_mds}")
        self._md_count += 1

    def unregister_md(self) -> None:
        """Release one MD slot."""
        self._md_count -= 1

    def register_me(self) -> None:
        """Account one new ME against the limit."""
        if self._me_count >= self.limits.max_mes:
            raise PtlNoSpace(f"NI {self.id}: ME limit {self.limits.max_mes}")
        self._me_count += 1

    def unregister_me(self) -> None:
        """Release one ME slot."""
        self._me_count -= 1

    def register_eq(self) -> None:
        """Account one new EQ against the limit."""
        if self._eq_count >= self.limits.max_eqs:
            raise PtlNoSpace(f"NI {self.id}: EQ limit {self.limits.max_eqs}")
        self._eq_count += 1

    def unregister_eq(self) -> None:
        """Release one EQ slot."""
        self._eq_count -= 1

    @property
    def md_count(self) -> int:
        """Live MDs."""
        return self._md_count

    @property
    def me_count(self) -> int:
        """Live MEs."""
        return self._me_count

    @property
    def eq_count(self) -> int:
        """Live EQs."""
        return self._eq_count
