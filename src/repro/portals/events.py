"""Portals events as delivered to event queues."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .constants import EventKind, NIFailType
from .header import ProcessId

__all__ = ["PortalsEvent"]


@dataclass(eq=False)
class PortalsEvent:
    """One entry in a Portals event queue.

    Field names follow the ``ptl_event_t`` of the spec:

    * ``rlength`` — the length requested by the initiator;
    * ``mlength`` — the length actually manipulated (post-truncation);
    * ``offset`` — the offset within the MD at which data landed;
    * ``md_user_ptr`` — the user pointer of the MD involved;
    * ``hdr_data`` — the initiator's out-of-band header data;
    * ``ni_fail_type`` — OK, or why the operation failed.
    """

    kind: EventKind
    initiator: Optional[ProcessId] = None
    ptl_index: int = 0
    match_bits: int = 0
    rlength: int = 0
    mlength: int = 0
    offset: int = 0
    hdr_data: int = 0
    md_user_ptr: Any = None
    md_handle: Any = None
    ni_fail_type: NIFailType = NIFailType.OK
    sequence: int = 0
    """EQ-assigned monotonic sequence number."""

    sim_time: int = 0
    """Simulation timestamp (ps) at which the event was posted."""

    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def is_end(self) -> bool:
        """True for *_END completion events."""
        return self.kind in (
            EventKind.PUT_END,
            EventKind.GET_END,
            EventKind.REPLY_END,
            EventKind.SEND_END,
        )
