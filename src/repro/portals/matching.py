"""Platform-independent Portals matching and commit logic.

This module is the modeled equivalent of the paper's "platform-independent
Portals library code": the exact same functions are invoked by the host
kernel in *generic* mode (under a 2 us interrupt) and by the firmware in
*accelerated* mode (on the PowerPC, saving the interrupt).  It is pure
logic — callers charge the appropriate processor for the time it takes.

The flow for an incoming request header:

1. :func:`match_request` walks the match list and resolves offset/length
   (truncation) against the matched MD — no state is modified.
2. The caller arranges the deposit/read (DMA program, or inline copy).
3. :func:`commit_operation` burns MD threshold, advances the locally
   managed offset, and performs auto-unlink, returning the events to post.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .constants import EventKind, MDOptions, MsgType, NIFailType
from .events import PortalsEvent
from .header import PortalsHeader
from .md import MemoryDescriptor
from .me import MatchEntry, MatchList
from .table import PortalTable

__all__ = ["MatchStatus", "MatchResult", "match_request", "commit_operation"]


class MatchStatus(enum.Enum):
    """Outcome of matching one incoming request."""

    MATCHED = "matched"
    DROPPED_NO_MATCH = "dropped_no_match"
    """No match entry accepted the header."""

    DROPPED_NO_SPACE = "dropped_no_space"
    """An entry matched but couldn't hold the data and truncation was
    disabled."""


@dataclass
class MatchResult:
    """Resolved target of an incoming request."""

    status: MatchStatus
    me: Optional[MatchEntry] = None
    md: Optional[MemoryDescriptor] = None
    offset: int = 0
    mlength: int = 0
    rlength: int = 0

    @property
    def matched(self) -> bool:
        """True when data may be moved."""
        return self.status is MatchStatus.MATCHED


def match_request(table: PortalTable, hdr: PortalsHeader) -> MatchResult:
    """Resolve an incoming PUT/GET header against a portal table.

    Pure: modifies nothing.  The caller must later call
    :func:`commit_operation` exactly once if it proceeds with the
    operation.
    """
    if hdr.op not in (MsgType.PUT, MsgType.GET):
        raise ValueError(f"match_request only handles requests, got {hdr.op}")
    is_put = hdr.op is MsgType.PUT
    mlist = table.match_list(hdr.ptl_index)
    me = mlist.first_match(hdr.src, hdr.match_bits, is_put=is_put)
    if me is None:
        return MatchResult(MatchStatus.DROPPED_NO_MATCH, rlength=hdr.length)
    md = me.md
    assert md is not None  # first_match guarantees an accepting MD
    if md.options & MDOptions.MANAGE_REMOTE:
        offset = hdr.offset
    else:
        offset = md.local_offset
    available = max(0, md.length - offset)
    if hdr.length <= available:
        mlength = hdr.length
    elif md.options & MDOptions.TRUNCATE:
        mlength = available
    else:
        return MatchResult(
            MatchStatus.DROPPED_NO_SPACE, me=me, md=md, rlength=hdr.length
        )
    return MatchResult(
        MatchStatus.MATCHED,
        me=me,
        md=md,
        offset=offset,
        mlength=mlength,
        rlength=hdr.length,
    )


def commit_operation(
    mlist: MatchList,
    result: MatchResult,
    hdr: PortalsHeader,
    *,
    started: bool,
) -> list[PortalsEvent]:
    """Apply the state effects of a matched operation and build its events.

    ``started`` selects the phase: the START event is built when the
    header has been processed (before data movement completes), the END
    event belongs to completion — callers invoke this twice for a normal
    two-phase flow, with threshold/offset effects applied only on the
    START phase so a subsequent message matches against updated state.

    Returns the events to post to the MD's event queue (possibly empty if
    the MD has no EQ or has the relevant events disabled).
    """
    assert result.matched
    md = result.md
    me = result.me
    assert md is not None and me is not None
    events: list[PortalsEvent] = []
    is_put = hdr.op is MsgType.PUT

    if started:
        md.consume_threshold()
        if not (md.options & MDOptions.MANAGE_REMOTE):
            md.local_offset = result.offset + result.mlength
        md.pending_ops += 1
        kind = EventKind.PUT_START if is_put else EventKind.GET_START
        if md.events_enabled(start=True):
            events.append(_build_event(kind, hdr, result, md))
        return events

    # Completion phase.
    md.pending_ops -= 1
    kind = EventKind.PUT_END if is_put else EventKind.GET_END
    if md.events_enabled(start=False):
        events.append(_build_event(kind, hdr, result, md))
    # Auto-unlink: an exhausted MD with unlink semantics retires, and an
    # unlink-on-use ME follows its MD off the list.
    if md.exhausted and md.unlink_when_exhausted and md.active:
        md.active = False
        if md.on_unlink is not None:
            callback, md.on_unlink = md.on_unlink, None
            callback()
        if md.eq is not None:
            events.append(
                PortalsEvent(
                    kind=EventKind.UNLINK,
                    initiator=hdr.src,
                    ptl_index=hdr.ptl_index,
                    match_bits=hdr.match_bits,
                    md_user_ptr=md.user_ptr,
                    md_handle=md,
                )
            )
        if me.linked and me.unlink_on_use:
            mlist.unlink(me)
            if me.on_unlink is not None:
                callback, me.on_unlink = me.on_unlink, None
                callback()
    return events


def _build_event(
    kind: EventKind,
    hdr: PortalsHeader,
    result: MatchResult,
    md: MemoryDescriptor,
) -> PortalsEvent:
    return PortalsEvent(
        kind=kind,
        initiator=hdr.src,
        ptl_index=hdr.ptl_index,
        match_bits=hdr.match_bits,
        rlength=result.rlength,
        mlength=result.mlength,
        offset=result.offset,
        hdr_data=hdr.hdr_data,
        md_user_ptr=md.user_ptr,
        md_handle=md,
        ni_fail_type=NIFailType.OK,
    )
