"""Match entries and match lists.

A match entry holds the three-part matching criterion — source process
(with wildcards), 64 match bits, 64 ignore bits — plus the attached MD.
Match entries form an ordered list per portal-table entry; incoming
headers walk the list head to tail (section 3: the destination of a
message is determined by comparing the header with these structures).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .constants import PTL_NID_ANY, PTL_PID_ANY
from .header import ProcessId
from .md import MemoryDescriptor

__all__ = ["MatchEntry", "MatchList", "bits_match", "source_match"]

_me_ids = itertools.count(1)

MATCH_BITS_MASK = (1 << 64) - 1


def bits_match(incoming: int, match_bits: int, ignore_bits: int) -> bool:
    """The Portals match-bit test.

    Accept iff every bit not covered by ``ignore_bits`` agrees::

        (incoming ^ match_bits) & ~ignore_bits == 0
    """
    return ((incoming ^ match_bits) & ~ignore_bits & MATCH_BITS_MASK) == 0


def source_match(incoming: ProcessId, criterion: ProcessId) -> bool:
    """Source test with PTL_NID_ANY / PTL_PID_ANY wildcards."""
    nid_ok = criterion.nid == PTL_NID_ANY or criterion.nid == incoming.nid
    pid_ok = criterion.pid == PTL_PID_ANY or criterion.pid == incoming.pid
    return nid_ok and pid_ok


@dataclass(eq=False)
class MatchEntry:
    """One entry of a match list."""

    match_id: ProcessId
    match_bits: int
    ignore_bits: int = 0
    md: Optional[MemoryDescriptor] = None
    unlink_on_use: bool = False
    """PTL_UNLINK: remove this entry after its MD exhausts (or first use
    for single-use entries)."""

    me_id: int = field(default=0)
    linked: bool = False
    ptl_index: int = -1
    """Portal-table index this entry is linked on (set at attach)."""

    on_unlink: object = None
    """Callback fired exactly once when the entry leaves its list —
    the API layer uses it to release the NI's ME slot."""

    def __post_init__(self) -> None:
        if self.me_id == 0:
            self.me_id = next(_me_ids)
        self.match_bits &= MATCH_BITS_MASK
        self.ignore_bits &= MATCH_BITS_MASK

    def matches(self, src: ProcessId, incoming_bits: int) -> bool:
        """Does an incoming header's (source, match bits) satisfy this
        entry's criterion?  (MD acceptance is checked separately.)"""
        return source_match(src, self.match_id) and bits_match(
            incoming_bits, self.match_bits, self.ignore_bits
        )


class MatchList:
    """The ordered match list hanging off one portal-table entry."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[MatchEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MatchEntry]:
        return iter(self._entries)

    def attach_head(self, me: MatchEntry) -> None:
        """Insert at the head (PtlMEAttach default position FIRST)."""
        me.linked = True
        self._entries.insert(0, me)

    def attach_tail(self, me: MatchEntry) -> None:
        """Insert at the tail (position LAST — e.g. MPI's overflow/
        unexpected entries live behind all posted receives)."""
        me.linked = True
        self._entries.append(me)

    def insert(self, reference: MatchEntry, me: MatchEntry, *, after: bool) -> None:
        """PtlMEInsert: place ``me`` before/after ``reference``."""
        idx = self._index_of(reference)
        me.linked = True
        self._entries.insert(idx + (1 if after else 0), me)

    def unlink(self, me: MatchEntry) -> None:
        """Remove an entry from the list."""
        idx = self._index_of(me)
        del self._entries[idx]
        me.linked = False

    def _index_of(self, me: MatchEntry) -> int:
        for idx, entry in enumerate(self._entries):
            if entry is me:
                return idx
        raise ValueError(f"match entry {me.me_id} is not on this list")

    def first_match(
        self, src: ProcessId, incoming_bits: int, *, is_put: bool
    ) -> Optional[MatchEntry]:
        """Walk head->tail for the first entry whose criterion matches and
        whose MD currently accepts the operation.

        Entries that match on bits but whose MD is missing, inactive or
        exhausted are skipped (their memory is gone); an entry with an
        active MD that merely lacks space does *not* stop the walk here —
        space/truncation is resolved by the caller against the entry this
        returns.
        """
        for entry in self._entries:
            if not entry.matches(src, incoming_bits):
                continue
            if entry.md is None or not entry.md.accepts(is_put=is_put):
                continue
            return entry
        return None
