"""Event queues.

An EQ is a fixed-size circular buffer in the owning process's memory.
Producers (the kernel in generic mode, the firmware in accelerated mode)
write entries; the consumer reads them in order.  Events are "small enough
that they can be posted atomically" (section 4.1), so a reader can simply
inspect the next slot — modeled by :meth:`get` / :meth:`wait_signal`.

Overflow follows the spec: when the writer laps the reader, subsequently
read events report the loss via :class:`PtlEQDropped`.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..sim import Event as SimEvent
from ..sim import Simulator
from .errors import PtlEQDropped, PtlEQEmpty
from .events import PortalsEvent

__all__ = ["EventQueue"]

_eq_ids = itertools.count(1)


class EventQueue:
    """A Portals event queue of fixed ``size`` entries."""

    def __init__(self, sim: Simulator, size: int, name: str = ""):
        if size < 1:
            raise ValueError("EQ size must be >= 1")
        self.sim = sim
        self.size = size
        self.name = name or f"eq{next(_eq_ids)}"
        self._buffer: list[Optional[PortalsEvent]] = [None] * size
        self._write = 0
        self._read = 0
        self._dropped = 0
        self._sequence = itertools.count(1)
        self._signal: Optional[SimEvent] = None
        self.freed = False
        #: optional span tracer + owning node id, set at allocation time
        #: (PtlEQAlloc) when the machine was built with tracing on
        self.tracer = None
        self.trace_node = -1

    # -- producer side -------------------------------------------------------
    def post(self, event: PortalsEvent) -> None:
        """Append ``event``; overwrites the oldest unread slot on overflow."""
        if self.freed:
            raise PtlEQDropped(f"post to freed EQ {self.name}")
        event.sequence = next(self._sequence)
        event.sim_time = self.sim.now
        if self._write - self._read >= self.size:
            # Lapped the reader: the oldest unread event is lost.
            self._read += 1
            self._dropped += 1
        self._buffer[self._write % self.size] = event
        self._write += 1
        if self.tracer is not None:
            self.tracer.instant(
                "eq.post",
                node=self.trace_node,
                component="eq",
                kind=event.kind.value,
            )
        if self._signal is not None:
            signal, self._signal = self._signal, None
            signal.succeed()

    # -- consumer side --------------------------------------------------------
    @property
    def pending(self) -> int:
        """Unread event count."""
        return self._write - self._read

    @property
    def dropped(self) -> int:
        """Total events lost to overflow so far."""
        return self._dropped

    def get(self) -> PortalsEvent:
        """Remove and return the next event.

        Raises :class:`PtlEQEmpty` when none is available and
        :class:`PtlEQDropped` (after delivering the backlog marker) when
        overflow occurred before this read.
        """
        if self._dropped:
            self._dropped = 0
            raise PtlEQDropped(
                f"EQ {self.name} overflowed; events were lost before this read"
            )
        if self._read == self._write:
            raise PtlEQEmpty(f"EQ {self.name} is empty")
        event = self._buffer[self._read % self.size]
        self._buffer[self._read % self.size] = None
        self._read += 1
        assert event is not None
        return event

    def try_get(self) -> Optional[PortalsEvent]:
        """Like :meth:`get` but returns None when empty."""
        try:
            return self.get()
        except PtlEQEmpty:
            return None

    def wait_signal(self) -> SimEvent:
        """Simulation event that fires when the next post arrives.

        Used by blocking waiters (PtlEQWait); the caller is responsible
        for charging its own polling costs.
        """
        if self.pending:
            ready = SimEvent(self.sim)
            ready.succeed()
            return ready
        if self._signal is None:
            self._signal = SimEvent(self.sim)
        return self._signal
