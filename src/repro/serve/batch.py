"""The batch queue: memoized, deduplicated, pool-sharded execution.

Requests from any number of front-end threads funnel into one queue.  A
single dispatcher thread drains it in small batches (up to
``max_batch`` requests or ``batch_window_s`` of quiet, whichever first)
and, per batch:

1. serves every request whose key is already in the content-addressed
   store — a **hit** costs one JSON read, no simulation, no worker;
2. deduplicates the rest by key — identical questions asked
   concurrently simulate **once** and fan the answer back out;
3. executes the unique misses: inline for a single miss (or when the
   service runs single-worker), otherwise sharded across the
   self-healing worker pool (:func:`repro.benchrunner.pool.run_pool`),
   inheriting its crash/hang tolerance and retry-with-backoff;
4. stores each fresh result (with its provenance record) back into the
   same store ``repro bench --cache`` reads, then wakes the waiters.

Every response carries ``cache: hit|miss``, the content address, and
the artifact's provenance record, so a caller can always answer "where
did this number come from and under what code version".
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cache import ResultCache, cache_key, code_version, provenance_record
from ..benchrunner.pool import PoolTask, run_pool
from ..telemetry.recorder import default_flight_dir
from ..telemetry.serve import ServeTelemetry
from .api import execute_payload, normalize_request

__all__ = ["BatchQueue", "QueueStats", "ServiceError"]


class ServiceError(RuntimeError):
    """A request that failed during execution (HTTP 500)."""


@dataclass
class QueueStats:
    """Dispatcher accounting, exposed at ``/v1/stats``."""

    requests: int = 0
    batches: int = 0
    deduplicated: int = 0
    executed: int = 0
    errors: int = 0

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "deduplicated": self.deduplicated,
            "executed": self.executed,
            "errors": self.errors,
        }


@dataclass
class _Pending:
    request: Dict[str, Any]
    key: str
    done: threading.Event = field(default_factory=threading.Event)
    response: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    normalize_s: float = 0.0
    t_enqueue: float = 0.0


class BatchQueue:
    """The service's execution core (usable with or without HTTP)."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: int = 1,
        batch_window_s: float = 0.05,
        max_batch: int = 32,
        task_timeout_s: float = 600.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.cache = cache
        self.workers = workers
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.task_timeout_s = task_timeout_s
        self.stats = QueueStats()
        self.telemetry = ServeTelemetry()
        self._code = code_version()
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def depth(self) -> int:
        """Requests currently enqueued (approximate, by Queue.qsize)."""
        return self._queue.qsize()

    # -- the front door ------------------------------------------------------

    def submit(
        self, doc: Any, *, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Normalize, enqueue, and wait for one request's response.

        Raises :class:`~repro.serve.api.RequestError` on malformed input
        and :class:`ServiceError` on execution failure or timeout.
        Thread-safe; any number of callers may block here concurrently.
        """
        t_norm = time.perf_counter()
        request = normalize_request(doc)
        pending = _Pending(request=request, key=cache_key(request, code=self._code))
        pending.normalize_s = time.perf_counter() - t_norm
        pending.t_enqueue = time.perf_counter()
        self._queue.put(pending)
        self.telemetry.queue_depth.sample(self._queue.qsize())
        if not pending.done.wait(timeout=timeout_s):
            raise ServiceError("request timed out in the batch queue")
        if pending.error is not None:
            raise ServiceError(pending.error)
        assert pending.response is not None
        return pending.response

    # -- the dispatcher ------------------------------------------------------

    def _loop(self) -> None:  # pragma: no cover - exercised via submit()
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            try:
                self._process(batch)
            except BaseException as exc:  # noqa: BLE001 - wake the waiters
                detail = f"{type(exc).__name__}: {exc}"
                self.telemetry.recorder.record("dispatcher-error", error=detail)
                flight = default_flight_dir()
                if flight is not None:
                    self.telemetry.recorder.dump(
                        flight,
                        reason="invariant-failure",
                        role="serve-dispatch",
                        detail=detail,
                    )
                for pending in batch:
                    if not pending.done.is_set():
                        pending.error = detail
                        pending.done.set()

    def _respond_hit(self, pending: _Pending, artifact: Dict[str, Any]) -> None:
        pending.response = {
            "cache": "hit",
            "key": pending.key,
            "result": artifact["result"],
            "provenance": artifact["provenance"],
        }
        pending.done.set()

    def _span(
        self,
        pending: _Pending,
        *,
        cache: str,
        queue_wait_s: float,
        lookup_s: float,
        execute_s: float = 0.0,
        store_s: float = 0.0,
    ) -> None:
        """One per-request span record in the telemetry ring."""
        self.telemetry.record_request(
            req_kind=pending.request.get("kind"),
            key=pending.key[:12],
            cache=cache,
            normalize_s=round(pending.normalize_s, 6),
            queue_wait_s=round(queue_wait_s, 6),
            lookup_s=round(lookup_s, 6),
            execute_s=round(execute_s, 6),
            store_s=round(store_s, 6),
        )

    def _process(self, batch: List[_Pending]) -> None:
        t_start = time.perf_counter()
        self.telemetry.batch_size.sample(len(batch))
        self.telemetry.queue_depth.sample(self._queue.qsize())
        self.stats.batches += 1
        self.stats.requests += len(batch)
        queue_wait = {
            id(p): (t_start - p.t_enqueue) if p.t_enqueue else 0.0 for p in batch
        }
        lookup_s: Dict[int, float] = {}

        # 1. cache hits answer immediately
        waiting: List[_Pending] = []
        for pending in batch:
            if self.cache is not None:
                t_lookup = time.perf_counter()
                artifact = self.cache.get(pending.key)
                lookup_s[id(pending)] = time.perf_counter() - t_lookup
                if artifact is not None:
                    self._respond_hit(pending, artifact)
                    self._span(
                        pending,
                        cache="hit",
                        queue_wait_s=queue_wait[id(pending)],
                        lookup_s=lookup_s[id(pending)],
                    )
                    continue
            waiting.append(pending)
        if not waiting:
            return

        # 2. dedup concurrent identical questions
        unique: Dict[str, _Pending] = {}
        for pending in waiting:
            if pending.key in unique:
                self.stats.deduplicated += 1
            else:
                unique[pending.key] = pending

        # 3. execute the unique misses
        outputs: Dict[str, Dict[str, Any]] = {}
        failures: Dict[str, str] = {}
        if self.workers > 1 and len(unique) > 1:
            tasks = [
                PoolTask(task_id=key, payload=pending.request)
                for key, pending in unique.items()
            ]
            outcome = run_pool(
                tasks,
                execute_payload,
                workers=self.workers,
                timeout_s=self.task_timeout_s,
            )
            outputs = outcome.results
            failures = dict(outcome.failed)
        else:
            for key, pending in unique.items():
                try:
                    outputs[key] = execute_payload(pending.request)
                except Exception as exc:  # noqa: BLE001 - report per-request
                    failures[key] = f"{type(exc).__name__}: {exc}"
        self.stats.executed += len(outputs)
        self.stats.errors += len(failures)

        # 4. store fresh results, then wake every waiter on each key
        artifacts: Dict[str, Dict[str, Any]] = {}
        store_s: Dict[str, float] = {}
        for key, output in outputs.items():
            request = unique[key].request
            t_store = time.perf_counter()
            if self.cache is not None:
                artifacts[key] = self.cache.put(
                    key,
                    output["result"],
                    request=request,
                    kind=request["kind"],
                    wall_s=output["wall_s"],
                    workers=self.workers,
                    code=self._code,
                )
            else:
                artifacts[key] = {
                    "result": output["result"],
                    "provenance": provenance_record(
                        request,
                        kind=request["kind"],
                        wall_s=output["wall_s"],
                        workers=self.workers,
                        code=self._code,
                    ),
                }
            store_s[key] = time.perf_counter() - t_store
        for pending in waiting:
            if pending.key in artifacts:
                artifact = artifacts[pending.key]
                pending.response = {
                    "cache": "miss",
                    "key": pending.key,
                    "result": artifact["result"],
                    "provenance": artifact["provenance"],
                }
            else:
                pending.error = failures.get(pending.key, "execution failed")
            self._span(
                pending,
                cache="miss" if pending.key in artifacts else "error",
                queue_wait_s=queue_wait[id(pending)],
                lookup_s=lookup_s.get(id(pending), 0.0),
                execute_s=outputs.get(pending.key, {}).get("wall_s", 0.0),
                store_s=store_s.get(pending.key, 0.0),
            )
            pending.done.set()
