"""Request schema + execution for the simulation service.

Four request kinds, one per front-door workload:

* ``sweep`` — a NetPIPE size sweep (module × pattern × sizes × hops,
  optionally accelerated): the Figures 4–7 primitive;
* ``trace`` — one traced put with the per-stage span aggregation;
* ``chaos`` — a named fault plan judged through the campaign
  invariants (payload integrity / exactly-once / bounded recovery);
* ``stats`` — a metrics-enabled sweep with the per-size utilization
  attribution rows and the saturating-stage verdicts.

:func:`normalize_request` validates a raw JSON document and returns its
**canonical** form: every default materialized, size schedules resolved
to the explicit integer list, unknown fields rejected.  Canonical
requests are what cache keys hash, so two spellings of the same
question (dict ordering, ``fast``+``max_bytes`` vs the explicit size
list it expands to) share one cache entry.

:func:`execute_request` is module-level and picklable-in/out, so the
batch queue can shard misses across the self-healing worker pool
(:mod:`repro.benchrunner.pool`).  Results contain simulated content
only — no wall-clock, no hostnames — keeping them cacheable forever.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "KINDS",
    "MODULES",
    "PATTERNS",
    "RequestError",
    "normalize_request",
    "execute_request",
    "execute_payload",
    "request_summary",
]

KINDS: Tuple[str, ...] = ("sweep", "trace", "chaos", "stats")
MODULES: Tuple[str, ...] = ("put", "get", "mpich1", "mpich2")
PATTERNS: Tuple[str, ...] = ("pingpong", "stream", "bidir")

#: service guard-rails: the largest message any request may ask for and
#: the most sizes one sweep may contain (a full 8 MiB NetPIPE schedule
#: is ~390 points; these bounds keep one request's work predictable)
MAX_BYTES_LIMIT = 8 * 1024 * 1024
MAX_SIZES = 512


class RequestError(ValueError):
    """A request that fails validation (HTTP 400, never retried)."""


def _fail(msg: str) -> "RequestError":
    return RequestError(msg)


def _take(doc: Dict[str, Any], allowed: Sequence[str]) -> None:
    unknown = sorted(set(doc) - set(allowed) - {"kind"})
    if unknown:
        raise _fail(f"unknown field(s) {', '.join(unknown)}")


def _int_field(
    doc: Dict[str, Any], name: str, default: int, lo: int, hi: int
) -> int:
    value = doc.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(f"{name} must be an integer")
    if not lo <= value <= hi:
        raise _fail(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def _bool_field(doc: Dict[str, Any], name: str, default: bool) -> bool:
    value = doc.get(name, default)
    if not isinstance(value, bool):
        raise _fail(f"{name} must be a boolean")
    return value


def _choice_field(
    doc: Dict[str, Any], name: str, default: str, choices: Sequence[str]
) -> str:
    value = doc.get(name, default)
    if value not in choices:
        raise _fail(f"{name} must be one of {', '.join(choices)}, got {value!r}")
    return str(value)


def _resolve_sizes(doc: Dict[str, Any]) -> List[int]:
    """The explicit, sorted, deduplicated size list a sweep measures.

    Either ``sizes`` (explicit list) or ``min_bytes``/``max_bytes`` with
    ``fast`` choosing between the power-of-two and full NetPIPE
    schedules — resolved here so equivalent spellings canonicalize to
    the same request (and therefore the same cache key).
    """
    from ..netpipe.sizes import decade_sizes, netpipe_sizes

    explicit = doc.get("sizes")
    if explicit is not None:
        for bad in ("min_bytes", "max_bytes", "fast"):
            if bad in doc:
                raise _fail(f"sizes and {bad} are mutually exclusive")
        if not isinstance(explicit, (list, tuple)) or not explicit:
            raise _fail("sizes must be a non-empty list of integers")
        for n in explicit:
            if isinstance(n, bool) or not isinstance(n, int):
                raise _fail("sizes must be integers")
            if not 1 <= n <= MAX_BYTES_LIMIT:
                raise _fail(f"sizes must be in [1, {MAX_BYTES_LIMIT}], got {n}")
        sizes = sorted(set(explicit))
    else:
        min_bytes = _int_field(doc, "min_bytes", 1, 1, MAX_BYTES_LIMIT)
        max_bytes = _int_field(doc, "max_bytes", 1 << 20, 1, MAX_BYTES_LIMIT)
        if min_bytes > max_bytes:
            raise _fail("min_bytes must be <= max_bytes")
        fast = _bool_field(doc, "fast", True)
        sizes = (
            decade_sizes(min_bytes, max_bytes)
            if fast
            else netpipe_sizes(min_bytes, max_bytes)
        )
    if len(sizes) > MAX_SIZES:
        raise _fail(f"too many sizes ({len(sizes)} > {MAX_SIZES})")
    return list(sizes)


def normalize_request(doc: Any) -> Dict[str, Any]:
    """Validate ``doc`` and return its canonical request form.

    Raises :class:`RequestError` on anything malformed.  The returned
    dict is fully materialized (no implicit defaults left) and is the
    exact document cache keys are derived from.
    """
    if not isinstance(doc, dict):
        raise _fail("request must be a JSON object")
    kind = doc.get("kind")
    if kind not in KINDS:
        raise _fail(f"kind must be one of {', '.join(KINDS)}, got {kind!r}")

    if kind == "sweep":
        _take(
            doc,
            (
                "module", "pattern", "hops", "accelerated",
                "sizes", "min_bytes", "max_bytes", "fast",
            ),
        )
        module = _choice_field(doc, "module", "put", MODULES)
        accelerated = _bool_field(doc, "accelerated", False)
        if accelerated and module not in ("put", "get"):
            raise _fail("accelerated applies to the Portals modules only")
        return {
            "kind": "sweep",
            "module": module,
            "pattern": _choice_field(doc, "pattern", "pingpong", PATTERNS),
            "hops": _int_field(doc, "hops", 1, 1, 128),
            "accelerated": accelerated,
            "sizes": _resolve_sizes(doc),
        }

    if kind == "trace":
        _take(doc, ("size", "hops"))
        return {
            "kind": "trace",
            "size": _int_field(doc, "size", 1, 1, MAX_BYTES_LIMIT),
            "hops": _int_field(doc, "hops", 1, 1, 128),
        }

    if kind == "chaos":
        from ..faults.plan import plan_names

        _take(doc, ("plan", "seed"))
        return {
            "kind": "chaos",
            "plan": _choice_field(doc, "plan", "drop-1pct", plan_names()),
            "seed": _int_field(doc, "seed", 0, 0, 2**32 - 1),
        }

    # kind == "stats"
    _take(
        doc,
        ("module", "pattern", "hops", "sizes", "min_bytes", "max_bytes", "fast"),
    )
    return {
        "kind": "stats",
        "module": _choice_field(doc, "module", "put", MODULES),
        "pattern": _choice_field(doc, "pattern", "pingpong", PATTERNS),
        "hops": _int_field(doc, "hops", 1, 1, 128),
        "sizes": _resolve_sizes(doc),
    }


# -- execution ---------------------------------------------------------------


def _make_module(name: str, accelerated: bool = False) -> Any:
    from ..mpi import MPICH1, MPICH2
    from ..netpipe import MPIModule, PortalsGetModule, PortalsPutModule

    if name == "put":
        return PortalsPutModule(accelerated=accelerated)
    if name == "get":
        return PortalsGetModule(accelerated=accelerated)
    return MPIModule(MPICH1 if name == "mpich1" else MPICH2)


def _series_payload(series: Any) -> Dict[str, Any]:
    from ..benchrunner.schema import SeriesData

    data = SeriesData.from_series(series)
    return {
        "series": data.to_jsonable(),
        "latency_us": [p.latency_us for p in series.points],
        "bandwidth_mb_s": [p.bandwidth_mb_s for p in series.points],
    }


def _run_sweep(request: Dict[str, Any]) -> Dict[str, Any]:
    from ..netpipe import run_series

    series = run_series(
        _make_module(request["module"], request["accelerated"]),
        request["pattern"],
        request["sizes"],
        hops=request["hops"],
    )
    return {
        "kind": "sweep",
        "module": series.module,
        "pattern": series.pattern,
        **_series_payload(series),
    }


def _run_trace(request: Dict[str, Any]) -> Dict[str, Any]:
    from ..trace import aggregate_stages, trace_put

    result = trace_put(request["size"], hops=request["hops"])
    return {
        "kind": "trace",
        "size": request["size"],
        "hops": request["hops"],
        "latency_ps": result.latency_ps,
        "stages": [
            {
                "name": s.name,
                "count": s.count,
                "total_ps": s.total_ps,
                "mean_ps": s.mean_ps,
                "p99_ps": s.p99_ps,
            }
            for s in aggregate_stages(result.spans)
        ],
    }


def _run_chaos(request: Dict[str, Any]) -> Dict[str, Any]:
    from ..faults import named_plan
    from ..faults.campaign import clean_baseline_ps, run_one_plan, spec_for_plan

    plan = named_plan(request["plan"], seed=request["seed"])
    spec = spec_for_plan(request["plan"], plan, baseline_ps=clean_baseline_ps())
    record = run_one_plan(spec)
    return {
        "kind": "chaos",
        "plan": request["plan"],
        "seed": request["seed"],
        "record": record,
    }


def _run_stats(request: Dict[str, Any]) -> Dict[str, Any]:
    from ..metrics import attribute_windows, saturating_by_decade
    from ..netpipe import NetPipeRunner

    runner = NetPipeRunner(
        _make_module(request["module"]), hops=request["hops"], metrics=True
    )
    series = runner.run(request["pattern"], request["sizes"])
    rows = attribute_windows(runner.machine.metrics, runner.windows)
    return {
        "kind": "stats",
        "module": series.module,
        "pattern": series.pattern,
        **_series_payload(series),
        "utilization": [
            {
                "nbytes": row.nbytes,
                "window_ps": row.window_ps,
                "utilization": {k: row.utilization[k] for k in sorted(row.utilization)},
                "saturating": row.saturating,
            }
            for row in rows
        ],
        "saturating_by_decade": {
            str(decade): stage
            for decade, stage in saturating_by_decade(rows).items()
        },
    }


_EXECUTORS = {
    "sweep": _run_sweep,
    "trace": _run_trace,
    "chaos": _run_chaos,
    "stats": _run_stats,
}


def execute_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Run one canonical request to completion in this process.

    The result is pure simulated content (deterministic for a given
    code version), so the caller may memoize it indefinitely.
    """
    return _EXECUTORS[request["kind"]](request)


def execute_payload(request: Dict[str, Any]) -> Dict[str, Any]:
    """Pool-worker entry: the result plus how long it took in-child."""
    t0 = time.perf_counter()
    result = execute_request(request)
    return {"result": result, "wall_s": time.perf_counter() - t0}


def request_summary(request: Dict[str, Any]) -> str:
    """One-line human description (progress lines, server logs)."""
    kind = request["kind"]
    if kind in ("sweep", "stats"):
        sizes: List[int] = request["sizes"]
        return (
            f"{kind} {request['module']}/{request['pattern']} "
            f"{len(sizes)} sizes up to {sizes[-1]}B"
        )
    if kind == "trace":
        return f"trace {request['size']}B hops={request['hops']}"
    return f"chaos {request['plan']} seed={request['seed']}"
