"""The HTTP front end: ``repro serve``.

Stdlib only (:mod:`http.server`), threaded: each connection gets a
handler thread that blocks in :meth:`BatchQueue.submit` while the
dispatcher batches, memoizes, and shards the actual work.  Endpoints:

* ``GET  /v1/health`` — liveness + the code/package versions keys are
  derived from;
* ``GET  /v1/stats``  — queue + cache accounting (requests, batches,
  dedups, hits/misses/stores, hit rate) plus the dispatcher's
  queue-depth and batch-size gauges and the most recent per-request
  spans (normalize → cache lookup → execute → store timings);
* ``GET  /v1/metrics`` — the same instruments as a ``repro-metrics/v1``
  document rendered in Prometheus text exposition format;
* ``POST /v1/query``  — one request document (``{"kind": ...}``);
* ``POST /v1/sweep|trace|chaos|stats`` — same, with ``kind`` implied
  by the path;
* ``POST /v1/batch``  — ``{"requests": [...]}``; items succeed or fail
  independently.

Responses: ``200 {"ok": true, "response": {cache, key, result,
provenance}}``, ``400`` on validation errors, ``500`` on execution
failures, ``404``/``405`` elsewhere.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..cache import ResultCache, code_version
from ..telemetry.serve import serve_metrics_document
from .api import KINDS, RequestError
from .batch import BatchQueue, ServiceError

__all__ = ["ReproServer"]

#: request bodies larger than this are rejected outright (a canonical
#: request is a few hundred bytes; this is pure abuse protection)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    # set per-server via type(); never instantiated unbound
    repro_server: "ReproServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.repro_server.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(self, status: int, text: str) -> None:
        blob = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("request body required")
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError(f"request body is not JSON: {exc}") from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server = self.repro_server
        if self.path == "/v1/health":
            self._send_json(
                200,
                {
                    "ok": True,
                    "schema": "repro-serve/1",
                    "package_version": __version__,
                    "code_version": code_version(),
                },
            )
        elif self.path == "/v1/stats":
            cache = server.cache
            telemetry = server.queue.telemetry
            queue_doc = server.queue.stats.to_jsonable()
            queue_doc["depth"] = server.queue.depth()
            queue_doc["queue_depth"] = telemetry.queue_depth.summary()
            queue_doc["batch_sizes"] = telemetry.batch_size.summary()
            self._send_json(
                200,
                {
                    "ok": True,
                    "queue": queue_doc,
                    "cache": cache.stats.to_jsonable() if cache else None,
                    "workers": server.queue.workers,
                    "recent_requests": telemetry.recent_requests(10),
                },
            )
        elif self.path == "/v1/metrics":
            from ..metrics.export import to_prometheus_text

            self._send_text(200, to_prometheus_text(server.metrics_document()))
        else:
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        server = self.repro_server
        try:
            doc = self._read_body()
        except RequestError as exc:
            self._send_json(400, {"ok": False, "error": str(exc)})
            return
        if self.path == "/v1/batch":
            self._post_batch(doc)
            return
        if self.path == "/v1/query":
            pass  # kind comes from the body
        elif self.path.startswith("/v1/") and self.path[4:] in KINDS:
            if isinstance(doc, dict):
                doc = {**doc, "kind": self.path[4:]}
        else:
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})
            return
        status, response = server.handle(doc)
        self._send_json(status, response)

    def _post_batch(self, doc: Any) -> None:
        requests = doc.get("requests") if isinstance(doc, dict) else None
        if not isinstance(requests, list) or not requests:
            self._send_json(
                400,
                {"ok": False, "error": "batch body must be {'requests': [...]}"},
            )
            return
        responses: List[Dict[str, Any]] = []
        threads: List[threading.Thread] = []
        slots: List[Optional[Tuple[int, Dict[str, Any]]]] = [None] * len(requests)

        def run(i: int, item: Any) -> None:
            slots[i] = self.repro_server.handle(item)

        # one waiter thread per item so the whole batch lands in the same
        # dispatcher window and dedups/shards together
        for i, item in enumerate(requests):
            t = threading.Thread(target=run, args=(i, item), daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        ok = True
        for slot in slots:
            assert slot is not None
            status, response = slot
            ok = ok and status == 200
            responses.append(response)
        self._send_json(200 if ok else 207, {"ok": ok, "responses": responses})


class ReproServer:
    """The simulation service: batch queue + cache + HTTP listener.

    ``port=0`` binds an ephemeral port (see :attr:`port` after
    :meth:`start`).  ``cache_dir=None`` disables memoization — every
    request simulates — but provenance records are still attached.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        batch_window_s: float = 0.05,
        max_batch: int = 32,
        task_timeout_s: float = 600.0,
        request_timeout_s: float = 600.0,
        verbose: bool = False,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.queue = BatchQueue(
            self.cache,
            workers=workers,
            batch_window_s=batch_window_s,
            max_batch=max_batch,
            task_timeout_s=task_timeout_s,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- request handling (usable without sockets) ---------------------------

    def metrics_document(self) -> Dict[str, Any]:
        """The serve tier's instruments as a ``repro-metrics/v1`` doc."""
        return serve_metrics_document(
            self.queue.stats.to_jsonable(),
            self.queue.telemetry,
            cache_stats=self.cache.stats.to_jsonable() if self.cache else None,
            workers=self.queue.workers,
        )

    def handle(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        """Process one request document; returns (status, response)."""
        try:
            response = self.queue.submit(doc, timeout_s=self.request_timeout_s)
        except RequestError as exc:
            return 400, {"ok": False, "error": str(exc)}
        except ServiceError as exc:
            return 500, {"ok": False, "error": str(exc)}
        return 200, {"ok": True, "response": response}

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return int(self._httpd.server_address[1])

    def start(self) -> None:
        """Bind, start the dispatcher, and serve in a background thread."""
        if self._httpd is not None:
            return
        handler = type("BoundHandler", (_Handler,), {"repro_server": self})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self.queue.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.queue.stop()

    def serve_forever(self) -> None:  # pragma: no cover - interactive entry
        """Foreground entry for the CLI: blocks until interrupted."""
        self.start()
        assert self._thread is not None
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
