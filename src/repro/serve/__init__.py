"""repro.serve — simulation-as-a-service.

The "heavy traffic" reading of the north star for a deterministic
simulator: an HTTP front end (``repro serve``) that accepts
sweep/trace/chaos/stats requests, funnels them through a batching
dispatcher, serves repeats from the content-addressed result store
(:mod:`repro.cache`), and shards cache misses across the self-healing
worker pool.  Every response carries the content address and a
provenance record, so any served number is traceable to its exact
inputs and code version.
"""

from .api import (
    KINDS,
    RequestError,
    execute_request,
    normalize_request,
    request_summary,
)
from .batch import BatchQueue, QueueStats, ServiceError
from .server import ReproServer

__all__ = [
    "KINDS",
    "RequestError",
    "ServiceError",
    "BatchQueue",
    "QueueStats",
    "ReproServer",
    "execute_request",
    "normalize_request",
    "request_summary",
]
