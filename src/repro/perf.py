"""Wall-clock performance smoke for the simulation engine.

The simulated results are deterministic and gated bit-for-bit by the
golden baselines; this module measures the *other* axis — how fast the
engine chews through events in real time.  The workload is the Figure 5
fast sweep (unidirectional put, power-of-two sizes up to 8 MB), the
heaviest single-series shard in the bench fleet: its large transfers
stress the chunked DMA/fabric pipeline where almost all heap traffic
lives.

The metric is **events per second**: heap records scheduled
(``Simulator.events_scheduled``) divided by wall-clock seconds for the
sweep.  Event counts are deterministic, so the only noise is the wall
clock — the smoke takes the best of N repetitions to suppress machine
jitter.

``repro bench --perf`` prints the measurement and, when
``benchmarks/perf_baseline.json`` exists, the speedup against it.
``--perf-gate`` additionally fails the run when events/sec regresses by
more than :data:`GATE_REGRESSION_FRACTION` against the committed
baseline — the threshold is deliberately loose (30%) so shared-runner
jitter cannot trip it, while an accidental hot-path deoptimization
(which shows up as an integer-factor slowdown) reliably does.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

__all__ = [
    "PerfResult",
    "DEFAULT_BASELINE_PATH",
    "measure_sweep",
    "measure_plane_scaling",
    "run_perf_smoke",
    "load_baseline",
    "save_baseline",
    "format_perf_report",
    "check_regression",
    "GATE_REGRESSION_FRACTION",
]

#: --perf-gate failure threshold: fraction of baseline events/sec the
#: measurement may lose before the gate fails the run
GATE_REGRESSION_FRACTION = 0.30

#: committed reference point for the speedup line (repo-relative)
DEFAULT_BASELINE_PATH = Path("benchmarks") / "perf_baseline.json"

#: the measured workload: fig5 put fast sweep, 1 B .. 8 MB powers of two
SWEEP_ID = "fig5/put/pingpong/fast"
_SWEEP_MAX_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class PerfResult:
    """One events-per-second measurement of the fig5 fast sweep."""

    sweep: str
    events: int
    """Heap records scheduled during the sweep (deterministic)."""
    wall_s: float
    """Best wall-clock time over ``reps`` repetitions, seconds."""
    events_per_sec: float
    reps: int

    def to_json(self) -> dict:
        return asdict(self)


def measure_sweep() -> tuple[int, float]:
    """Run the fig5 fast sweep once; return (events_scheduled, wall_s)."""
    from .netpipe import NetPipeRunner, PortalsPutModule, decade_sizes

    runner = NetPipeRunner(PortalsPutModule())
    sizes = decade_sizes(1, _SWEEP_MAX_BYTES)
    t0 = time.perf_counter()
    runner.run("pingpong", sizes)
    wall = time.perf_counter() - t0
    return runner.machine.sim.events_scheduled, wall


#: the plane-scaling workload: >= 1k nodes, the fast-mode plane dims
_PLANE_DIMS = (16, 8, 8)


def measure_plane_scaling(partitions: tuple = (1, 2, 4)) -> dict:
    """Single-process vs partitioned events/sec for the >= 1k-node plane.

    Strictly informational — never gated.  The conservative driver pays
    real synchronization cost (round barriers, exchange files, process
    spawns) to prove byte-identity, so partitioned wall clock on a small
    fast-mode plane is expected to *lose* to serial; the number is
    recorded so the crossover is visible as scenarios grow.
    """
    from .sim.parallel import PlaneScenario, run_scenario

    scenario = PlaneScenario(name="neighbor", dims=_PLANE_DIMS, msg_bytes=2048)
    out: dict = {"scenario": "neighbor", "dims": list(_PLANE_DIMS)}
    for nparts in partitions:
        t0 = time.perf_counter()
        run = run_scenario(
            scenario, nparts, transport="pool" if nparts > 1 else "memory"
        )
        wall = time.perf_counter() - t0
        events = run["info"]["events_scheduled"]
        out[f"p{nparts}"] = {
            "partitions": run["info"]["partitions"],
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_sec": round(events / wall, 1),
        }
    return out


def run_perf_smoke(reps: int = 3) -> PerfResult:
    """Measure the sweep ``reps`` times and keep the fastest wall clock.

    The event count must be identical across repetitions (the engine is
    deterministic); a mismatch is a bug worth crashing on.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    best_wall: Optional[float] = None
    events: Optional[int] = None
    for _ in range(reps):
        n, wall = measure_sweep()
        if events is None:
            events = n
        elif n != events:
            raise AssertionError(
                f"non-deterministic event count: {n} != {events}"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert events is not None and best_wall is not None
    return PerfResult(
        sweep=SWEEP_ID,
        events=events,
        wall_s=round(best_wall, 4),
        events_per_sec=round(events / best_wall, 1),
        reps=reps,
    )


def load_baseline(path: Path = DEFAULT_BASELINE_PATH) -> Optional[dict]:
    """Read the committed baseline, or None when absent."""
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def save_baseline(
    result: PerfResult,
    path: Path = DEFAULT_BASELINE_PATH,
    *,
    plane_scaling: Optional[dict] = None,
) -> None:
    """Rewrite the committed baseline from ``result``.

    ``plane_scaling`` (informational, never gated) is written when
    given, else carried over from the existing baseline so an update
    of the gated sweep numbers does not silently drop it.
    """
    doc = result.to_json()
    if plane_scaling is None:
        existing = load_baseline(path)
        if existing:
            plane_scaling = existing.get("plane_scaling")
    if plane_scaling is not None:
        doc["plane_scaling"] = plane_scaling
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def check_regression(
    result: PerfResult,
    baseline: Optional[dict],
    threshold: float = GATE_REGRESSION_FRACTION,
) -> Optional[str]:
    """Gate verdict: an error string on regression, else None.

    A missing baseline (or one without a usable ``events_per_sec``)
    passes — the gate only has meaning against a committed reference.
    """
    if not baseline:
        return None
    base_eps = float(baseline.get("events_per_sec", 0.0))
    if base_eps <= 0.0:
        return None
    floor = base_eps * (1.0 - threshold)
    if result.events_per_sec >= floor:
        return None
    return (
        f"perf gate FAILED: {result.events_per_sec:,.1f} events/sec is below "
        f"{floor:,.1f} (baseline {base_eps:,.1f} minus {threshold:.0%} allowance)"
    )


def format_perf_report(
    result: PerfResult, baseline: Optional[dict] = None
) -> str:
    """Human-readable report; includes the speedup line when a baseline
    with a positive ``events_per_sec`` is given."""
    lines = [
        f"# perf smoke: {result.sweep} (best of {result.reps})",
        f"events          {result.events:>14,}",
        f"wall_s          {result.wall_s:>14.4f}",
        f"events_per_sec  {result.events_per_sec:>14,.1f}",
    ]
    if baseline:
        base_eps = float(baseline.get("events_per_sec", 0.0))
        if base_eps > 0.0:
            lines.append(
                f"baseline        {base_eps:>14,.1f}"
                f"  (speedup {result.events_per_sec / base_eps:.2f}x)"
            )
        base_events = baseline.get("events")
        if base_events is not None and base_events != result.events:
            # informational too: event totals shift when scheduling is
            # legitimately restructured, and the golden gate — not this
            # smoke — decides whether results changed
            lines.append(
                f"note: event count differs from baseline "
                f"({result.events:,} vs {base_events:,})"
            )
        plane = baseline.get("plane_scaling")
        if plane:
            parts = [
                f"{key[1:]}p {val['events_per_sec']:,.0f} ev/s"
                for key, val in sorted(plane.items())
                if key.startswith("p") and isinstance(val, dict)
            ]
            if parts:
                lines.append(
                    "plane scaling (informational): " + ", ".join(parts)
                )
    return "\n".join(lines)
