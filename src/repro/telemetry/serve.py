"""Host-side instrumentation for the ``repro serve`` front end.

The simulation-side :class:`repro.metrics.registry.MetricsRegistry` samples
gauges on the *simulated* clock and therefore needs a ``Simulator``; the serve
tier has none, so this module provides :class:`HostSeries` -- a bounded
wall-clock step-function series whose ``summary()`` emits the same keys the
Prometheus renderer expects (``samples`` / ``last`` / ``min`` / ``max`` /
``time_weighted_mean``).  :class:`ServeTelemetry` bundles the two gauges the
dispatcher samples (queue depth and batch size) with a flight-recorder ring of
per-request spans, and :func:`serve_metrics_document` folds everything into a
``repro-metrics/v1`` document renderable by
:func:`repro.metrics.export.to_prometheus_text`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..metrics.export import EXPORT_SCHEMA
from .recorder import FlightRecorder

__all__ = ["HostSeries", "ServeTelemetry", "serve_metrics_document"]

DEFAULT_WINDOW = 512


class HostSeries:
    """Bounded (host-time, value) samples treated as a step function.

    ``count`` / ``total`` / ``vmin`` / ``vmax`` cover every sample ever taken;
    the time-weighted mean is computed over the retained window only (the
    series is bounded so long-lived servers don't grow without bound).
    """

    __slots__ = ("name", "_samples", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, window: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def sample(self, value: float) -> None:
        self._samples.append((time.perf_counter(), float(value)))
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    def _time_weighted_mean(self) -> float:
        samples = list(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0][1]
        weighted = 0.0
        for (t0, value), (t1, _) in zip(samples, samples[1:]):
            weighted += value * (t1 - t0)
        elapsed = samples[-1][0] - samples[0][0]
        if elapsed <= 0.0:
            return samples[-1][1]
        return weighted / elapsed

    def summary(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"samples": 0}
        return {
            "samples": self.count,
            "last": self._samples[-1][1],
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.total / self.count,
            "time_weighted_mean": round(self._time_weighted_mean(), 9),
        }


def _point_summary(value: float) -> Dict[str, Any]:
    """Single-observation gauge summary (e.g. a ratio sampled at export)."""
    return {
        "samples": 1,
        "last": value,
        "min": value,
        "max": value,
        "mean": value,
        "time_weighted_mean": value,
    }


class ServeTelemetry:
    """Dispatcher-side gauges plus a ring of per-request spans."""

    def __init__(self, capacity: int = 256) -> None:
        self.queue_depth = HostSeries("serve.queue.depth")
        self.batch_size = HostSeries("serve.batch.size")
        self.recorder = FlightRecorder(capacity)

    def record_request(self, **fields: Any) -> None:
        self.recorder.record("request", **fields)

    def recent_requests(self, n: int = 10) -> List[Dict[str, Any]]:
        requests = [ev for ev in self.recorder.events() if ev["kind"] == "request"]
        return requests[-n:]


def serve_metrics_document(
    queue_stats: Dict[str, int],
    telemetry: ServeTelemetry,
    *,
    cache_stats: Optional[Dict[str, Any]] = None,
    workers: int = 1,
) -> Dict[str, Any]:
    """Build a ``repro-metrics/v1`` document for the serve tier.

    ``queue_stats`` is ``QueueStats.to_jsonable()`` and ``cache_stats`` is
    ``CacheStats.to_jsonable()`` (passed as plain dicts so this module does
    not import the serve/cache packages).
    """
    counters: Dict[str, int] = {
        f"serve.{key}": int(value)
        for key, value in sorted(queue_stats.items())
        if isinstance(value, (int, float)) and key != "hit_rate"
    }
    gauges: Dict[str, Any] = {
        "serve.queue.depth": telemetry.queue_depth.summary(),
        "serve.batch.size": telemetry.batch_size.summary(),
        "serve.workers": _point_summary(float(workers)),
    }
    if cache_stats:
        for key in ("hits", "misses", "stores", "evictions"):
            if key in cache_stats:
                counters[f"serve.cache.{key}"] = int(cache_stats[key])
        if "hit_rate" in cache_stats:
            gauges["serve.cache.hit_rate"] = _point_summary(
                float(cache_stats["hit_rate"])
            )
    return {
        "schema": EXPORT_SCHEMA,
        "meta": {"kind": "repro-serve", "workers": workers},
        "counters": counters,
        "gauges": gauges,
        "timelines": {},
        "histograms": {},
    }
