"""Merged multi-process Chrome/Perfetto trace for partitioned runs.

``repro.trace`` exports *simulated-time* spans for a single node pair; this
module exports *host-time* round telemetry from every partition of a parallel
run into one coherent trace.  Each partition becomes a trace "process"
(``pid`` = partition index, named ``partition N``) with a single ``rounds``
thread.  Every synchronous round is a complete (``ph: "X"``) span whose four
phase children -- publish, collect, absorb, advance -- tile it exactly, so
Perfetto renders nested bars per partition and stragglers line up visually
across tracks.

Cross-process alignment uses each recorder's ``base_unix`` wall-clock stamp:
timestamps are microseconds since the earliest partition's base, so clock skew
between spawned workers is bounded by ``time.time`` resolution -- good enough
for millisecond-scale rounds.  The document passes
:func:`repro.trace.export.validate_chrome_trace`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from .rounds import PHASES

__all__ = ["export_parallel_trace"]


def export_parallel_trace(
    partitions: Sequence[Dict[str, Any]], *, path: Optional[str] = None
) -> dict:
    """Render per-partition round docs as one Chrome trace-event document.

    ``partitions`` holds :meth:`RoundRecorder.to_jsonable` docs; ``None``
    entries (e.g. a worker that returned no telemetry) are skipped.  Returns
    the document; when ``path`` is given it is also written there as JSON
    with sorted keys.
    """
    docs = [doc for doc in partitions if doc]
    if not docs:
        raise ValueError("no partition telemetry to export")
    base0 = min(doc["base_unix"] for doc in docs)
    events: list[dict] = []
    for doc in sorted(docs, key=lambda d: d["part"]):
        pid = doc["part"]
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"partition {pid}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "rounds"},
            }
        )
        offset_us = (doc["base_unix"] - base0) * 1e6
        for rec in doc["rounds"]:
            t0 = offset_us + rec["t0_s"] * 1e6
            total_us = sum(rec[f"{phase}_s"] for phase in PHASES) * 1e6
            events.append(
                {
                    "name": f"round {rec['round']}",
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": t0,
                    "dur": total_us,
                    "args": {
                        "horizon_ps": rec["horizon_ps"],
                        "nprime_ps": rec["nprime_ps"],
                        "exports": rec["exports"],
                        "imports": rec["imports"],
                        "events": rec["events"],
                    },
                }
            )
            cursor = t0
            for phase in PHASES:
                dur_us = rec[f"{phase}_s"] * 1e6
                event = {
                    "name": phase,
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": cursor,
                    "dur": dur_us,
                    "args": {},
                }
                if phase == "collect":
                    event["args"]["poll_wait_s"] = rec["poll_wait_s"]
                events.append(event)
                cursor += dur_us
    doc_out = {"traceEvents": events, "displayTimeUnit": "ns"}
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc_out, fh, sort_keys=True, indent=1)
            fh.write("\n")
    return doc_out
