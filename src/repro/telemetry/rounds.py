"""Per-partition round telemetry for the conservative parallel DES engine.

Each partition (whether an in-process runner on the memory transport or a
spawned pool worker on the round-file transport) owns a :class:`RoundRecorder`.
The engine driver times the four phases of every synchronous round --
``publish`` (serialize next-event time + exports), ``collect`` (gather peer
docs; on the file transport this includes poll-wait), ``absorb`` (import and
causality-check peer chunks), ``advance`` (simulate up to the safe horizon) --
and records one dict per round together with the safe horizon ``H_i``, the
import-adjusted lookahead bound ``N'``, export/import counts, and cumulative
scheduled-event totals.  All timestamps are host-side (``time.perf_counter``
offsets against a ``time.time`` base), so recording cannot perturb the
simulated figures.

:func:`straggler_report` merges the per-partition docs into an attribution of
wall clock to the slowest partition per round and to transport (file-poll)
wait vs. simulate time.  On the pool transport partitions run concurrently, so
per-round wall is the max across partitions; on the memory transport they run
round-robin in one process and the same max is reported as attribution rather
than exact wall clock.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

PHASES = ("publish", "collect", "absorb", "advance")
FLIGHT_TAIL_ROUNDS = 32


class RoundRecorder:
    """Accumulates one record per synchronous round for a single partition."""

    __slots__ = ("part", "base_unix", "base_mono", "rounds")

    def __init__(self, part: int) -> None:
        self.part = part
        self.base_unix = round(time.time(), 6)
        self.base_mono = time.perf_counter()
        self.rounds: List[Dict[str, Any]] = []

    def offset(self) -> float:
        """Seconds since this recorder was created (monotonic)."""
        return time.perf_counter() - self.base_mono

    def record_round(
        self,
        *,
        round_no: int,
        t0_s: float,
        publish_s: float,
        collect_s: float,
        absorb_s: float,
        advance_s: float,
        poll_wait_s: float,
        horizon_ps: Optional[int],
        nprime_ps: Optional[int],
        exports: int,
        imports: int,
        events: int,
    ) -> None:
        self.rounds.append(
            {
                "round": round_no,
                "t0_s": round(t0_s, 6),
                "publish_s": round(publish_s, 6),
                "collect_s": round(collect_s, 6),
                "absorb_s": round(absorb_s, 6),
                "advance_s": round(advance_s, 6),
                "poll_wait_s": round(poll_wait_s, 6),
                "horizon_ps": horizon_ps,
                "nprime_ps": nprime_ps,
                "exports": exports,
                "imports": imports,
                "events": events,
            }
        )

    def to_jsonable(self) -> Dict[str, Any]:
        totals = {f"{phase}_s": 0.0 for phase in PHASES}
        totals["poll_wait_s"] = 0.0
        exports = imports = 0
        for rec in self.rounds:
            for phase in PHASES:
                totals[f"{phase}_s"] += rec[f"{phase}_s"]
            totals["poll_wait_s"] += rec["poll_wait_s"]
            exports += rec["exports"]
            imports += rec["imports"]
        return {
            "part": self.part,
            "base_unix": self.base_unix,
            "rounds": list(self.rounds),
            "totals": {
                **{key: round(value, 6) for key, value in totals.items()},
                "rounds": len(self.rounds),
                "exports": exports,
                "imports": imports,
                "events": self.rounds[-1]["events"] if self.rounds else 0,
            },
        }

    def tail_events(self, n: int = FLIGHT_TAIL_ROUNDS) -> List[Dict[str, Any]]:
        """Last ``n`` rounds as flight-recorder events (oldest first)."""
        return _tail_events(self.part, self.base_unix, self.rounds, n)


def doc_tail_events(
    doc: Dict[str, Any], n: int = FLIGHT_TAIL_ROUNDS
) -> List[Dict[str, Any]]:
    """Flight events from a serialized :meth:`RoundRecorder.to_jsonable` doc."""
    return _tail_events(doc["part"], doc["base_unix"], doc["rounds"], n)


def _tail_events(
    part: int, base_unix: float, rounds: Sequence[Dict[str, Any]], n: int
) -> List[Dict[str, Any]]:
    out = []
    for rec in rounds[-n:] if n else rounds:
        event = {
            "t_unix": round(base_unix + rec["t0_s"], 6),
            "kind": "round",
            "part": part,
        }
        event.update(rec)
        out.append(event)
    return out


def _round_duration(rec: Dict[str, Any]) -> float:
    return sum(rec[f"{phase}_s"] for phase in PHASES)


def straggler_report(partitions: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Attribute per-round wall clock to the slowest partition and transport.

    ``partitions`` holds :meth:`RoundRecorder.to_jsonable` docs (missing
    entries are skipped).  Returns a JSON-able report with per-round
    stragglers, per-partition totals, and a simulate vs. transport-wait
    split for the straggling partition of every round.
    """
    docs = [doc for doc in partitions if doc]
    if not docs:
        return {"rounds": 0, "partitions": 0, "by_partition": [], "worst_rounds": []}

    nrounds = max(len(doc["rounds"]) for doc in docs)
    wall_s = 0.0
    simulate_s = 0.0
    transport_wait_s = 0.0
    straggler_rounds = {doc["part"]: 0 for doc in docs}
    worst: List[Dict[str, Any]] = []
    for rnd in range(nrounds):
        best_part = None
        best_dur = -1.0
        best_rec: Optional[Dict[str, Any]] = None
        for doc in docs:
            if rnd >= len(doc["rounds"]):
                continue
            rec = doc["rounds"][rnd]
            dur = _round_duration(rec)
            if dur > best_dur:
                best_dur = dur
                best_part = doc["part"]
                best_rec = rec
        if best_rec is None or best_part is None:
            continue
        wall_s += best_dur
        simulate_s += best_rec["advance_s"]
        transport_wait_s += best_rec["poll_wait_s"]
        straggler_rounds[best_part] += 1
        worst.append(
            {
                "round": rnd,
                "part": best_part,
                "wall_s": round(best_dur, 6),
                "advance_s": best_rec["advance_s"],
                "poll_wait_s": best_rec["poll_wait_s"],
            }
        )

    worst.sort(key=lambda item: -item["wall_s"])
    by_partition = []
    for doc in docs:
        totals = dict(doc["totals"])
        totals["part"] = doc["part"]
        totals["straggler_rounds"] = straggler_rounds[doc["part"]]
        by_partition.append(totals)
    by_partition.sort(key=lambda item: item["part"])
    slowest = max(
        by_partition,
        key=lambda item: (item["straggler_rounds"], item["advance_s"]),
    )
    return {
        "rounds": nrounds,
        "partitions": len(docs),
        "wall_s": round(wall_s, 6),
        "simulate_s": round(simulate_s, 6),
        "transport_wait_s": round(transport_wait_s, 6),
        "slowest_partition": slowest["part"],
        "by_partition": by_partition,
        "worst_rounds": worst[:5],
    }


def round_counters(partitions: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Monotonic ``parallel.*`` counters for the repro-metrics/v1 export."""
    docs = [doc for doc in partitions if doc]
    counters = {
        "parallel.partitions": len(docs),
        "parallel.rounds": 0,
        "parallel.exports": 0,
        "parallel.imports": 0,
        "parallel.events": 0,
    }
    for doc in docs:
        totals = doc["totals"]
        counters["parallel.rounds"] = max(counters["parallel.rounds"], totals["rounds"])
        counters["parallel.exports"] += totals["exports"]
        counters["parallel.imports"] += totals["imports"]
        counters["parallel.events"] += totals["events"]
    return counters


def format_straggler_report(report: Dict[str, Any]) -> str:
    """Human-readable straggler table for the CLI."""
    lines = []
    lines.append(
        "parallel rounds: {rounds}  partitions: {partitions}  "
        "wall {wall:.3f}s = simulate {sim:.3f}s + transport-wait {wait:.3f}s "
        "(straggler-attributed)".format(
            rounds=report.get("rounds", 0),
            partitions=report.get("partitions", 0),
            wall=report.get("wall_s", 0.0),
            sim=report.get("simulate_s", 0.0),
            wait=report.get("transport_wait_s", 0.0),
        )
    )
    rows = report.get("by_partition", [])
    if rows:
        lines.append(
            "  part  rounds  straggled  advance_s  poll_wait_s  exports  imports"
        )
        for row in rows:
            marker = " *" if row["part"] == report.get("slowest_partition") else "  "
            lines.append(
                "  p{part:02d}{marker}  {rounds:5d}  {straggled:8d}  "
                "{advance:9.3f}  {wait:11.3f}  {exports:7d}  {imports:7d}".format(
                    part=row["part"],
                    marker=marker,
                    rounds=row["rounds"],
                    straggled=row["straggler_rounds"],
                    advance=row["advance_s"],
                    wait=row["poll_wait_s"],
                    exports=row["exports"],
                    imports=row["imports"],
                )
            )
        lines.append("  (* = slowest partition by straggled rounds)")
    return "\n".join(lines)
