"""Post-mortem flight recorder: bounded event ring + ``repro-flight/1`` dumps.

Each process that opts into telemetry keeps a :class:`FlightRecorder` -- a
``deque``-backed ring buffer of small event dicts stamped with host wall-clock
time.  Recording is a plain append (no I/O, no locks, no simulated events), so
the recorder is cheap enough to leave on for every instrumented run.  When
something goes wrong -- a ``CausalityError`` in a partition, a SIGKILLed pool
worker, an invariant failure in the serve dispatcher -- the last ``capacity``
events are dumped to a JSON artifact for replayable post-mortems.

Artifact schema (``repro-flight/1``)::

    {
      "schema": "repro-flight/1",
      "reason": "causality-error" | "worker-crash" | "invariant-failure" | "manual",
      "role": "part01" | "pool-parent" | "memory-driver" | "serve" | ...,
      "pid": 12345,
      "created_unix": 1754600000.123456,
      "detail": "human-readable one-liner (optional)",
      "events": [ {"t_unix": ..., "kind": ..., ...}, ... ]   # oldest first
    }

Dumps never go into transient exchange directories (those are removed when the
run finishes); callers pass an explicit ``flight_dir`` or set the
``REPRO_FLIGHT_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

FLIGHT_SCHEMA = "repro-flight/1"
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"
DEFAULT_CAPACITY = 256

_ROLE_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def default_flight_dir() -> Optional[str]:
    """Flight-dump directory from the environment, or None when disabled."""
    value = os.environ.get(FLIGHT_DIR_ENV, "").strip()
    return value or None


def _atomic_write_bytes(path: str, data: bytes) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def dump_flight(
    flight_dir: str,
    *,
    reason: str,
    role: str,
    events: Iterable[Dict[str, Any]],
    detail: Optional[str] = None,
) -> str:
    """Write a ``repro-flight/1`` artifact and return its path.

    Events are sorted by ``t_unix`` (stable for ties) so merged streams --
    e.g. pool lifecycle events interleaved with worker round events -- read
    chronologically.  The filename embeds role and pid so concurrent dumpers
    in one directory never clobber each other.
    """
    os.makedirs(flight_dir, exist_ok=True)
    safe_role = _ROLE_SAFE.sub("-", role) or "process"
    path = os.path.join(flight_dir, f"flight-{safe_role}-{os.getpid()}.json")
    ordered = sorted(events, key=lambda ev: ev.get("t_unix", 0.0))
    doc: Dict[str, Any] = {
        "schema": FLIGHT_SCHEMA,
        "reason": reason,
        "role": role,
        "pid": os.getpid(),
        "created_unix": round(time.time(), 6),
        "events": ordered,
    }
    if detail is not None:
        doc["detail"] = detail
    payload = json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")
    _atomic_write_bytes(path, payload)
    return path


class FlightRecorder:
    """Bounded ring buffer of recent telemetry events for one process."""

    __slots__ = ("capacity", "_events", "recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded, beyond the retained window

    def record(self, kind: str, **fields: Any) -> None:
        event: Dict[str, Any] = {"t_unix": round(time.time(), 6), "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.recorded += 1

    def extend(self, events: Iterable[Dict[str, Any]]) -> None:
        for event in events:
            self._events.append(event)
            self.recorded += 1

    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def dump(
        self,
        flight_dir: str,
        *,
        reason: str,
        role: str,
        detail: Optional[str] = None,
        extra_events: Iterable[Dict[str, Any]] = (),
    ) -> str:
        events = self.events()
        events.extend(extra_events)
        return dump_flight(
            flight_dir, reason=reason, role=role, events=events, detail=detail
        )
