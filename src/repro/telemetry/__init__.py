"""Fleet-wide observability for the parallel DES engine, pool, and serve tiers.

Everything in this package is host-side: recorders sample wall-clock time and
plain Python state, never the simulated clock, so enabling telemetry cannot
perturb the gated ``result`` half of any document.  The exports are:

* :class:`FlightRecorder` / :func:`dump_flight` -- bounded ring buffer of
  recent events per process, dumped to a ``repro-flight/1`` JSON artifact on
  ``CausalityError``, worker crash, or invariant failure.
* :class:`RoundRecorder`, :func:`straggler_report`, :func:`round_counters` --
  per-partition round phase timing for the conservative parallel engine.
* :func:`export_parallel_trace` -- merged multi-process Chrome/Perfetto trace
  with one process track per partition.
* :class:`ServeTelemetry`, :func:`serve_metrics_document` -- request spans and
  queue gauges for ``repro serve``.
* :func:`telemetry_probe` -- small instrumented partitioned run backing
  ``repro stats --telemetry``.
"""

from .recorder import (
    FLIGHT_DIR_ENV,
    FLIGHT_SCHEMA,
    FlightRecorder,
    default_flight_dir,
    dump_flight,
)
from .rounds import (
    RoundRecorder,
    format_straggler_report,
    round_counters,
    straggler_report,
)
from .perfetto import export_parallel_trace
from .serve import HostSeries, ServeTelemetry, serve_metrics_document
from .probe import telemetry_probe

__all__ = [
    "FLIGHT_DIR_ENV",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "HostSeries",
    "RoundRecorder",
    "ServeTelemetry",
    "default_flight_dir",
    "dump_flight",
    "export_parallel_trace",
    "format_straggler_report",
    "round_counters",
    "serve_metrics_document",
    "straggler_report",
    "telemetry_probe",
]
