"""Small instrumented partitioned run backing ``repro stats --telemetry``.

``repro stats`` exports one ``repro-metrics/v1`` document per invocation; the
``--telemetry`` flag additionally runs a tiny partitioned plane scenario with
round telemetry enabled and folds the resulting ``parallel.*`` round counters
and ``pool.*`` lifecycle counters into that document, so a single export shows
the simulation-side instruments *and* the fleet-side ones.

The engine import is deferred to call time: ``repro.telemetry`` is imported by
``sim/parallel/engine.py`` for the recorders, so a module-level import here
would cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["telemetry_probe"]


def telemetry_probe(
    *,
    partitions: int = 2,
    transport: str = "pool",
    scenario: str = "neighbor",
    dims: Tuple[int, int, int] = (6, 2, 2),
    msg_bytes: int = 2048,
    flight_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run a small telemetry-enabled partitioned scenario and summarize it.

    Returns ``{"counters", "straggler", "partitions", "info"}`` where
    ``counters`` merges the ``parallel.*`` round counters with any ``pool.*``
    lifecycle counters the transport produced.
    """
    from ..sim.parallel.engine import run_scenario
    from ..sim.parallel.scenario import PlaneScenario
    from .rounds import round_counters, straggler_report

    plane = PlaneScenario(name=scenario, dims=dims, msg_bytes=msg_bytes)
    run = run_scenario(
        plane,
        partitions,
        transport=transport,
        telemetry=True,
        flight_dir=flight_dir,
    )
    info = run["info"]
    telemetry = info.get("telemetry") or {}
    parts = telemetry.get("partitions", [])
    counters: Dict[str, int] = round_counters(parts)
    for key, value in sorted(info.get("pool", {}).items()):
        counters[key] = int(value)
    return {
        "counters": counters,
        "straggler": telemetry.get("straggler") or straggler_report(parts),
        "partitions": parts,
        "info": info,
    }
