"""Time and size units for the simulation.

The simulator clock is an **integer count of picoseconds**.  Integer time
keeps event ordering exactly deterministic (no floating point ties) while
still resolving the sub-nanosecond costs that matter on a 500 MHz embedded
processor (one PowerPC 440 cycle is 2 ns = 2_000 ps).

Helpers here convert between human units and picoseconds, and between byte
counts and transfer durations at a given rate.
"""

from __future__ import annotations

# --- time units (picoseconds) -------------------------------------------
PS: int = 1
NS: int = 1_000
US: int = 1_000_000
MS: int = 1_000_000_000
SEC: int = 1_000_000_000_000

# --- size units (bytes) --------------------------------------------------
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024


def ns(value: float) -> int:
    """Convert a duration in nanoseconds to integer picoseconds."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert a duration in microseconds to integer picoseconds."""
    return round(value * US)


def to_us(picoseconds: int) -> float:
    """Convert integer picoseconds to floating-point microseconds."""
    return picoseconds / US


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds to floating-point nanoseconds."""
    return picoseconds / NS


def transfer_time(nbytes: int, bytes_per_second: float) -> int:
    """Duration (ps) to move ``nbytes`` at ``bytes_per_second``.

    Rounds up so a transfer never takes zero time for a non-zero payload.
    """
    if nbytes <= 0:
        return 0
    ps = nbytes * SEC / bytes_per_second
    return max(1, round(ps))


def rate_mb_s(nbytes: int, picoseconds: int) -> float:
    """Throughput in MB/s (MB = 2**20 bytes) for ``nbytes`` in ``picoseconds``.

    NetPIPE reports MB/s with MB = 2**20; we follow that convention so our
    numbers are directly comparable with the paper's figures.
    """
    if picoseconds <= 0:
        raise ValueError("duration must be positive to compute a rate")
    return (nbytes / MB) / (picoseconds / SEC)


def fmt_time(picoseconds: int) -> str:
    """Human-readable rendering of a picosecond duration."""
    if picoseconds >= SEC:
        return f"{picoseconds / SEC:.3f} s"
    if picoseconds >= MS:
        return f"{picoseconds / MS:.3f} ms"
    if picoseconds >= US:
        return f"{picoseconds / US:.3f} us"
    if picoseconds >= NS:
        return f"{picoseconds / NS:.3f} ns"
    return f"{picoseconds} ps"


def fmt_bytes(nbytes: int) -> str:
    """Human-readable rendering of a byte count."""
    if nbytes >= GB:
        return f"{nbytes / GB:.2f} GiB"
    if nbytes >= MB:
        return f"{nbytes / MB:.2f} MiB"
    if nbytes >= KB:
        return f"{nbytes / KB:.2f} KiB"
    return f"{nbytes} B"
