"""Conservative parallel DES for whole-plane Red Storm traffic.

``scenario`` defines the plane traffic model (nearest-neighbor exchange,
incast/hotspot, binomial collective tree) over a :class:`Torus3D`;
``engine`` partitions the machine into axis-aligned slabs and runs one
:class:`~repro.sim.core.Simulator` per slab under a null-message /
lookahead-window protocol.  Partitioned results are byte-identical to
the serial run — see the exactness contract in ``engine``'s docstring
and docs/architecture.md.
"""

from .engine import (
    INF,
    CausalityError,
    PartitionRunner,
    lookahead_closure,
    lookahead_matrix,
    run_scenario,
)
from .scenario import (
    SCENARIO_NAMES,
    PlanePartition,
    PlaneScenario,
    initial_sends,
    result_document,
    result_metrics,
    trace_digest,
    tree_children,
)

__all__ = [
    "SCENARIO_NAMES",
    "PlaneScenario",
    "PlanePartition",
    "initial_sends",
    "result_document",
    "result_metrics",
    "trace_digest",
    "tree_children",
    "CausalityError",
    "PartitionRunner",
    "lookahead_matrix",
    "lookahead_closure",
    "run_scenario",
    "INF",
]
