"""Whole-plane traffic scenarios and the per-partition node model.

The full Portals stack (`repro.machine.Node`) boots firmware, OS kernel
and NIC engines per node — perfect for a NetPIPE pair, far too heavy for
10,368 of them.  The plane scenarios instead run a *light* per-node
traffic model grounded in the same :class:`SeaStarConfig` constants the
stack is calibrated with:

* **injection** — each node serializes its outgoing chunks onto its link
  at link rate (``packet_time`` per 64-byte packet), one chunk at a
  time, exactly like the TX side of :mod:`repro.net.fabric`'s pipes;
* **flight** — a chunk's wire time is the fabric's closed form,
  ``LinkModel.chunk_transit_time``: serialization plus per-hop
  fall-through latency over the dimension-ordered route (whose length
  equals ``Torus3D.distance``; asserted by tests/test_net_routing.py);
* **ejection** — each destination drains arrivals through its RX link at
  link rate, which is what makes incast/hotspot traffic queue.

Unlike the full stack there is no RX-window backpressure onto senders:
receive buffering is unbounded and contention shows up purely as
ejection queueing.  Every quantity the model records is a deterministic
function of the arrival set — simultaneous arrivals are folded in the
canonical order ``(arrival, src, msg_id, chunk_seq)``, never in heap
order — which is what makes partitioned runs byte-identical to serial
ones (see :mod:`repro.sim.parallel.engine`).

Scenarios (all deterministic, parameterized by dims and message size):

* ``neighbor`` — every node sends one message to each of its ``x+``,
  ``y+``, ``z+`` neighbors at t=0 (nearest-neighbor plane traffic);
* ``incast``  — every node sends one message to the root at t=0
  (hotspot);
* ``tree``    — a binomial broadcast from the root: each node forwards
  to its subtree children the moment its own copy is fully delivered
  (the dependent-send chain that makes cross-partition lookahead earn
  its keep).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...hw.config import DEFAULT_CONFIG, SeaStarConfig
from ...net.topology import Torus3D

__all__ = [
    "PlaneScenario",
    "PlanePartition",
    "SCENARIO_NAMES",
    "initial_sends",
    "tree_children",
    "result_document",
    "result_metrics",
    "trace_digest",
]

SCENARIO_NAMES = ("neighbor", "incast", "tree")

#: message key: (src, dst, per-src send sequence number)
MsgKey = Tuple[int, int, int]

#: one wire chunk in flight: (dst, arrival_ps, src, msg_key, chunk_seq,
#: npackets, nchunks, nbytes, submit_ps) — a plain tuple so it crosses
#: partition boundaries as JSON without a schema class
Chunk = Tuple[int, int, int, MsgKey, int, int, int, int, int]


@dataclass(frozen=True)
class PlaneScenario:
    """One deterministic whole-plane traffic run."""

    name: str
    dims: Tuple[int, int, int]
    wrap: Tuple[bool, bool, bool] = (False, False, True)
    msg_bytes: int = 2048
    root: int = 0

    def __post_init__(self) -> None:
        if self.name not in SCENARIO_NAMES:
            raise ValueError(f"unknown scenario {self.name!r}")
        if self.msg_bytes < 1:
            raise ValueError("msg_bytes must be >= 1")

    def topology(self) -> Torus3D:
        return Torus3D(self.dims, wrap=self.wrap)


def tree_children(rank: int, nranks: int) -> List[int]:
    """Binomial-tree children of ``rank`` in a broadcast over ``nranks``.

    Standard binomial order: the root peels off the largest subtree
    first; a non-root node relays to sub-ranks below the bit that
    attached it.  Pure function of (rank, nranks), so every partition
    derives the same forwarding plan without coordination.
    """
    if not 0 <= rank < nranks:
        raise ValueError(f"rank {rank} outside 0..{nranks - 1}")
    children: List[int] = []
    # highest power of two covering the range
    span = 1
    while span < nranks:
        span <<= 1
    # the bit that attached this rank (root: the full span)
    limit = span if rank == 0 else (rank & -rank)
    bit = limit >> 1
    while bit:
        child = rank | bit
        if child < nranks and child != rank:
            children.append(child)
        bit >>= 1
    return children


def initial_sends(scenario: PlaneScenario, topo: Torus3D) -> List[Tuple[int, int]]:
    """The (src, dst) pairs submitted at t=0, in canonical order."""
    sends: List[Tuple[int, int]] = []
    if scenario.name == "neighbor":
        for src in range(topo.num_nodes):
            nbrs = topo.neighbors(src)
            for port in ("x+", "y+", "z+"):
                dst = nbrs.get(port)
                if dst is not None and dst != src:
                    sends.append((src, dst))
    elif scenario.name == "incast":
        root = scenario.root % topo.num_nodes
        for src in range(topo.num_nodes):
            if src != root:
                sends.append((src, root))
    else:  # tree: only the root transmits at t=0
        root = scenario.root % topo.num_nodes
        for child in tree_children(root, topo.num_nodes):
            sends.append((root, child))
    return sends


class PlanePartition:
    """The plane-traffic model for one partition's node set.

    Drives one :class:`~repro.sim.core.Simulator`.  Chunks whose
    destination lives in another partition are handed to ``exporter``
    instead of being scheduled locally; the engine turns them into
    timestamped channel messages and the peer calls
    :meth:`import_chunk`.
    """

    def __init__(
        self,
        sim: Any,
        scenario: PlaneScenario,
        topo: Torus3D,
        my_nodes: Tuple[int, ...],
        exporter: Optional[Callable[[Chunk], None]] = None,
        config: SeaStarConfig = DEFAULT_CONFIG,
    ):
        self.sim = sim
        self.scenario = scenario
        self.topo = topo
        self.config = config
        self.my_nodes = frozenset(my_nodes)
        self._exporter = exporter
        self._packet_time = config.link_packet_time()
        self._hop_latency = config.hop_latency
        self._chunk_bytes = config.chunk_bytes
        self._packet_bytes = config.packet_bytes
        # per-node link state (ints, picoseconds)
        self._tx_free: Dict[int, int] = {}
        self._rx_busy: Dict[int, int] = {}
        self._send_seq: Dict[int, int] = {}
        # arrivals buffered for the pending same-timestamp fold
        self._pending: Dict[int, List[Chunk]] = {}
        self._kick_at: Dict[int, int] = {}
        # message reassembly and the delivered record
        self._got_chunks: Dict[MsgKey, int] = {}
        #: delivered messages: msg_key -> (nbytes, submit_ps, delivery_ps)
        self.delivered: Dict[MsgKey, Tuple[int, int, int]] = {}
        # tree bookkeeping: nodes that already forwarded
        self._forwarded: set = set()

    # -- injection ----------------------------------------------------------

    def _chunk_sizes(self, nbytes: int) -> List[int]:
        sizes = [self._chunk_bytes] * (nbytes // self._chunk_bytes)
        if nbytes % self._chunk_bytes:
            sizes.append(nbytes % self._chunk_bytes)
        return sizes

    def _npackets(self, size: int) -> int:
        # at least the header packet: the plane model never piggybacks,
        # so serialization is always >= one packet_time and the
        # cross-partition lookahead bound (chunk_transit_time(1, hops))
        # is honored by construction
        return max(1, -(-size // self._packet_bytes))

    def submit(self, src: int, dst: int, nbytes: int, now: int) -> None:
        """Inject one message at time ``now`` (must equal ``sim.now``)."""
        if src not in self.my_nodes:
            raise ValueError(f"node {src} is not owned by this partition")
        seq = self._send_seq.get(src, 0)
        self._send_seq[src] = seq + 1
        msg: MsgKey = (src, dst, seq)
        hops = self.topo.distance(src, dst)
        sizes = self._chunk_sizes(nbytes)
        free = self._tx_free.get(src, 0)
        for chunk_seq, size in enumerate(sizes):
            npackets = self._npackets(size)
            start = free if free > now else now
            ser = npackets * self._packet_time
            free = start + ser
            arrival = free + hops * self._hop_latency
            rec: Chunk = (
                dst,
                arrival,
                src,
                msg,
                chunk_seq,
                npackets,
                len(sizes),
                nbytes,
                now,
            )
            if dst in self.my_nodes:
                self._schedule_arrival(rec)
            else:
                assert self._exporter is not None, "cross-partition send w/o exporter"
                self._exporter(rec)
        self._tx_free[src] = free

    # -- ejection -----------------------------------------------------------

    def _schedule_arrival(self, rec: Chunk) -> None:
        self.sim.schedule_at(rec[1], rec).add_callback(self._on_arrival)

    def import_chunk(self, rec: Chunk) -> None:
        """Accept a cross-partition chunk (engine-validated timestamp)."""
        if rec[0] not in self.my_nodes:
            raise ValueError(f"chunk for node {rec[0]} imported to wrong partition")
        self._schedule_arrival(rec)

    def _on_arrival(self, event: Any) -> None:
        rec: Chunk = event.value
        dst, arrival = rec[0], rec[1]
        self._pending.setdefault(dst, []).append(rec)
        # fold all same-timestamp arrivals in one deterministic pass: the
        # kick is scheduled zero-delay, so it pops after every arrival
        # record at this timestamp (they were heap-resident before the
        # clock reached it) regardless of which partition sent what
        if self._kick_at.get(dst) != arrival:
            self._kick_at[dst] = arrival
            self.sim.schedule_at(arrival, dst).add_callback(self._on_kick)

    def _on_kick(self, event: Any) -> None:
        dst = event.value
        batch = self._pending.pop(dst, [])
        if not batch:  # pragma: no cover - defensive
            return
        # canonical fold order: (arrival, src, msg_key, chunk_seq) — all
        # arrivals in the batch share one timestamp, so this is the
        # global merge order whatever the heap interleaving was
        batch.sort(key=lambda r: (r[1], r[2], r[3], r[4]))
        busy = self._rx_busy.get(dst, 0)
        now = self.sim.now
        for rec in batch:
            _, arrival, src, msg, chunk_seq, npackets, nchunks, nbytes, submit = rec
            start = busy if busy > arrival else arrival
            busy = start + npackets * self._packet_time
            got = self._got_chunks.get(msg, 0) + 1
            self._got_chunks[msg] = got
            if got == nchunks:
                del self._got_chunks[msg]
                self.delivered[msg] = (nbytes, submit, busy)
                self._on_message_delivered(dst, busy)
        self._rx_busy[dst] = busy

    def _on_message_delivered(self, node: int, when: int) -> None:
        """Scenario hook: dependent sends (binomial tree forwarding)."""
        if self.scenario.name != "tree" or node in self._forwarded:
            return
        self._forwarded.add(node)
        children = tree_children(node, self.topo.num_nodes)
        if not children:
            return
        # delivery time is strictly beyond sim.now (the fold appends at
        # least one packet_time), so the forward submit can be scheduled
        # as an ordinary future event
        self.sim.schedule_at(when, (node, tuple(children))).add_callback(
            self._on_forward
        )

    def _on_forward(self, event: Any) -> None:
        node, children = event.value
        for child in children:
            self.submit(node, child, self.scenario.msg_bytes, self.sim.now)

    # -- bootstrap ----------------------------------------------------------

    def submit_initial(self) -> None:
        """Inject this partition's share of the t=0 sends (call at t=0)."""
        for src, dst in initial_sends(self.scenario, self.topo):
            if src in self.my_nodes:
                self.submit(src, dst, self.scenario.msg_bytes, 0)
        if self.scenario.name == "tree":
            root = self.scenario.root % self.topo.num_nodes
            if root in self.my_nodes:
                self._forwarded.add(root)


# -- results ----------------------------------------------------------------


def result_document(
    scenario: PlaneScenario,
    delivered: Dict[MsgKey, Tuple[int, int, int]],
) -> Dict[str, Any]:
    """The gated, partition-invariant result of one scenario run.

    Every field is a deterministic function of the delivered-message
    set; nothing host- or partitioning-dependent (wall clock, heap seq,
    events scheduled) may appear here.
    """
    messages = [
        [src, dst, seq, nbytes, submit, delivery]
        for (src, dst, seq), (nbytes, submit, delivery) in sorted(delivered.items())
    ]
    return {
        "scenario": scenario.name,
        "dims": list(scenario.dims),
        "wrap": [bool(w) for w in scenario.wrap],
        "msg_bytes": scenario.msg_bytes,
        "root": scenario.root,
        "messages": messages,
    }


def trace_digest(doc: Dict[str, Any]) -> float:
    """48-bit content digest of a result document, as an exact float.

    Lets the golden gate pin the *full* message trace without committing
    megabytes: 12 hex digits < 2**48, exactly representable in a JSON
    double, so byte-identity of the golden file implies byte-identity of
    every delivery record behind it.
    """
    import json

    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return float(int(hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12], 16))


def result_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Scalar anchors derived from a result document (golden-gated)."""
    prefix = doc["scenario"]
    messages = doc["messages"]
    latencies = [m[5] - m[4] for m in messages]
    makespan = max((m[5] for m in messages), default=0)
    total_bytes = sum(m[3] for m in messages)
    out = {
        f"{prefix}_messages": float(len(messages)),
        f"{prefix}_total_bytes": float(total_bytes),
        f"{prefix}_makespan_us": makespan / 1e6,
        f"{prefix}_trace_digest": trace_digest(doc),
    }
    if latencies:
        out[f"{prefix}_max_latency_us"] = max(latencies) / 1e6
        out[f"{prefix}_mean_latency_us"] = (sum(latencies) / len(latencies)) / 1e6
    return out
